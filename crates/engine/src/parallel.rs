//! Ordered parallel map over chunk work items, delegated to the shared
//! persistent work-stealing pool ([`matopt_pool::Pool`]).
//!
//! The pre-pool version spread fixed-size chunks over a fresh
//! `std::thread::scope` per call, which paid a spawn/join handshake on
//! every batch and serialized skewed batches behind whichever chunk
//! held the heavy items. The pool keeps its workers parked between
//! batches and steals *individual items*, so neither cost survives (see
//! `matopt-pool`'s `steals_individual_items_under_skew` regression
//! test).
//!
//! Worker closures still run under `catch_unwind` (inside the pool): a
//! panic in one chunk's kernel is captured and reported as that item's
//! error instead of aborting the process, so the fault-tolerant
//! executor can treat a bad chunk as a recoverable fault. The former
//! `par_map` re-panic wrapper lives on as [`matopt_pool::Pool::map`].

/// Applies `f` to every index in `0..n`, in parallel when the batch is
/// large enough, preserving index order. Returns `Err(detail)` with the
/// first panicking item's message if any worker closure panics.
///
/// Call sites moved from slice iteration to index mapping when the pool
/// landed: jobs are `'static`, so closures capture `Arc` handles to the
/// input relations instead of borrowing them.
pub(crate) fn try_par_map<R, F>(n: usize, f: F) -> Result<Vec<R>, String>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    matopt_pool::Pool::global().try_map(n, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = try_par_map(1000, |i| i * 2).unwrap();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_small_batches_serially() {
        assert_eq!(try_par_map(2, |i| i + 1).unwrap(), vec![1, 2]);
        assert_eq!(try_par_map(0, |i| i).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn catches_panics_instead_of_aborting() {
        let err = try_par_map(100, |i| {
            if i == 57 {
                panic!("bad chunk {i}");
            }
            i * 2
        })
        .unwrap_err();
        assert!(err.contains("bad chunk 57"), "got {err:?}");
        // The serial path catches too.
        let err = try_par_map(2, |_| -> usize { panic!("small") }).unwrap_err();
        assert!(err.contains("small"));
    }
}
