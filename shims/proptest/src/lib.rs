//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, `prop_oneof!`, [`strategy::Just`], range and tuple
//! strategies, `prop_map`/`prop_flat_map`, `collection::vec`, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Each property runs a fixed number of cases drawn from a
//! deterministic RNG seeded from the test's name, so failures are
//! reproducible run-to-run. There is no shrinking: a failing case
//! panics with the assertion message and its case index.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration (shim: only the case count is honored).

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    ///
    /// Object-safe: the combinator methods are `Sized`-gated so boxed
    /// strategies (as produced by [`prop_oneof!`](crate::prop_oneof))
    /// remain usable.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f`
        /// derives from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!`
    /// expansion).
    pub struct OneOf<T> {
        choices: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty list of boxed strategies.
        ///
        /// # Panics
        /// Panics when `choices` is empty.
        pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = (rng.next_u64() % self.choices.len() as u64) as usize;
            self.choices[i].sample(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (the `prop_oneof!` expansion helper — avoids
    /// unsizing casts with inference holes at the call site).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    let span = self.end.wrapping_sub(self.start);
                    assert!(span > 0, "empty range strategy");
                    self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            // The endpoint has measure zero; reuse the half-open draw.
            self.start() + rng.random::<f64>() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// A strategy producing `Vec`s of values from `elem` with a length
    /// drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo).max(1) as u64;
            let n = self.len.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Runs one property's cases: samples the strategy, binds the pattern,
/// and executes the body closure. Not part of the public proptest API —
/// the expansion target of [`proptest!`].
pub fn run_cases<S: strategy::Strategy>(
    test_name: &str,
    cases: u32,
    strat: &S,
    body: impl Fn(S::Value) -> Result<(), CaseSkipped>,
) {
    use rand::SeedableRng;
    // FNV-1a over the test name: per-test deterministic seed.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    let mut skipped = 0u32;
    for case in 0..cases {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let value = strat.sample(&mut rng);
        if body(value).is_err() {
            skipped += 1;
        }
    }
    // Mirror proptest's behavior of failing when assumptions reject
    // nearly everything (a broken generator, not a passing test).
    assert!(
        skipped < cases,
        "{test_name}: all {cases} cases were rejected by prop_assume!"
    );
}

/// Marker returned by a case aborted via `prop_assume!`.
#[derive(Debug, Clone, Copy)]
pub struct CaseSkipped;

/// Defines property tests. See the crate docs for shim limitations.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_cases(
                stringify!($name),
                config.cases,
                &strategy,
                |($($pat,)+)| { $body Ok(()) },
            );
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a property (shim: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::CaseSkipped);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    pub mod prop {
        //! The `prop::` path alias (`prop::collection::vec`).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn square_strategy() -> impl Strategy<Value = u64> {
        (1u64..100).prop_map(|v| v * v)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(v in 5u64..50, f in -2.0f64..2.0) {
            prop_assert!((5..50).contains(&v));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn map_and_flat_map_compose(sq in square_strategy(), v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0u8..10, n))) {
            let root = (sq as f64).sqrt().round() as u64;
            prop_assert_eq!(root * root, sq);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|b| *b < 10));
        }

        #[test]
        fn oneof_hits_every_arm(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn assume_skips_without_failing(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "rejected by prop_assume")]
    fn total_rejection_fails_loudly() {
        crate::run_cases("always_rejected", 8, &(0u32..4), |_| {
            Err(crate::CaseSkipped)
        })
    }
}
