//! Jittered bounded exponential backoff, shared by every retry loop in
//! the workspace.
//!
//! Three call sites used to hand-roll the same arithmetic with subtly
//! different caps: the fault-tolerant executor's per-vertex retry
//! (`matopt-engine`), the plan-cache directory lock's stale-steal spin
//! (`matopt-serve`), and — new in the fleet work — the worker-process
//! restart supervisor (`matopt-worker`). They all delegate here now, so
//! the bound proved by the property test (`max_total_ms` dominates any
//! realizable sleep sequence, for *any* jitter source) holds for each
//! of them.
//!
//! The policy is deliberately free of clocks and PRNGs: callers supply
//! the attempt number and a jitter word, the policy returns a delay in
//! milliseconds. That keeps it usable both from seeded chaos harnesses
//! (jitter from the injector's SplitMix64) and from production paths
//! (jitter from [`mix_jitter`] over the pid).

/// Bounded exponential backoff with additive jitter.
///
/// Delay for 1-based attempt `a` is
/// `min(base_ms * 2^(a-1), cap_ms) + jitter mod base_ms`, so the
/// jitter never exceeds one base delay and the total wait across all
/// permitted attempts is bounded by [`BackoffPolicy::max_total_ms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First delay, in milliseconds; doubles per attempt.
    pub base_ms: u64,
    /// Per-attempt delay ceiling, in milliseconds (before jitter).
    pub cap_ms: u64,
    /// Attempts allowed before the caller must give up
    /// ([`BackoffPolicy::exhausted`]).
    pub max_attempts: u32,
}

impl BackoffPolicy {
    /// Delay in milliseconds for 1-based `attempt`, mixing in the
    /// caller-supplied jitter word (any source: seeded PRNG, pid hash).
    ///
    /// Attempt numbers beyond 16 doublings saturate at the cap rather
    /// than overflowing the shift.
    #[must_use]
    pub fn delay_ms(&self, attempt: u32, jitter_word: u64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
            .min(self.cap_ms);
        let jitter = jitter_word % self.base_ms.max(1);
        exp.saturating_add(jitter)
    }

    /// Whether the 1-based `attempt` exceeds the policy's budget.
    #[must_use]
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt > self.max_attempts
    }

    /// Upper bound on the total milliseconds slept across every
    /// permitted attempt, for any jitter sequence: each attempt sleeps
    /// at most `cap_ms + (base_ms - 1)`.
    #[must_use]
    pub fn max_total_ms(&self) -> u64 {
        let per_attempt = self.cap_ms.saturating_add(self.base_ms.saturating_sub(1));
        per_attempt.saturating_mul(u64::from(self.max_attempts))
    }
}

/// Deterministic jitter word for call sites without a seeded PRNG:
/// SplitMix64-style avalanche over `(salt, attempt)`. Same salt and
/// attempt always yield the same word, so retry schedules stay
/// reproducible under test.
#[must_use]
pub fn mix_jitter(salt: u64, attempt: u32) -> u64 {
    let mut z = salt ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn doubles_then_caps() {
        let p = BackoffPolicy {
            base_ms: 1,
            cap_ms: 8,
            max_attempts: 6,
        };
        // base 1 → jitter is always 0, so the sequence is exact.
        let delays: Vec<u64> = (1..=6).map(|a| p.delay_ms(a, u64::MAX)).collect();
        assert_eq!(delays, vec![1, 2, 4, 8, 8, 8]);
    }

    #[test]
    fn huge_attempt_numbers_saturate() {
        let p = BackoffPolicy {
            base_ms: 3,
            cap_ms: 50,
            max_attempts: u32::MAX,
        };
        assert_eq!(p.delay_ms(u32::MAX, 0), 50);
        assert!(p.delay_ms(u32::MAX, u64::MAX) <= 52);
    }

    #[test]
    fn exhaustion_is_strictly_after_budget() {
        let p = BackoffPolicy {
            base_ms: 1,
            cap_ms: 8,
            max_attempts: 3,
        };
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
    }

    #[test]
    fn mix_jitter_is_deterministic_and_spread() {
        assert_eq!(mix_jitter(7, 1), mix_jitter(7, 1));
        assert_ne!(mix_jitter(7, 1), mix_jitter(7, 2));
        assert_ne!(mix_jitter(7, 1), mix_jitter(8, 1));
    }

    proptest! {
        /// The satellite-3 bound: for any policy and ANY jitter
        /// sequence, the sum of realizable delays over the permitted
        /// attempts never exceeds `max_total_ms`.
        #[test]
        fn total_wait_is_bounded(
            base in 0u64..1000,
            cap in 0u64..100_000,
            attempts in 0u32..64,
            jitters in proptest::collection::vec(0u64..=u64::MAX, 0..64),
        ) {
            let p = BackoffPolicy { base_ms: base, cap_ms: cap, max_attempts: attempts };
            let total: u64 = (1..=attempts)
                .map(|a| {
                    let j = jitters.get(a as usize % jitters.len().max(1)).copied().unwrap_or(0);
                    p.delay_ms(a, j)
                })
                .fold(0u64, u64::saturating_add);
            prop_assert!(total <= p.max_total_ms(),
                "total {total} exceeds bound {}", p.max_total_ms());
        }

        /// Delays are monotone in the attempt number up to the cap,
        /// holding the jitter word fixed.
        #[test]
        fn monotone_until_cap(base in 1u64..100, cap in 1u64..10_000, j in 0u64..=u64::MAX) {
            let p = BackoffPolicy { base_ms: base, cap_ms: cap, max_attempts: 20 };
            for a in 1..20u32 {
                prop_assert!(p.delay_ms(a, j) <= p.delay_ms(a + 1, j).max(p.cap_ms + base));
            }
        }
    }
}
