//! The two-level block-wise matrix inverse (§8.2, Figure 9) at laptop
//! scale: build the blocked-formula DAG, optimize it, execute it, and
//! verify the result actually inverts the matrix.
//!
//! Run with: `cargo run --release -p matopt-bench --example block_inverse`

use matopt_core::{Cluster, FormatCatalog, ImplRegistry, NodeKind, PhysFormat, PlanContext};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan, DistRelation};
use matopt_graphs::two_level_inverse_graph;
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;

fn main() {
    // A 32×32 outer matrix: 16×16 quadrants, with the A quadrant itself
    // inverted from 4/12 sub-blocks — the same two-level structure the
    // paper runs at 20K/10K/2K.
    let half = 16u64;
    let a_split = 4u64;
    let inv = two_level_inverse_graph(half, a_split).expect("builds");
    let g = &inv.graph;
    println!(
        "two-level blocked inverse graph: {} vertices, {} sources, tree-shaped: {}",
        g.len(),
        g.sources().len(),
        g.is_tree_shaped()
    );

    // Generate one well-conditioned 32×32 matrix and carve the source
    // blocks out of it.
    let n = (2 * half) as usize;
    let mut rng = seeded_rng(3);
    let mut m = random_dense_normal(n, n, &mut rng);
    for i in 0..n {
        let v = m.get(i, i) + n as f64;
        m.set(i, i, v);
    }
    // Source layout (see `two_level_inverse_graph`): A11 A12 A21 A22 of
    // the top-left quadrant, then B (split into B1/B2 rows), C (split
    // into C1/C2 columns), then D.
    let h = half as usize;
    let s = a_split as usize;
    let blocks: Vec<DenseMatrix> = vec![
        m.block(0, 0, s, s),         // A11
        m.block(0, s, s, h - s),     // A12
        m.block(s, 0, h - s, s),     // A21
        m.block(s, s, h - s, h - s), // A22
        m.block(0, h, s, h),         // B1
        m.block(s, h, h - s, h),     // B2
        m.block(h, 0, h, s),         // C1
        m.block(h, s, h, h - s),     // C2
        m.block(h, h, h, h),         // D
    ];
    let mut inputs = HashMap::new();
    for (src, block) in g.sources().into_iter().zip(blocks) {
        let fmt = g.node(src).source_format().unwrap();
        inputs.insert(src, DistRelation::from_dense(&block, fmt).unwrap());
    }

    // Optimize + execute.
    let registry = ImplRegistry::paper_default();
    let cluster = Cluster::simsql_like(4);
    let ctx = PlanContext::new(&registry, cluster);
    let catalog = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 4 },
        PhysFormat::RowStrip { height: 4 },
        PhysFormat::ColStrip { width: 4 },
    ]);
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &catalog, &model);
    let plan = frontier_dp_beam(g, &octx, 2000).expect("optimizable");
    println!("optimized (estimated cost {:.3}s)", plan.cost);
    let out = execute_plan(g, &plan.annotation, &inputs, &registry).expect("executes");

    // Reassemble the inverse from the quadrant sinks and verify
    // M · M⁻¹ = I.
    let (abar, bbar, cbar, dbar) = &inv.quadrants;
    let mut result = DenseMatrix::zeros(n, n);
    let mut place = |vertex: matopt_core::NodeId, r0: usize, c0: usize| {
        let rel = &out.values[&vertex];
        result.set_block(r0, c0, &rel.to_dense());
    };
    // Ā quadrant cells (2×2 conformal grid over the top-left).
    place(abar.parts[0][0], 0, 0);
    place(abar.parts[0][1], 0, s);
    place(abar.parts[1][0], s, 0);
    place(abar.parts[1][1], s, s);
    // B̄ (top-right), C̄ (bottom-left), D̄ (bottom-right).
    place(bbar.parts[0][0], 0, h);
    place(bbar.parts[1][0], s, h);
    place(cbar.parts[0][0], h, 0);
    place(cbar.parts[0][1], h, s);
    place(dbar.parts[0][0], h, h);

    let product = m.matmul(&result);
    let identity = DenseMatrix::identity(n);
    let err = product.frobenius_distance(&identity);
    assert!(err < 1e-6, "M * Minv deviates from I by {err}");
    println!("verified M x Minv = I (Frobenius error {err:.2e})");
    // The graph shares A^-1 across many consumers: confirm the DAG
    // structure paid off.
    let compute_vertices = g
        .iter()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Compute { .. }))
        .count();
    println!("{compute_vertices} compute vertices, A^-1 sub-blocks computed once and reused");
}
