//! Adaptive kernel autotuning: per shape-class microkernel search, a
//! persisted [`TuningCatalog`], and the explicit [`KernelConfig`]
//! handle the execution engine threads through its options.
//!
//! The optimizer's premise (the paper, §5) is that implementation
//! choice should follow measured cost — but a fixed GEMM blocking hands
//! every shape the same kernel, and real throughput has shape-dependent
//! cliffs (AMULET makes the same observation for query-embedded linear
//! algebra). This module closes the loop locally:
//!
//! 1. Shapes are bucketed into [`ShapeClass`]es (log₂ buckets of
//!    `m/k/n`, plus a log₁₀ density bucket for sparse operands).
//! 2. Per class, [`tune_dense_class`] / [`tune_csr_class`] benchmark a
//!    small variant grid — [`GemmBlocking::CANDIDATES`] for dense GEMM,
//!    both [`CsrVariant`]s for CSR×dense — and record the winner *and*
//!    its measured GFLOP/s in the catalog.
//! 3. Dispatch ([`DenseMatrix::matmul_with`],
//!    [`CsrMatrix::matmul_dense_with`]) consults the catalog; an empty
//!    catalog costs one atomic load and keeps the shipped fixed-blocking
//!    behaviour bit-for-bit.
//! 4. The catalog persists to `kernels.tune` (next to `plans.mcache`)
//!    in the workspace's checksummed all-`u64`-LE format: dual FNV-1a
//!    checksums per entry, bounds-checked decode, corrupt entries
//!    skipped and counted — never misdecoded — and atomic
//!    temp-file + rename writes.
//!
//! Every variant is **bit-identical** to the reference kernels: each
//! output element accumulates its `k` terms in plain ascending order
//! with the same multiply-add whatever the blocking, so tuning can
//! never change a result, only its latency. The measured GFLOP/s
//! curves additionally feed the serving layer's cost model (see
//! `matopt-cost`), which bumps the plan-cache epoch when a catalog is
//! applied.

use crate::dense::{DEFAULT_PACK_MIN_FLOPS, DEFAULT_PAR_MIN_FLOPS};
use crate::{gemm_mode, CsrMatrix, CsrVariant, DenseMatrix, GemmBlocking, GemmMode};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// `b"MTUN0001"` as a little-endian word: magic header of
/// `kernels.tune`.
const MAGIC: u64 = u64::from_le_bytes(*b"MTUN0001");

/// File name of the persisted catalog (lives next to `plans.mcache`).
pub const TUNE_FILE: &str = "kernels.tune";

/// Hard ceiling on entries/curve points a decoder will believe; a
/// length field past these is corruption, not a big catalog.
const MAX_ENTRIES: usize = 1 << 16;
const MAX_CURVE: usize = 64;

// ---------------------------------------------------------------------
// Shape classes
// ---------------------------------------------------------------------

/// Marker density bucket for dense-GEMM classes.
const DENSE_BUCKET: u8 = u8::MAX;

/// `floor(log2(x))` (0 for `x <= 1`): the bucket edge of one dimension.
fn log2_bucket(x: usize) -> u8 {
    if x <= 1 {
        0
    } else {
        (usize::BITS - 1 - x.leading_zeros()) as u8
    }
}

/// Eighth-decade log₁₀ bucket of a sparse density: 1.0 → 0,
/// 0.1 → 8, 0.01 → 16, …, clamped so `u8::MAX` stays free as the
/// dense marker. Non-positive densities land in the sparsest bucket.
fn density_bucket(density: f64) -> u8 {
    if density.is_nan() || density <= 0.0 {
        return DENSE_BUCKET - 1;
    }
    let b = (-(density.min(1.0).log10()) * 8.0).floor();
    b.clamp(0.0, f64::from(DENSE_BUCKET - 1)) as u8
}

/// A log-bucketed product shape: the granularity at which tuning
/// results are recorded and looked up.
///
/// Two products land in the same class when each of `m`, `k`, `n`
/// shares a power-of-two bucket (and, for CSR×dense, the lhs density
/// shares an eighth-decade bucket). Classes are coarse on purpose: the
/// winner of a 384³ probe is a good proxy for every product in
/// `[256,512)³`, and the catalog stays small enough to persist and
/// scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeClass {
    /// `floor(log2(m))` of the output row count.
    pub m_bucket: u8,
    /// `floor(log2(k))` of the inner dimension.
    pub k_bucket: u8,
    /// `floor(log2(n))` of the output column count.
    pub n_bucket: u8,
    /// Eighth-decade log₁₀ bucket of the sparse lhs density, or
    /// `u8::MAX` for dense GEMM.
    pub density_bucket: u8,
}

impl ShapeClass {
    /// The class of a dense `m×k · k×n` product.
    pub fn dense(m: usize, k: usize, n: usize) -> ShapeClass {
        ShapeClass {
            m_bucket: log2_bucket(m),
            k_bucket: log2_bucket(k),
            n_bucket: log2_bucket(n),
            density_bucket: DENSE_BUCKET,
        }
    }

    /// The class of a CSR(`m×k`, `density`) × dense(`k×n`) product.
    pub fn sparse(m: usize, k: usize, n: usize, density: f64) -> ShapeClass {
        ShapeClass {
            density_bucket: density_bucket(density),
            ..ShapeClass::dense(m, k, n)
        }
    }

    /// `true` for dense-GEMM classes.
    pub fn is_dense(&self) -> bool {
        self.density_bucket == DENSE_BUCKET
    }

    /// Geometric-midpoint dimensions of the class (`3·2^(b-1)`, the
    /// centre of bucket `[2^b, 2^(b+1))`), used as the probe shape.
    pub fn representative_dims(&self) -> (usize, usize, usize) {
        fn mid(b: u8) -> usize {
            if b == 0 {
                1
            } else {
                3usize << (usize::from(b) - 1).min(60)
            }
        }
        (mid(self.m_bucket), mid(self.k_bucket), mid(self.n_bucket))
    }

    /// Midpoint density of a sparse class (1.0 for dense classes).
    pub fn representative_density(&self) -> f64 {
        if self.is_dense() {
            1.0
        } else {
            10f64.powf(-(f64::from(self.density_bucket) + 0.5) / 8.0)
        }
    }

    /// Human-readable form, e.g. `d[8,8,8]` or `s[12,12,5]@d16`.
    pub fn label(&self) -> String {
        if self.is_dense() {
            format!("d[{},{},{}]", self.m_bucket, self.k_bucket, self.n_bucket)
        } else {
            format!(
                "s[{},{},{}]@d{}",
                self.m_bucket, self.k_bucket, self.n_bucket, self.density_bucket
            )
        }
    }
}

// ---------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------

/// Dispatch thresholds that used to be hard-coded constants in the
/// dense kernel; now part of the tuning catalog with the shipped
/// values as untuned defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Minimum `m·k·n` multiply-adds for the packed kernel to beat the
    /// packing overhead (below it the reference kernel runs).
    pub pack_min_flops: u64,
    /// Minimum `2·m·k·n` flops before a packed product fans out over
    /// the shared pool (with the `parallel` feature).
    pub par_min_flops: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            pack_min_flops: DEFAULT_PACK_MIN_FLOPS,
            par_min_flops: DEFAULT_PAR_MIN_FLOPS,
        }
    }
}

/// The winning kernel of one shape class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Index into [`GemmBlocking::CANDIDATES`].
    Dense(u16),
    /// A CSR×dense traversal.
    Csr(CsrVariant),
}

impl KernelChoice {
    /// Human-readable form, e.g. `8x6/kc256/mc96` or `csr-col`.
    pub fn label(&self) -> String {
        match self {
            KernelChoice::Dense(id) => GemmBlocking::CANDIDATES
                .get(usize::from(*id))
                .map(|b| b.label())
                .unwrap_or_else(|| format!("dense#{id}")),
            KernelChoice::Csr(CsrVariant::RowBlocked) => "csr-row".to_string(),
            KernelChoice::Csr(CsrVariant::ColBlocked) => "csr-col".to_string(),
        }
    }
}

/// One tuned shape class: the winner, its measured throughput, and the
/// full measured curve across every candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningEntry {
    /// The variant that won the probe.
    pub choice: KernelChoice,
    /// The winner's measured GFLOP/s at the probe shape.
    pub gflops: f64,
    /// Effective flops of one probe multiply (`2·m·k·n` dense,
    /// `2·nnz·n` sparse) — the x-coordinate of this entry on the
    /// cost model's throughput curve.
    pub probe_flops: f64,
    /// Measured GFLOP/s per candidate (`(candidate id, gflops)`), in
    /// candidate order — kept so the cost model and benches can see the
    /// whole landscape, not just the winner.
    pub curve: Vec<(u16, f64)>,
}

impl TuningEntry {
    /// The dense blocking this entry picked, when it is a dense entry
    /// with a valid candidate index.
    pub fn dense_blocking(&self) -> Option<GemmBlocking> {
        match self.choice {
            KernelChoice::Dense(id) => GemmBlocking::CANDIDATES.get(usize::from(id)).copied(),
            KernelChoice::Csr(_) => None,
        }
    }
}

/// The per-process (or per-service) store of tuning results.
///
/// Reads on the dispatch hot path are cheap: an untouched catalog is
/// one relaxed atomic load ([`TuningCatalog::is_empty`]) plus two
/// relaxed loads for the thresholds, which is what keeps the
/// untuned/disabled path inside the 2% `tune_overhead` budget. Every
/// mutation bumps [`TuningCatalog::version`], which is how the serving
/// layer knows to invalidate cached plans (exactly once per applied
/// catalog — see `PlanService::apply_tuning`).
#[derive(Debug)]
pub struct TuningCatalog {
    entries: RwLock<BTreeMap<ShapeClass, TuningEntry>>,
    count: AtomicUsize,
    pack_min_flops: AtomicU64,
    par_min_flops: AtomicU64,
    version: AtomicU64,
}

impl Default for TuningCatalog {
    fn default() -> Self {
        TuningCatalog::new()
    }
}

impl TuningCatalog {
    /// An empty catalog with the shipped default thresholds.
    pub fn new() -> TuningCatalog {
        TuningCatalog {
            entries: RwLock::new(BTreeMap::new()),
            count: AtomicUsize::new(0),
            pack_min_flops: AtomicU64::new(DEFAULT_PACK_MIN_FLOPS),
            par_min_flops: AtomicU64::new(DEFAULT_PAR_MIN_FLOPS),
            version: AtomicU64::new(0),
        }
    }

    /// Monotone mutation counter: any insert, threshold change, or
    /// clear bumps it.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Number of tuned shape classes.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// `true` when no class has been tuned (thresholds may still be
    /// non-default).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live dispatch thresholds.
    pub fn thresholds(&self) -> Thresholds {
        Thresholds {
            pack_min_flops: self.pack_min_flops.load(Ordering::Relaxed),
            par_min_flops: self.par_min_flops.load(Ordering::Relaxed),
        }
    }

    /// Replaces the dispatch thresholds (bumps the version).
    pub fn set_thresholds(&self, t: Thresholds) {
        self.pack_min_flops
            .store(t.pack_min_flops, Ordering::Relaxed);
        self.par_min_flops.store(t.par_min_flops, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Records (or replaces) one class's tuning result.
    pub fn insert(&self, class: ShapeClass, entry: TuningEntry) {
        let mut map = self.entries.write().expect("tuning catalog lock");
        map.insert(class, entry);
        self.count.store(map.len(), Ordering::Relaxed);
        drop(map);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// The recorded entry for a class, if any.
    pub fn lookup(&self, class: ShapeClass) -> Option<TuningEntry> {
        if self.is_empty() {
            return None;
        }
        self.entries
            .read()
            .expect("tuning catalog lock")
            .get(&class)
            .cloned()
    }

    /// The tuned dense blocking for an `m×k·k×n` product, if its class
    /// was tuned.
    pub fn dense_blocking(&self, m: usize, k: usize, n: usize) -> Option<GemmBlocking> {
        if self.is_empty() {
            return None;
        }
        self.lookup(ShapeClass::dense(m, k, n))
            .and_then(|e| e.dense_blocking())
    }

    /// The tuned CSR traversal for a CSR(`m×k`, `density`)×dense(`k×n`)
    /// product, if its class was tuned.
    pub fn csr_variant(&self, m: usize, k: usize, n: usize, density: f64) -> Option<CsrVariant> {
        if self.is_empty() {
            return None;
        }
        match self.lookup(ShapeClass::sparse(m, k, n, density))?.choice {
            KernelChoice::Csr(v) => Some(v),
            KernelChoice::Dense(_) => None,
        }
    }

    /// Every tuned class, in deterministic (ordered) form.
    pub fn snapshot(&self) -> Vec<(ShapeClass, TuningEntry)> {
        self.entries
            .read()
            .expect("tuning catalog lock")
            .iter()
            .map(|(c, e)| (*c, e.clone()))
            .collect()
    }

    /// Drops every entry and resets thresholds to defaults (bumps the
    /// version once).
    pub fn clear(&self) {
        let mut map = self.entries.write().expect("tuning catalog lock");
        map.clear();
        self.count.store(0, Ordering::Relaxed);
        drop(map);
        let d = Thresholds::default();
        self.pack_min_flops
            .store(d.pack_min_flops, Ordering::Relaxed);
        self.par_min_flops.store(d.par_min_flops, Ordering::Relaxed);
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

/// The process-wide catalog [`KernelConfig::global`] hands to code
/// that has no explicit handle (the legacy `matmul` path).
pub fn global_catalog() -> &'static Arc<TuningCatalog> {
    static CATALOG: OnceLock<Arc<TuningCatalog>> = OnceLock::new();
    CATALOG.get_or_init(|| Arc::new(TuningCatalog::new()))
}

// ---------------------------------------------------------------------
// Kernel configuration handle
// ---------------------------------------------------------------------

/// An explicit, immutable kernel-dispatch configuration: which GEMM
/// family runs ([`GemmMode`]), which [`TuningCatalog`] supplies
/// blockings and thresholds, and whether untuned shape classes are
/// tuned on first use.
///
/// This is the replacement for the process-global [`crate::set_gemm_mode`]
/// atomic: the engine threads a `KernelConfig` through its
/// `ExecOptions`, so concurrent executions with different settings
/// cannot race each other. [`KernelConfig::global`] snapshots the
/// legacy global (mode atomic + process catalog) and remains the
/// default for the CLI path.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    mode: GemmMode,
    catalog: Arc<TuningCatalog>,
    first_use: Option<TuneOptions>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig::untuned()
    }
}

impl KernelConfig {
    /// Packed dispatch with an explicit catalog.
    pub fn with_catalog(catalog: Arc<TuningCatalog>) -> KernelConfig {
        KernelConfig {
            mode: GemmMode::Packed,
            catalog,
            first_use: None,
        }
    }

    /// Packed dispatch with a fresh, empty catalog: exactly the shipped
    /// fixed-blocking behaviour.
    pub fn untuned() -> KernelConfig {
        KernelConfig::with_catalog(Arc::new(TuningCatalog::new()))
    }

    /// A snapshot of the legacy process-wide state: the
    /// [`crate::gemm_mode`] atomic plus the shared [`global_catalog`].
    /// Mode flips after this call do not affect the snapshot — that
    /// isolation is the point of the handle.
    pub fn global() -> KernelConfig {
        KernelConfig {
            mode: gemm_mode(),
            catalog: Arc::clone(global_catalog()),
            first_use: None,
        }
    }

    /// Overrides the GEMM family.
    pub fn with_mode(mut self, mode: GemmMode) -> KernelConfig {
        self.mode = mode;
        self
    }

    /// Enables first-use tuning: a packed-worthy product whose class
    /// has no catalog entry is tuned (with `opts`) before it runs, and
    /// the result is recorded. Concurrent first uses of one class may
    /// tune it twice; the probes are deterministic, so both record the
    /// same entry.
    pub fn with_first_use_tuning(mut self, opts: TuneOptions) -> KernelConfig {
        self.first_use = Some(opts);
        self
    }

    /// The configured GEMM family.
    pub fn mode(&self) -> GemmMode {
        self.mode
    }

    /// The catalog this configuration dispatches against.
    pub fn catalog(&self) -> &Arc<TuningCatalog> {
        &self.catalog
    }
}

impl DenseMatrix {
    /// Matrix multiply under an explicit [`KernelConfig`]: the packed
    /// kernel (with the catalog's blocking for this shape class, if
    /// tuned) for products past the catalog's
    /// [`Thresholds::pack_min_flops`], the reference kernel otherwise
    /// or when the config pins [`GemmMode::Reference`].
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul_with(&self, rhs: &DenseMatrix, cfg: &KernelConfig) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows(),
            self.cols(),
            rhs.rows(),
            rhs.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), rhs.cols());
        let th = cfg.catalog.thresholds();
        if cfg.mode != GemmMode::Packed || !crate::dense::worth_packing(m, k, n, th.pack_min_flops)
        {
            return self.matmul_reference(rhs);
        }
        let blocking = match cfg.catalog.dense_blocking(m, k, n) {
            Some(b) => b,
            None => match cfg.first_use {
                Some(opts) => {
                    let class = ShapeClass::dense(m, k, n);
                    let entry = tune_dense_class(class, opts);
                    let picked = entry.dense_blocking().unwrap_or(GemmBlocking::DEFAULT);
                    cfg.catalog.insert(class, entry);
                    picked
                }
                None => GemmBlocking::DEFAULT,
            },
        };
        // The untuned case must hand the compiler the same all-constant
        // call the direct `matmul_packed` path makes: runtime-valued
        // kc/mc defeat constant specialization of the packed sweep and
        // cost ~2% on the smallest packed products, which would blow
        // the `tune_overhead` budget without buying anything.
        if blocking == GemmBlocking::DEFAULT && th.par_min_flops == DEFAULT_PAR_MIN_FLOPS {
            return self.matmul_packed_with(rhs, GemmBlocking::DEFAULT);
        }
        self.matmul_packed_impl(rhs, blocking, th.par_min_flops)
    }
}

impl CsrMatrix {
    /// Sparse × dense multiply under an explicit [`KernelConfig`]: the
    /// catalog's traversal for this shape class when tuned (tuning on
    /// first use when the config asks for it), the row-major default
    /// otherwise. Both traversals are bit-identical.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_dense_with(&self, rhs: &DenseMatrix, cfg: &KernelConfig) -> DenseMatrix {
        let (m, k, n) = (self.rows(), self.cols(), rhs.cols());
        let density = self.measured_sparsity();
        let variant = match cfg.catalog.csr_variant(m, k, n, density) {
            Some(v) => v,
            None => match cfg.first_use {
                Some(opts) if self.nnz() > 0 && n > 0 => {
                    let class = ShapeClass::sparse(m, k, n, density);
                    let entry = tune_csr_class(class, opts);
                    let picked = match entry.choice {
                        KernelChoice::Csr(v) => v,
                        KernelChoice::Dense(_) => CsrVariant::RowBlocked,
                    };
                    cfg.catalog.insert(class, entry);
                    picked
                }
                _ => CsrVariant::RowBlocked,
            },
        };
        self.matmul_dense_variant(rhs, variant)
    }
}

// ---------------------------------------------------------------------
// The tuner
// ---------------------------------------------------------------------

/// How hard a tuning probe tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneOptions {
    /// Timing repetitions per candidate; the best (minimum) time wins,
    /// since scheduler noise only ever adds time.
    pub reps: usize,
    /// Cap on each probe-matrix dimension: classes whose representative
    /// shape is larger are probed at the cap instead, trading fidelity
    /// for bounded warmup time.
    pub dim_cap: usize,
}

impl TuneOptions {
    /// Best-of-3 probes capped at 768 per dimension (seconds per
    /// class): the `matopt tune` default.
    pub fn thorough() -> TuneOptions {
        TuneOptions {
            reps: 3,
            dim_cap: 768,
        }
    }

    /// Single probes capped at 160 per dimension (milliseconds per
    /// class): CI smoke and first-use tuning.
    pub fn quick() -> TuneOptions {
        TuneOptions {
            reps: 1,
            dim_cap: 160,
        }
    }

    /// [`TuneOptions::quick`] when `MATOPT_BENCH_QUICK` is set,
    /// [`TuneOptions::thorough`] otherwise — the same switch the
    /// bench binaries honour.
    pub fn from_env() -> TuneOptions {
        if std::env::var("MATOPT_BENCH_QUICK").is_ok() {
            TuneOptions::quick()
        } else {
            TuneOptions::thorough()
        }
    }
}

/// Deterministic per-class probe seed: tuning the same class always
/// measures the same matrices.
fn probe_seed(class: ShapeClass) -> u64 {
    0x7475_6e65 // "tune"
        ^ (u64::from(class.m_bucket) << 24)
        ^ (u64::from(class.k_bucket) << 16)
        ^ (u64::from(class.n_bucket) << 8)
        ^ u64::from(class.density_bucket)
}

/// Best-of-`reps` wall time per candidate, measured in interleaved
/// rounds: every round times each candidate once, so slow machine
/// drift (a co-tenant waking up mid-tune) degrades all candidates
/// roughly equally instead of poisoning whichever block it lands on.
/// The per-candidate minimum is the estimator — scheduler noise only
/// ever adds time.
fn best_times<T>(reps: usize, candidates: &[T], mut f: impl FnMut(&T) -> DenseMatrix) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; candidates.len()];
    for _ in 0..reps.max(1) {
        for (slot, cand) in best.iter_mut().zip(candidates) {
            let t = Instant::now();
            let out = f(cand);
            let dt = t.elapsed().as_secs_f64();
            std::hint::black_box(out);
            *slot = slot.min(dt);
        }
    }
    for slot in &mut best {
        *slot = slot.max(1e-9);
    }
    best
}

/// Benchmarks every [`GemmBlocking::CANDIDATES`] entry on the class's
/// (capped) representative shape and returns the measured entry. The
/// probe matrices are deterministic per class.
pub fn tune_dense_class(class: ShapeClass, opts: TuneOptions) -> TuningEntry {
    let (m, k, n) = class.representative_dims();
    let cap = opts.dim_cap.max(8);
    let (m, k, n) = (m.min(cap), k.min(cap), n.min(cap));
    let mut rng = crate::seeded_rng(probe_seed(class));
    let a = crate::random_dense_normal(m, k, &mut rng);
    let b = crate::random_dense_normal(k, n, &mut rng);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    // One untimed pass warms caches and the pool so candidate 0 does
    // not pay first-touch costs the others skip.
    std::hint::black_box(a.matmul_packed_with(&b, GemmBlocking::DEFAULT));
    let times = best_times(opts.reps, &GemmBlocking::CANDIDATES, |blocking| {
        a.matmul_packed_with(&b, *blocking)
    });
    let curve: Vec<(u16, f64)> = times
        .iter()
        .enumerate()
        .map(|(id, secs)| (id as u16, flops / secs / 1e9))
        .collect();
    let (winner, gflops) = curve
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidate grid is non-empty");
    TuningEntry {
        choice: KernelChoice::Dense(winner),
        gflops,
        probe_flops: flops,
        curve,
    }
}

/// Benchmarks both [`CsrVariant`]s on the class's (capped)
/// representative shape and density, returning the measured entry.
/// Curve ids are the variant discriminants (0 = row, 1 = column).
pub fn tune_csr_class(class: ShapeClass, opts: TuneOptions) -> TuningEntry {
    let (m, k, n) = class.representative_dims();
    let cap = opts.dim_cap.max(8);
    // Sparse probes afford larger shapes (work scales with nnz, not
    // m·k), and the row/column trade-off only shows once rhs rows
    // outgrow cache — so cap at 8× the dense cap.
    let cap = cap.saturating_mul(8);
    let (m, k, n) = (m.min(cap), k.min(cap), n.min(opts.dim_cap.max(8)));
    let density = class.representative_density();
    let mut rng = crate::seeded_rng(probe_seed(class));
    let a = crate::random_sparse_csr(m, k, density, &mut rng);
    let b = crate::random_dense_normal(k, n, &mut rng);
    let flops = 2.0 * a.nnz() as f64 * n as f64;
    std::hint::black_box(a.matmul_dense(&b));
    let variants = [CsrVariant::RowBlocked, CsrVariant::ColBlocked];
    let times = best_times(opts.reps, &variants, |v| a.matmul_dense_variant(&b, *v));
    let curve: Vec<(u16, f64)> = times
        .iter()
        .enumerate()
        .map(|(id, secs)| (id as u16, flops.max(1.0) / secs / 1e9))
        .collect();
    let (winner, gflops) = curve
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("variant list is non-empty");
    TuningEntry {
        choice: KernelChoice::Csr(variants[usize::from(winner)]),
        gflops,
        probe_flops: flops,
        curve,
    }
}

/// The dense shapes `matopt tune` warms by default: squares across the
/// packed kernel's working range plus the skinny/wide shapes where
/// register-tile choice actually flips.
pub fn standard_dense_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (96, 96, 96),
        (256, 256, 256),
        (512, 512, 512),
        (1024, 1024, 1024),
        (2048, 64, 2048),
        (4096, 384, 48),
        (48, 384, 4096),
        (192, 2048, 192),
    ]
}

/// The sparse shapes `matopt tune` warms by default (mirroring the
/// one-hot batch workloads the engine's CSR implementations target).
pub fn standard_sparse_shapes() -> Vec<(usize, usize, usize, f64)> {
    vec![(4096, 4096, 256, 0.01), (2048, 8192, 32, 0.001)]
}

/// Tunes every standard shape class into `catalog` (deduplicating
/// classes) and returns the tuned `(class, entry)` pairs in order.
pub fn tune_standard(catalog: &TuningCatalog, opts: TuneOptions) -> Vec<(ShapeClass, TuningEntry)> {
    let mut classes: Vec<ShapeClass> = Vec::new();
    for (m, k, n) in standard_dense_shapes() {
        let c = ShapeClass::dense(m, k, n);
        if !classes.contains(&c) {
            classes.push(c);
        }
    }
    for (m, k, n, d) in standard_sparse_shapes() {
        let c = ShapeClass::sparse(m, k, n, d);
        if !classes.contains(&c) {
            classes.push(c);
        }
    }
    let mut out = Vec::with_capacity(classes.len());
    for class in classes {
        let entry = if class.is_dense() {
            tune_dense_class(class, opts)
        } else {
            tune_csr_class(class, opts)
        };
        catalog.insert(class, entry.clone());
        out.push((class, entry));
    }
    out
}

// ---------------------------------------------------------------------
// Persistence: kernels.tune
// ---------------------------------------------------------------------

/// What loading a `kernels.tune` file found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuneLoadReport {
    /// Class entries decoded and verified.
    pub loaded: usize,
    /// Entries (or whole files) rejected by checksums or bounds checks.
    pub corrupt: usize,
    /// `true` when a verified thresholds record was applied.
    pub thresholds_loaded: bool,
}

/// FNV-1a over raw bytes (the stream checksum — the same fold the
/// engine's spill files and the plan cache use). Local copy:
/// `matopt-core` depends on this crate, so the helper cannot be
/// imported from there.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over words (the value checksum).
fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// One decoded record of the file.
#[derive(Debug, Clone, PartialEq)]
enum TuneRecord {
    Thresholds(Thresholds),
    Class(ShapeClass, TuningEntry),
}

fn encode_record(rec: &TuneRecord) -> Vec<u64> {
    match rec {
        TuneRecord::Thresholds(t) => vec![0, t.pack_min_flops, t.par_min_flops],
        TuneRecord::Class(class, e) => {
            let mut w = vec![
                1,
                u64::from(class.m_bucket),
                u64::from(class.k_bucket),
                u64::from(class.n_bucket),
                u64::from(class.density_bucket),
            ];
            match e.choice {
                KernelChoice::Dense(id) => {
                    w.push(0);
                    w.push(u64::from(id));
                }
                KernelChoice::Csr(v) => {
                    w.push(1);
                    w.push(match v {
                        CsrVariant::RowBlocked => 0,
                        CsrVariant::ColBlocked => 1,
                    });
                }
            }
            w.push(e.gflops.to_bits());
            w.push(e.probe_flops.to_bits());
            w.push(e.curve.len() as u64);
            for (id, g) in &e.curve {
                w.push(u64::from(*id));
                w.push(g.to_bits());
            }
            w
        }
    }
}

/// Bounds-checked word reader: every `take` can fail, nothing panics
/// on hostile input.
struct Reader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self) -> Option<u64> {
        let w = *self.words.get(self.pos)?;
        self.pos += 1;
        Some(w)
    }

    fn take_len(&mut self, max: usize) -> Option<usize> {
        let n = usize::try_from(self.take()?).ok()?;
        (n <= max).then_some(n)
    }

    fn take_u8(&mut self) -> Option<u8> {
        u8::try_from(self.take()?).ok()
    }
}

fn decode_record(body: &[u64]) -> Option<TuneRecord> {
    let mut r = Reader {
        words: body,
        pos: 0,
    };
    let rec = match r.take()? {
        0 => TuneRecord::Thresholds(Thresholds {
            pack_min_flops: r.take()?,
            par_min_flops: r.take()?,
        }),
        1 => {
            let class = ShapeClass {
                m_bucket: r.take_u8()?,
                k_bucket: r.take_u8()?,
                n_bucket: r.take_u8()?,
                density_bucket: r.take_u8()?,
            };
            let choice = match r.take()? {
                0 => {
                    let id = u16::try_from(r.take()?).ok()?;
                    (usize::from(id) < GemmBlocking::CANDIDATES.len()).then_some(())?;
                    KernelChoice::Dense(id)
                }
                1 => KernelChoice::Csr(match r.take()? {
                    0 => CsrVariant::RowBlocked,
                    1 => CsrVariant::ColBlocked,
                    _ => return None,
                }),
                _ => return None,
            };
            let gflops = f64::from_bits(r.take()?);
            let probe_flops = f64::from_bits(r.take()?);
            let n_curve = r.take_len(MAX_CURVE)?;
            let mut curve = Vec::with_capacity(n_curve);
            for _ in 0..n_curve {
                let id = u16::try_from(r.take()?).ok()?;
                curve.push((id, f64::from_bits(r.take()?)));
            }
            TuneRecord::Class(
                class,
                TuningEntry {
                    choice,
                    gflops,
                    probe_flops,
                    curve,
                },
            )
        }
        _ => return None,
    };
    // Trailing garbage inside the record is corruption, not padding.
    (r.pos == body.len()).then_some(rec)
}

/// Serializes a catalog snapshot to the `kernels.tune` byte format:
/// the thresholds record first, then every class in deterministic
/// (ordered) sequence, each framed as
/// `[body_len, stream_fnv(bytes), value_fnv(words), body…]`.
fn encode_catalog(catalog: &TuningCatalog) -> Vec<u8> {
    let mut records = vec![TuneRecord::Thresholds(catalog.thresholds())];
    for (class, entry) in catalog.snapshot() {
        records.push(TuneRecord::Class(class, entry));
    }
    let mut words = vec![MAGIC, records.len() as u64];
    for rec in &records {
        let body = encode_record(rec);
        words.push(body.len() as u64);
        words.push(fnv1a_bytes(&words_to_bytes(&body)));
        words.push(fnv1a_words(&body));
        words.extend_from_slice(&body);
    }
    words_to_bytes(&words)
}

/// Decodes a `kernels.tune` byte stream, skipping (and counting)
/// corrupt records. A record survives only when the stream checksum
/// matches the stored bytes *and* re-encoding the decoded value
/// reproduces the recorded word hash — a flipped byte can lose a
/// record, never alter one.
fn decode_catalog(bytes: &[u8]) -> (Vec<TuneRecord>, usize) {
    if !bytes.len().is_multiple_of(8) {
        return (Vec::new(), 1);
    }
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    let mut r = Reader {
        words: &words,
        pos: 0,
    };
    if r.take() != Some(MAGIC) {
        return (Vec::new(), 1);
    }
    let Some(count) = r.take_len(MAX_ENTRIES) else {
        return (Vec::new(), 1);
    };
    let mut out = Vec::new();
    let mut corrupt = 0usize;
    for _ in 0..count {
        let Some(body_len) = r.take_len(words.len().saturating_sub(r.pos)) else {
            // Header truncated: nothing after this point is framed.
            corrupt += 1;
            break;
        };
        let (Some(stream_fnv), Some(value_fnv)) = (r.take(), r.take()) else {
            corrupt += 1;
            break;
        };
        let Some(body) = words.get(r.pos..r.pos + body_len) else {
            corrupt += 1;
            break;
        };
        r.pos += body_len;
        if fnv1a_bytes(&words_to_bytes(body)) != stream_fnv {
            corrupt += 1;
            continue;
        }
        let Some(rec) = decode_record(body) else {
            corrupt += 1;
            continue;
        };
        if fnv1a_words(&encode_record(&rec)) != value_fnv {
            corrupt += 1;
            continue;
        }
        out.push(rec);
    }
    (out, corrupt)
}

/// Writes the catalog to `<dir>/kernels.tune` atomically (unique temp
/// file + rename, like the plan cache), creating `dir` if needed, and
/// sweeping temp debris from crashed writers. A crash mid-write leaves
/// the previous file intact. Returns the number of class entries
/// written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn save_catalog(dir: &Path, catalog: &TuningCatalog) -> io::Result<usize> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir)?;
    sweep_tmp_debris(dir);
    let written = catalog.len();
    let tmp = dir.join(format!(
        "{TUNE_FILE}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, encode_catalog(catalog))?;
    let renamed = std::fs::rename(&tmp, dir.join(TUNE_FILE));
    if renamed.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    renamed.map(|_| written)
}

/// Removes temp files abandoned by crashed writers.
fn sweep_tmp_debris(dir: &Path) {
    let tmp_prefix = format!("{TUNE_FILE}.tmp.");
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in listing.flatten() {
        if entry
            .file_name()
            .to_str()
            .is_some_and(|name| name.starts_with(&tmp_prefix))
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Loads `<dir>/kernels.tune` into `catalog`: verified class records
/// are inserted (replacing same-class entries) and a verified
/// thresholds record is applied. A missing file is an empty catalog;
/// a damaged file yields whatever records survive both checksums.
///
/// # Errors
/// Propagates filesystem errors other than "not found".
pub fn load_catalog_into(dir: &Path, catalog: &TuningCatalog) -> io::Result<TuneLoadReport> {
    let bytes = match std::fs::read(dir.join(TUNE_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(TuneLoadReport::default()),
        Err(e) => return Err(e),
    };
    let (records, corrupt) = decode_catalog(&bytes);
    let mut report = TuneLoadReport {
        corrupt,
        ..TuneLoadReport::default()
    };
    for rec in records {
        match rec {
            TuneRecord::Thresholds(t) => {
                catalog.set_thresholds(t);
                report.thresholds_loaded = true;
            }
            TuneRecord::Class(class, entry) => {
                catalog.insert(class, entry);
                report.loaded += 1;
            }
        }
    }
    Ok(report)
}

/// Loads `<dir>/kernels.tune` into a fresh catalog.
///
/// # Errors
/// Propagates filesystem errors other than "not found".
pub fn load_catalog(dir: &Path) -> io::Result<(TuningCatalog, TuneLoadReport)> {
    let catalog = TuningCatalog::new();
    let report = load_catalog_into(dir, &catalog)?;
    Ok((catalog, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample_entries() -> Vec<(ShapeClass, TuningEntry)> {
        vec![
            (
                ShapeClass::dense(384, 384, 384),
                TuningEntry {
                    choice: KernelChoice::Dense(2),
                    gflops: 11.5,
                    probe_flops: 2.0 * 384f64.powi(3),
                    curve: vec![(0, 10.0), (1, 9.5), (2, 11.5)],
                },
            ),
            (
                ShapeClass::sparse(4096, 4096, 256, 0.01),
                TuningEntry {
                    choice: KernelChoice::Csr(CsrVariant::ColBlocked),
                    gflops: 2.25,
                    probe_flops: 2.0 * 167_000.0 * 256.0,
                    curve: vec![(0, 1.75), (1, 2.25)],
                },
            ),
        ]
    }

    fn sample_catalog() -> TuningCatalog {
        let catalog = TuningCatalog::new();
        catalog.set_thresholds(Thresholds {
            pack_min_flops: 40_000,
            par_min_flops: 12_000_000,
        });
        for (c, e) in sample_entries() {
            catalog.insert(c, e);
        }
        catalog
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "matopt-tune-unit-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn shape_classes_bucket_logarithmically() {
        assert_eq!(
            ShapeClass::dense(256, 256, 256),
            ShapeClass::dense(300, 511, 384)
        );
        assert_ne!(
            ShapeClass::dense(256, 256, 256),
            ShapeClass::dense(512, 256, 256)
        );
        assert!(ShapeClass::dense(8, 8, 8).is_dense());
        let s = ShapeClass::sparse(4096, 4096, 256, 0.01);
        assert!(!s.is_dense());
        assert_eq!(s.density_bucket, 16);
        // Same dims, different density decade → different class.
        assert_ne!(s, ShapeClass::sparse(4096, 4096, 256, 0.001));
        // Degenerate densities never collide with the dense marker.
        assert!(!ShapeClass::sparse(4, 4, 4, 0.0).is_dense());
        assert!(!ShapeClass::sparse(4, 4, 4, 1e-300).is_dense());
    }

    #[test]
    fn representative_dims_sit_inside_the_bucket() {
        let c = ShapeClass::dense(300, 70, 1024);
        let (m, k, n) = c.representative_dims();
        assert_eq!((m, k, n), (384, 96, 1536));
        assert_eq!(ShapeClass::dense(m, k, n), c);
        assert_eq!(ShapeClass::dense(1, 1, 1).representative_dims(), (1, 1, 1));
    }

    #[test]
    fn catalog_version_bumps_on_every_mutation() {
        let catalog = TuningCatalog::new();
        let v0 = catalog.version();
        catalog.set_thresholds(Thresholds::default());
        let v1 = catalog.version();
        assert_eq!(v1, v0 + 1);
        let (c, e) = sample_entries().remove(0);
        catalog.insert(c, e);
        assert_eq!(catalog.version(), v1 + 1);
        assert_eq!(catalog.len(), 1);
        catalog.clear();
        assert_eq!(catalog.version(), v1 + 2);
        assert!(catalog.is_empty());
        assert_eq!(catalog.thresholds(), Thresholds::default());
    }

    #[test]
    fn empty_catalog_dispatch_is_untuned_default() {
        let cfg = KernelConfig::untuned();
        assert!(cfg.catalog().dense_blocking(512, 512, 512).is_none());
        assert_eq!(cfg.catalog().thresholds(), Thresholds::default());
        let a = crate::random_dense_normal(40, 40, &mut crate::seeded_rng(1));
        let b = crate::random_dense_normal(40, 40, &mut crate::seeded_rng(2));
        // Bit-identical to the legacy global path.
        assert_eq!(a.matmul_with(&b, &cfg).data(), a.matmul(&b).data());
    }

    #[test]
    fn tuned_catalog_changes_dispatch_but_not_results() {
        let catalog = Arc::new(TuningCatalog::new());
        let class = ShapeClass::dense(96, 96, 96);
        catalog.insert(
            class,
            TuningEntry {
                choice: KernelChoice::Dense(2), // 8×6 tile
                gflops: 1.0,
                probe_flops: 1.0,
                curve: vec![(2, 1.0)],
            },
        );
        assert_eq!(
            catalog.dense_blocking(96, 96, 96),
            Some(GemmBlocking::CANDIDATES[2])
        );
        let cfg = KernelConfig::with_catalog(catalog);
        let a = crate::random_dense_normal(96, 96, &mut crate::seeded_rng(3));
        let b = crate::random_dense_normal(96, 96, &mut crate::seeded_rng(4));
        // The ascending-k invariant: a different blocking, the same bits.
        assert_eq!(a.matmul_with(&b, &cfg).data(), a.matmul_packed(&b).data());
    }

    #[test]
    fn reference_mode_config_pins_the_reference_kernel() {
        let cfg = KernelConfig::untuned().with_mode(GemmMode::Reference);
        let a = crate::random_dense_normal(64, 64, &mut crate::seeded_rng(5));
        let b = crate::random_dense_normal(64, 64, &mut crate::seeded_rng(6));
        assert_eq!(
            a.matmul_with(&b, &cfg).data(),
            a.matmul_reference(&b).data()
        );
    }

    #[test]
    fn pack_threshold_from_catalog_gates_dispatch() {
        // Raise the packing threshold above this product and the packed
        // kernel must not run (observable because Reference-mode output
        // equals the threshold-gated output bit-for-bit).
        let catalog = Arc::new(TuningCatalog::new());
        catalog.set_thresholds(Thresholds {
            pack_min_flops: u64::MAX,
            par_min_flops: u64::MAX,
        });
        let cfg = KernelConfig::with_catalog(catalog);
        let a = crate::random_dense_normal(64, 64, &mut crate::seeded_rng(7));
        let b = crate::random_dense_normal(64, 64, &mut crate::seeded_rng(8));
        assert_eq!(
            a.matmul_with(&b, &cfg).data(),
            a.matmul_reference(&b).data()
        );
    }

    #[test]
    fn first_use_tuning_records_the_class() {
        let catalog = Arc::new(TuningCatalog::new());
        let cfg =
            KernelConfig::with_catalog(Arc::clone(&catalog)).with_first_use_tuning(TuneOptions {
                reps: 1,
                dim_cap: 32,
            });
        let a = crate::random_dense_normal(48, 48, &mut crate::seeded_rng(9));
        let b = crate::random_dense_normal(48, 48, &mut crate::seeded_rng(10));
        let tuned = a.matmul_with(&b, &cfg);
        assert_eq!(catalog.len(), 1);
        assert!(catalog
            .lookup(ShapeClass::dense(48, 48, 48))
            .is_some_and(|e| !e.curve.is_empty() && e.gflops > 0.0));
        // Whatever won, the product is bit-identical to the default.
        assert_eq!(tuned.data(), a.matmul_packed(&b).data());
    }

    #[test]
    fn tune_dense_class_measures_every_candidate() {
        let entry = tune_dense_class(
            ShapeClass::dense(64, 64, 64),
            TuneOptions {
                reps: 1,
                dim_cap: 48,
            },
        );
        assert_eq!(entry.curve.len(), GemmBlocking::CANDIDATES.len());
        assert!(entry.curve.iter().all(|(_, g)| *g > 0.0));
        assert!(entry.gflops > 0.0);
        assert!(entry.dense_blocking().is_some());
    }

    #[test]
    fn tune_csr_class_measures_both_variants() {
        let entry = tune_csr_class(
            ShapeClass::sparse(256, 256, 32, 0.05),
            TuneOptions {
                reps: 1,
                dim_cap: 64,
            },
        );
        assert_eq!(entry.curve.len(), 2);
        assert!(matches!(entry.choice, KernelChoice::Csr(_)));
        assert!(entry.gflops > 0.0);
    }

    #[test]
    fn catalog_file_round_trips() {
        let catalog = sample_catalog();
        let dir = temp_dir("roundtrip");
        let written = save_catalog(&dir, &catalog).expect("save");
        assert_eq!(written, 2);
        let (loaded, report) = load_catalog(&dir).expect("load");
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.loaded, 2);
        assert!(report.thresholds_loaded);
        assert_eq!(loaded.thresholds(), catalog.thresholds());
        assert_eq!(loaded.snapshot(), catalog.snapshot());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_loads_empty() {
        let dir = temp_dir("missing");
        let (loaded, report) = load_catalog(&dir).expect("load");
        assert_eq!(report, TuneLoadReport::default());
        assert!(loaded.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_single_byte_flip_is_caught_or_harmless() {
        let catalog = sample_catalog();
        let clean = encode_catalog(&catalog);
        let clean_records: Vec<Vec<u64>> = {
            let (recs, corrupt) = decode_catalog(&clean);
            assert_eq!(corrupt, 0);
            recs.iter().map(encode_record).collect()
        };
        for i in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x40;
            let (records, _corrupt) = decode_catalog(&dirty);
            // The safety property: a flip may *lose* records (the class
            // stays untuned), but any record that survives decoding must
            // re-encode byte-identical to one that was written — never a
            // blocking or throughput the flip altered.
            for rec in &records {
                assert!(
                    clean_records.contains(&encode_record(rec)),
                    "flip at byte {i} surfaced an altered record"
                );
            }
        }
    }

    #[test]
    fn truncation_is_corrupt_not_panic() {
        let catalog = sample_catalog();
        let clean = encode_catalog(&catalog);
        for end in 0..clean.len() {
            let (records, corrupt) = decode_catalog(&clean[..end]);
            // A prefix can only ever surface fully-verified leading
            // records; anything cut mid-record is flagged.
            assert!(
                corrupt >= 1 || (end < 16 && records.is_empty()),
                "truncation at {end} not flagged"
            );
            let full: Vec<Vec<u64>> = decode_catalog(&clean).0.iter().map(encode_record).collect();
            for rec in &records {
                assert!(full.contains(&encode_record(rec)));
            }
        }
    }

    #[test]
    fn crash_mid_persist_leaves_old_catalog_loadable_and_sweeps_debris() {
        let dir = temp_dir("crash");
        let catalog = sample_catalog();
        save_catalog(&dir, &catalog).expect("initial save");
        let encoded = encode_catalog(&catalog);
        // A writer that died at every possible point of its temp write.
        for end in (0..encoded.len()).step_by(7) {
            let tmp = dir.join(format!("{TUNE_FILE}.tmp.{}.crash{end}", std::process::id()));
            std::fs::write(&tmp, &encoded[..end]).expect("partial tmp");
            let (loaded, report) = load_catalog(&dir).expect("load");
            assert_eq!(report.corrupt, 0, "crash at {end} corrupted the catalog");
            assert_eq!(loaded.snapshot(), catalog.snapshot());
        }
        // The next writer sweeps every piece of debris.
        save_catalog(&dir, &catalog).expect("post-crash save");
        let leftovers: Vec<String> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!("{TUNE_FILE}.tmp.")))
            .collect();
        assert!(leftovers.is_empty(), "debris survived: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_into_merges_and_applies_thresholds() {
        let dir = temp_dir("merge");
        save_catalog(&dir, &sample_catalog()).expect("save");
        let target = TuningCatalog::new();
        let extra = ShapeClass::dense(8, 8, 8);
        target.insert(
            extra,
            TuningEntry {
                choice: KernelChoice::Dense(0),
                gflops: 1.0,
                probe_flops: 1024.0,
                curve: vec![(0, 1.0)],
            },
        );
        let report = load_catalog_into(&dir, &target).expect("load");
        assert_eq!(report.loaded, 2);
        assert!(report.thresholds_loaded);
        assert_eq!(target.len(), 3); // merged, not replaced
        assert_eq!(target.thresholds().pack_min_flops, 40_000);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
