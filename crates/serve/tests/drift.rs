//! Cost-model drift telemetry at the service boundary: sustained
//! out-of-band measured/predicted ratios bump the plan-cache epoch
//! exactly once, stale plans re-optimize, and recalibration re-arms
//! the monitor.

use matopt_core::{Cluster, FormatCatalog, ImplRegistry};
use matopt_cost::{AnalyticalCostModel, DriftConfig};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_obs::{MetricsRegistry, Obs, RingSink, Subsystem};
use matopt_serve::{PlanService, PlanSource, ServeConfig};
use std::sync::Arc;

fn drift_config() -> DriftConfig {
    DriftConfig {
        ewma_alpha: 0.5,
        baseline_window: 3,
        min_observations: 4,
        band: 0.5,
    }
}

fn metered_service() -> PlanService {
    let config = ServeConfig {
        drift: drift_config(),
        ..Default::default()
    };
    let obs = Obs::with_metrics(Arc::new(RingSink::new(1024)), MetricsRegistry::new());
    PlanService::with_obs(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        Cluster::simsql_like(4),
        Box::new(AnalyticalCostModel),
        config,
        obs,
    )
}

#[test]
fn sustained_drift_bumps_epoch_exactly_once_and_forces_a_replan() {
    let service = metered_service();
    let graph = ffnn_w2_update_graph(FfnnConfig::laptop(8))
        .expect("ffnn graph")
        .graph;

    let planned = service.plan(&graph).expect("plan");
    assert_eq!(planned.source, PlanSource::Miss);
    let fp = planned.fingerprint;
    let epoch0 = service.cache().epoch();

    // In-band warmup: baseline ratio ≈ 2× predicted.
    let predicted = planned.plan.cost;
    for _ in 0..3 {
        assert!(!service.observe_runtime(fp, predicted, predicted * 2.0));
    }
    assert_eq!(service.cache().epoch(), epoch0);
    assert_eq!(service.plan(&graph).expect("plan").source, PlanSource::Hit);

    // Perturbed kernel timing: measurements land at 3× the calibrated
    // baseline. Exactly one bump, no matter how long it persists.
    let mut bumps = 0;
    for _ in 0..40 {
        if service.observe_runtime(fp, predicted, predicted * 6.0) {
            bumps += 1;
        }
    }
    assert_eq!(bumps, 1, "drift must latch after the first event");
    assert_eq!(service.cache().epoch(), epoch0 + 1);

    // The cached plan was born in the old epoch: next request re-plans.
    let replanned = service.plan(&graph).expect("plan");
    assert_eq!(replanned.source, PlanSource::Miss);
    assert_eq!(replanned.fingerprint, fp);
    assert_eq!(
        replanned.plan.cost, planned.plan.cost,
        "same graph, same model: the re-plan is bit-equal in cost"
    );

    // The drift event is visible in the metrics registry and the event
    // stream.
    let snap = service.metrics_snapshot().expect("metrics enabled");
    assert_eq!(snap.counter(Subsystem::CostModel, "drift_events"), Some(1));
    let events = service.obs().metrics().is_some();
    assert!(events);

    // Recalibration re-arms: a fresh baseline forms at the new ratio
    // and a further shift can fire again.
    service.recalibrate(Box::new(AnalyticalCostModel));
    for _ in 0..3 {
        assert!(!service.observe_runtime(fp, predicted, predicted * 6.0));
    }
    let refired = (0..40).any(|_| service.observe_runtime(fp, predicted, predicted * 24.0));
    assert!(refired, "recalibrate must re-arm the latch");
}

#[test]
fn concurrent_observers_bump_the_epoch_exactly_once() {
    // The front door feeds observe_runtime from every execution worker.
    // N threads hammering the same fingerprint with drifted timings must
    // collapse to exactly one epoch bump (one re-plan storm averted) and
    // leave the monitor's EWMA coherent, not torn across writers.
    const THREADS: usize = 8;
    const ROUNDS: usize = 100;

    let service = metered_service();
    let graph = ffnn_w2_update_graph(FfnnConfig::laptop(8))
        .expect("ffnn graph")
        .graph;
    let planned = service.plan(&graph).expect("plan");
    let fp = planned.fingerprint;
    let predicted = planned.plan.cost;
    let epoch0 = service.cache().epoch();

    // Serial in-band warmup establishes the baseline deterministically.
    for _ in 0..3 {
        assert!(!service.observe_runtime(fp, predicted, predicted * 2.0));
    }

    let bumps = std::sync::atomic::AtomicU32::new(0);
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let service = &service;
            let bumps = &bumps;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    if service.observe_runtime(fp, predicted, predicted * 6.0) {
                        bumps.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert_eq!(
        bumps.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "{THREADS} racing observers must share one drift latch"
    );
    assert_eq!(
        service.cache().epoch(),
        epoch0 + 1,
        "exactly one epoch bump"
    );
    let snap = service.metrics_snapshot().expect("metrics enabled");
    assert_eq!(snap.counter(Subsystem::CostModel, "drift_events"), Some(1));

    // Still latched: a later serial observer cannot re-fire.
    for _ in 0..20 {
        assert!(!service.observe_runtime(fp, predicted, predicted * 6.0));
    }
    assert_eq!(service.cache().epoch(), epoch0 + 1);
}

#[test]
fn stable_ratios_never_invalidate_even_far_from_unity() {
    let service = metered_service();
    let graph = ffnn_w2_update_graph(FfnnConfig::laptop(8))
        .expect("ffnn graph")
        .graph;
    let planned = service.plan(&graph).expect("plan");
    let epoch0 = service.cache().epoch();

    // A constant 50× gap between modeled-cluster predictions and
    // laptop wall time is calibration scale, not drift.
    for _ in 0..100 {
        assert!(!service.observe_runtime(
            planned.fingerprint,
            planned.plan.cost,
            planned.plan.cost * 50.0
        ));
    }
    assert_eq!(service.cache().epoch(), epoch0);
    assert_eq!(service.plan(&graph).expect("plan").source, PlanSource::Hit);
}
