//! Validation and feature accounting for annotated compute graphs —
//! the type-correctness rules of §4.2 and the plan-cost decomposition
//! of §4.3.

use crate::features::CostFeatures;
use crate::graph::{Annotation, ComputeGraph, NodeId, NodeKind};
use crate::impls::ImplRegistry;
use crate::transforms::TransformCatalog;
use crate::Cluster;

/// Everything needed to interpret an annotation: the implementation
/// registry, the transformation catalog, and the target cluster.
#[derive(Debug, Clone)]
pub struct PlanContext<'a> {
    /// The atomic computation implementations available.
    pub registry: &'a ImplRegistry,
    /// The transformation catalog.
    pub transforms: TransformCatalog,
    /// The cluster plans are costed against.
    pub cluster: Cluster,
}

impl<'a> PlanContext<'a> {
    /// Builds a context.
    pub fn new(registry: &'a ImplRegistry, cluster: Cluster) -> Self {
        PlanContext {
            registry,
            transforms: TransformCatalog,
            cluster,
        }
    }
}

/// Why an annotation is not type-correct.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A compute vertex has no choice.
    MissingChoice(NodeId),
    /// The chosen implementation implements a different atomic
    /// computation than the vertex (`v.i.a ≠ v.a`).
    WrongOp(NodeId),
    /// The number of input transformations disagrees with the vertex
    /// arity.
    TransformArity(NodeId),
    /// An edge transformation does not exist for the producing format.
    BadTransform {
        /// The consuming vertex.
        node: NodeId,
        /// Which input edge.
        input: usize,
    },
    /// The implementation rejected the (transformed) input formats
    /// (`v.p = ⊥`).
    ImplRejected(NodeId),
    /// The implementation produced a different output format than the
    /// annotation recorded.
    OutputMismatch(NodeId),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MissingChoice(v) => write!(f, "vertex {v} has no annotation"),
            PlanError::WrongOp(v) => write!(f, "vertex {v}: implementation for wrong op"),
            PlanError::TransformArity(v) => write!(f, "vertex {v}: transform arity mismatch"),
            PlanError::BadTransform { node, input } => {
                write!(f, "vertex {node}: no such transform on input {input}")
            }
            PlanError::ImplRejected(v) => {
                write!(f, "vertex {v}: implementation rejected input formats")
            }
            PlanError::OutputMismatch(v) => {
                write!(f, "vertex {v}: recorded output format mismatch")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl PlanError {
    /// The vertex this error is scoped to.
    pub fn vertex(&self) -> NodeId {
        match self {
            PlanError::MissingChoice(v)
            | PlanError::WrongOp(v)
            | PlanError::TransformArity(v)
            | PlanError::ImplRejected(v)
            | PlanError::OutputMismatch(v) => *v,
            PlanError::BadTransform { node, .. } => *node,
        }
    }

    /// The error message with the vertex's graph label spliced in, in
    /// the executor's `vertex v3 ("loss")` convention. Falls back to
    /// plain [`Display`](std::fmt::Display) for unnamed vertices.
    pub fn describe(&self, graph: &ComputeGraph) -> String {
        let v = self.vertex();
        let plain = self.to_string();
        if v.index() >= graph.len() {
            return plain;
        }
        match graph.node(v).name.as_deref() {
            Some(label) => plain.replacen(
                &format!("vertex {v}"),
                &format!("vertex {v} ({label:?})"),
                1,
            ),
            None => plain,
        }
    }
}

/// Per-vertex feature breakdown of a validated plan.
#[derive(Debug, Clone, Default)]
pub struct PlanFeatures {
    /// Implementation features per compute vertex (indexed by node id;
    /// `None` for sources).
    pub impl_features: Vec<Option<CostFeatures>>,
    /// Transformation features per in-edge `(vertex, input index)`.
    pub transform_features: Vec<Vec<CostFeatures>>,
    /// Peak per-worker memory estimate across all vertices.
    pub peak_mem_per_worker: f64,
    /// Sum of everything.
    pub total: CostFeatures,
}

/// Checks type-correctness (§4.2) and computes the feature breakdown of
/// an annotated graph in one topological walk.
///
/// # Errors
/// Returns the first [`PlanError`] encountered.
pub fn plan_features(
    graph: &ComputeGraph,
    annotation: &Annotation,
    ctx: &PlanContext<'_>,
) -> Result<PlanFeatures, PlanError> {
    let mut out = PlanFeatures {
        impl_features: vec![None; graph.len()],
        transform_features: vec![Vec::new(); graph.len()],
        peak_mem_per_worker: 0.0,
        total: CostFeatures::zero(),
    };
    for (id, node) in graph.iter() {
        let NodeKind::Compute { op } = &node.kind else {
            continue;
        };
        let choice = annotation.choice(id).ok_or(PlanError::MissingChoice(id))?;
        let impl_def = ctx.registry.get(choice.impl_id);
        if impl_def.op != op.kind() {
            return Err(PlanError::WrongOp(id));
        }
        if choice.input_transforms.len() != node.inputs.len() {
            return Err(PlanError::TransformArity(id));
        }
        // Transform each input and accumulate transform features.
        let mut transformed = Vec::with_capacity(node.inputs.len());
        for (j, (input_id, t)) in node
            .inputs
            .iter()
            .zip(choice.input_transforms.iter())
            .enumerate()
        {
            let in_type = graph.node(*input_id).mtype;
            let in_fmt = annotation
                .format_of(graph, *input_id)
                .ok_or(PlanError::MissingChoice(*input_id))?;
            let found = ctx.transforms.find(&in_type, in_fmt, t.to);
            if found != Some(*t) {
                return Err(PlanError::BadTransform { node: id, input: j });
            }
            let tf = ctx.transforms.features(&in_type, in_fmt, *t, &ctx.cluster);
            out.total += tf;
            out.transform_features[id.index()].push(tf);
            transformed.push((in_type, t.to));
        }
        let eval = impl_def
            .evaluate(op, &transformed, &ctx.cluster)
            .ok_or(PlanError::ImplRejected(id))?;
        if eval.out_format != choice.output_format {
            return Err(PlanError::OutputMismatch(id));
        }
        out.peak_mem_per_worker = out.peak_mem_per_worker.max(eval.mem_per_worker);
        out.total += eval.features;
        out.impl_features[id.index()] = Some(eval.features);
    }
    Ok(out)
}

/// Convenience: `true` when the annotation is complete and
/// type-correct.
pub fn validate(
    graph: &ComputeGraph,
    annotation: &Annotation,
    ctx: &PlanContext<'_>,
) -> Result<(), PlanError> {
    plan_features(graph, annotation, ctx).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::PhysFormat;
    use crate::graph::VertexChoice;
    use crate::ops::Op;
    use crate::transforms::Transform;
    use crate::types::MatrixType;

    /// matA(single) × matB(single) with a local multiply: the simplest
    /// valid annotation.
    fn simple_plan() -> (ComputeGraph, Annotation, ImplRegistry) {
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source(MatrixType::dense(1000, 2000), PhysFormat::SingleTuple);
        let b = g.add_source(MatrixType::dense(2000, 500), PhysFormat::SingleTuple);
        let c = g.add_op(Op::MatMul, &[a, b]).unwrap();
        let mut ann = Annotation::empty(&g);
        let mm = reg.by_name("mm_single_local").unwrap().id;
        ann.set(
            c,
            VertexChoice {
                impl_id: mm,
                input_transforms: vec![
                    Transform::identity(PhysFormat::SingleTuple),
                    Transform::identity(PhysFormat::SingleTuple),
                ],
                output_format: PhysFormat::SingleTuple,
            },
        );
        (g, ann, reg)
    }

    #[test]
    fn valid_plan_passes_and_sums_features() {
        let (g, ann, reg) = simple_plan();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let f = plan_features(&g, &ann, &ctx).unwrap();
        // 2 * 1000 * 2000 * 500 flops in a single-threaded local kernel.
        let c = crate::graph::NodeId(2);
        assert_eq!(f.impl_features[c.index()].unwrap().local_flops, 2e9);
        assert!(f.total.local_flops >= 2e9);
        assert!(f.peak_mem_per_worker > 0.0);
    }

    #[test]
    fn missing_choice_is_reported() {
        let (g, _, reg) = simple_plan();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let empty = Annotation::empty(&g);
        assert!(matches!(
            validate(&g, &empty, &ctx),
            Err(PlanError::MissingChoice(_))
        ));
    }

    #[test]
    fn wrong_op_is_reported() {
        let (g, mut ann, reg) = simple_plan();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let c = crate::graph::NodeId(2);
        let mut choice = ann.choice(c).unwrap().clone();
        choice.impl_id = reg.by_name("add_single_local").unwrap().id;
        ann.set(c, choice);
        assert_eq!(validate(&g, &ann, &ctx), Err(PlanError::WrongOp(c)));
    }

    #[test]
    fn impl_rejection_is_reported() {
        let (g, mut ann, reg) = simple_plan();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let c = crate::graph::NodeId(2);
        // Feed the local multiply tiled inputs: it must reject them.
        let tile = PhysFormat::Tile { side: 100 };
        let mut choice = ann.choice(c).unwrap().clone();
        choice.input_transforms = vec![
            Transform {
                kind: crate::transforms::TransformKind::SingleToTile,
                to: tile,
            },
            Transform {
                kind: crate::transforms::TransformKind::SingleToTile,
                to: tile,
            },
        ];
        ann.set(c, choice);
        assert_eq!(validate(&g, &ann, &ctx), Err(PlanError::ImplRejected(c)));
    }

    #[test]
    fn transforms_feed_the_impl_and_are_costed() {
        // single inputs, but run the tile shuffle multiply by
        // transforming both sides to tiles first.
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source(MatrixType::dense(1000, 2000), PhysFormat::SingleTuple);
        let b = g.add_source(MatrixType::dense(2000, 500), PhysFormat::SingleTuple);
        let c = g.add_op(Op::MatMul, &[a, b]).unwrap();
        let mut ann = Annotation::empty(&g);
        let tile = PhysFormat::Tile { side: 100 };
        ann.set(
            c,
            VertexChoice {
                impl_id: reg.by_name("mm_tile_shuffle").unwrap().id,
                input_transforms: vec![
                    Transform {
                        kind: crate::transforms::TransformKind::SingleToTile,
                        to: tile,
                    },
                    Transform {
                        kind: crate::transforms::TransformKind::SingleToTile,
                        to: tile,
                    },
                ],
                output_format: tile,
            },
        );
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let f = plan_features(&g, &ann, &ctx).unwrap();
        assert_eq!(f.transform_features[c.index()].len(), 2);
        assert!(f.transform_features[c.index()][0].net_bytes > 0.0);
    }

    #[test]
    fn recorded_output_format_must_match() {
        let (g, mut ann, reg) = simple_plan();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let c = crate::graph::NodeId(2);
        let mut choice = ann.choice(c).unwrap().clone();
        choice.output_format = PhysFormat::Tile { side: 100 };
        ann.set(c, choice);
        assert_eq!(validate(&g, &ann, &ctx), Err(PlanError::OutputMismatch(c)));
    }

    #[test]
    fn describe_names_vertex_and_label() {
        let (mut g, _, reg) = simple_plan();
        let c = crate::graph::NodeId(2);
        g.rename(c, "loss");
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let err = validate(&g, &Annotation::empty(&g), &ctx).unwrap_err();
        assert_eq!(err.vertex(), c);
        let msg = err.describe(&g);
        assert!(msg.contains("vertex v2 (\"loss\")"), "got {msg:?}");
        // Unnamed vertices keep the plain rendering.
        let (g2, _, _) = simple_plan();
        let err2 = validate(&g2, &Annotation::empty(&g2), &ctx).unwrap_err();
        assert_eq!(err2.describe(&g2), err2.to_string());
    }
}
