//! Circuit breaker for the multi-tenant front door.
//!
//! The breaker watches *storm* signals — cost-model drift latches from
//! the [`matopt_cost::DriftMonitor`], fault recoveries from the
//! fault-tolerant executor (the serve-side view of the
//! `Subsystem::Faults` counters), and outright execution failures —
//! and, when too many land inside a sliding window, stops trusting the
//! optimized fast path entirely.
//!
//! # State machine
//!
//! ```text
//!            storm (>= trip_threshold events in window)
//!   Closed ────────────────────────────────────────────▶ Open
//!     ▲                                                   │
//!     │ probe_successes consecutive                       │ cooldown
//!     │ successful probes                                 ▼
//!     └───────────────────────────────────────────── HalfOpen
//!                       failed probe ──▶ Open (again; a *reopen*,
//!                                        not a new trip)
//! ```
//!
//! * **Closed** — normal service. Every storm event is timestamped;
//!   when `trip_threshold` of them fall inside `window`, the breaker
//!   trips to Open (`trips` increments — the bench asserts this
//!   happens *exactly once* under a seeded storm).
//! * **Open** — the front door degrades: serial, unhedged,
//!   cache-bypassing execution (see `front.rs`). Degraded requests
//!   still get correct answers; nothing is dropped. After `cooldown`
//!   the next request becomes a probe.
//! * **HalfOpen** — one probe at a time runs the normal path; other
//!   requests stay degraded. `probe_successes` consecutive successes
//!   close the breaker and clear the event window; one failure reopens
//!   it (counted in `reopens`, so trip-exactly-once stays assertable).
//!
//! All transitions happen under one mutex; the per-request cost when
//! Closed with no events is a lock + two branch checks.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// `false` pins the breaker Closed: decisions are always
    /// [`BreakerDecision::Normal`] and events are not recorded.
    pub enabled: bool,
    /// Storm events inside [`BreakerConfig::window`] that trip Closed
    /// → Open.
    pub trip_threshold: u32,
    /// Sliding window storm events are counted over.
    pub window: Duration,
    /// Time Open before the next request probes the normal path.
    pub cooldown: Duration,
    /// Consecutive successful probes required to close again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            trip_threshold: 8,
            window: Duration::from_secs(5),
            cooldown: Duration::from_millis(500),
            probe_successes: 3,
        }
    }
}

/// Where the breaker currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal service.
    Closed,
    /// Storm detected: every request degrades.
    Open,
    /// Cooling down: probes trickle through the normal path.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label (metrics, JSON reports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What the front door should do with the request that just arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Full fast path: cached plans, batching, hedging, shared pool.
    Normal,
    /// Serial, unhedged, cache-bypassing execution.
    Degraded,
    /// Normal path, but report the outcome via
    /// [`CircuitBreaker::probe_result`].
    Probe,
}

/// Counter snapshot from [`CircuitBreaker::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed → Open transitions.
    pub trips: u64,
    /// HalfOpen → Open transitions (failed probes).
    pub reopens: u64,
    /// Storm events recorded (drift latches + fault recoveries +
    /// execution failures).
    pub storm_events: u64,
    /// Requests served degraded.
    pub degraded: u64,
    /// Probes run.
    pub probes: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    events: VecDeque<Instant>,
    opened_at: Option<Instant>,
    probes_ok: u32,
    probe_inflight: bool,
    trips: u64,
    reopens: u64,
    storm_events: u64,
    degraded: u64,
    probes: u64,
}

/// The sliding-window circuit breaker. Thread-safe; every method is a
/// short mutex hold.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A breaker with the given tuning, starting Closed.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                events: VecDeque::new(),
                opened_at: None,
                probes_ok: 0,
                probe_inflight: false,
                trips: 0,
                reopens: 0,
                storm_events: 0,
                degraded: 0,
                probes: 0,
            }),
        }
    }

    /// The breaker's tuning.
    #[must_use]
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Records one storm event (a drift latch, a fault recovery, or an
    /// execution failure) and returns `true` the moment this event
    /// trips the breaker Closed → Open.
    pub fn record_storm_event(&self) -> bool {
        if !self.config.enabled {
            return false;
        }
        let now = Instant::now();
        let mut b = self.inner.lock().expect("breaker lock");
        b.storm_events += 1;
        if b.state != BreakerState::Closed {
            return false;
        }
        b.events.push_back(now);
        while let Some(front) = b.events.front() {
            if now.duration_since(*front) > self.config.window {
                b.events.pop_front();
            } else {
                break;
            }
        }
        if b.events.len() as u32 >= self.config.trip_threshold {
            b.state = BreakerState::Open;
            b.opened_at = Some(now);
            b.trips += 1;
            b.events.clear();
            return true;
        }
        false
    }

    /// Routes the request that just arrived: Normal when Closed,
    /// Degraded when Open (flipping to a probe once the cooldown
    /// elapses), one probe at a time when HalfOpen.
    pub fn decision(&self) -> BreakerDecision {
        if !self.config.enabled {
            return BreakerDecision::Normal;
        }
        let mut b = self.inner.lock().expect("breaker lock");
        match b.state {
            BreakerState::Closed => BreakerDecision::Normal,
            BreakerState::Open => {
                let cooled = b
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.config.cooldown);
                if cooled {
                    b.state = BreakerState::HalfOpen;
                    b.probes_ok = 0;
                    b.probe_inflight = true;
                    b.probes += 1;
                    BreakerDecision::Probe
                } else {
                    b.degraded += 1;
                    BreakerDecision::Degraded
                }
            }
            BreakerState::HalfOpen => {
                if b.probe_inflight {
                    b.degraded += 1;
                    BreakerDecision::Degraded
                } else {
                    b.probe_inflight = true;
                    b.probes += 1;
                    BreakerDecision::Probe
                }
            }
        }
    }

    /// Reports a probe's outcome. Enough consecutive successes close
    /// the breaker (clearing the storm window); any failure reopens it.
    pub fn probe_result(&self, ok: bool) {
        let mut b = self.inner.lock().expect("breaker lock");
        b.probe_inflight = false;
        if b.state != BreakerState::HalfOpen {
            return;
        }
        if ok {
            b.probes_ok += 1;
            if b.probes_ok >= self.config.probe_successes {
                b.state = BreakerState::Closed;
                b.opened_at = None;
                b.events.clear();
            }
        } else {
            b.state = BreakerState::Open;
            b.opened_at = Some(Instant::now());
            b.probes_ok = 0;
            b.reopens += 1;
        }
    }

    /// The current state (no time-based transition is applied here;
    /// Open flips to HalfOpen on the next [`CircuitBreaker::decision`]).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> BreakerStats {
        let b = self.inner.lock().expect("breaker lock");
        BreakerStats {
            trips: b.trips,
            reopens: b.reopens,
            storm_events: b.storm_events,
            degraded: b.degraded,
            probes: b.probes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            trip_threshold: 3,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(10),
            probe_successes: 2,
        }
    }

    #[test]
    fn trips_once_per_storm_and_recovers_via_probes() {
        let b = CircuitBreaker::new(quick());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.record_storm_event());
        assert!(!b.record_storm_event());
        assert!(b.record_storm_event(), "third event in window trips");
        assert_eq!(b.state(), BreakerState::Open);
        // Further storm events while open do not re-trip.
        assert!(!b.record_storm_event());
        assert_eq!(b.stats().trips, 1);

        // Before cooldown: degraded. After: a probe.
        assert_eq!(b.decision(), BreakerDecision::Degraded);
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.decision(), BreakerDecision::Probe);
        // One probe at a time.
        assert_eq!(b.decision(), BreakerDecision::Degraded);
        b.probe_result(true);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.decision(), BreakerDecision::Probe);
        b.probe_result(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.decision(), BreakerDecision::Normal);
        assert_eq!(b.stats().trips, 1, "recovery never counted as a trip");
    }

    #[test]
    fn failed_probe_reopens_without_counting_a_trip() {
        let b = CircuitBreaker::new(quick());
        for _ in 0..3 {
            b.record_storm_event();
        }
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.decision(), BreakerDecision::Probe);
        b.probe_result(false);
        assert_eq!(b.state(), BreakerState::Open);
        let s = b.stats();
        assert_eq!((s.trips, s.reopens), (1, 1));
    }

    #[test]
    fn slow_drip_below_threshold_never_trips() {
        let b = CircuitBreaker::new(BreakerConfig {
            window: Duration::from_millis(5),
            ..quick()
        });
        for _ in 0..10 {
            assert!(!b.record_storm_event());
            std::thread::sleep(Duration::from_millis(4));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_is_inert() {
        let b = CircuitBreaker::new(BreakerConfig {
            enabled: false,
            ..quick()
        });
        for _ in 0..100 {
            assert!(!b.record_storm_event());
        }
        assert_eq!(b.decision(), BreakerDecision::Normal);
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
