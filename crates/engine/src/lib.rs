//! # matopt-engine
//!
//! The distributed relational engine substrate the paper's prototype
//! runs on. The paper uses SimSQL and PlinyCompute on EC2 clusters;
//! neither is available here, so this crate provides both halves of the
//! substitution documented in `DESIGN.md`:
//!
//! * a **real executor** ([`execute_plan`]) that runs annotated plans
//!   over concrete chunked relations ([`DistRelation`]) at laptop
//!   scale, with every implementation strategy executed at the chunk
//!   granularity its relational plan implies (tile shuffle joins,
//!   strip broadcasts, group-by SUM aggregations, blocked Gauss–Jordan
//!   rounds), pipelined across DAG vertices and thread-parallel within
//!   chunk batches via the persistent `matopt-pool` work-stealing pool;
//! * an **analytic simulator** ([`simulate_plan`]) that evaluates the
//!   same plans at paper scale against the [`matopt_core::Cluster`]
//!   model, reproducing wall-clock estimates and the runtime "Fail"
//!   outcomes of §8.2–8.3;
//! * the **calibration harness** ([`collect_samples`]) that measures
//!   micro-benchmarks on the real executor to fit the learned cost
//!   model of §7.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive;
mod calibrate;
mod exec;
mod explain;
mod faults;
mod impl_exec;
mod parallel;
mod recovery;
mod schedule;
mod sim;
mod spill;
mod sql;
mod train;
mod value;

pub use adaptive::{
    execute_adaptive, execute_adaptive_planned, execute_adaptive_with_hook, AdaptiveConfig,
    AdaptiveError, AdaptiveOutcome, ReplanHook,
};
pub use calibrate::{collect_samples, collect_samples_traced, fit_model_traced};
pub use exec::{
    execute_plan, execute_plan_serial, execute_plan_traced, execute_plan_with, reference_eval,
    reference_eval_all, ExecOptions, ExecOutcome, GovernorStats, HedgeConfig, HedgeMark,
    RemoteVertexExec,
};
pub use explain::{
    explain_analyze, explain_analyze_with_faults, explain_analyze_with_options, explain_plan,
    AnalyzedStep, ExplainStep, PlanAnalysis, PlanExplanation,
};
pub use faults::{parse_fault_spec, FaultEvent, FaultInjector, FaultKind};
pub use impl_exec::{execute_impl, ExecError};
pub use recovery::{
    execute_fault_tolerant, FtConfig, FtOutcome, InjectedFault, RetryConfig, VertexRecovery,
};
pub use schedule::{GovernorLease, SharedGovernor, SharedGovernorStats};
pub use sim::{
    format_hms, simulate_plan, simulate_plan_traced, simulate_plan_with_recovery, FailReason,
    RecoverySimReport, SimOutcome, SimReport, SimStep,
};
pub use spill::{decode_relation, encode_relation, SpillError, SpillManager, SpillTicket};
pub use sql::render_sql;
pub use train::{
    train, train_resumable, EpochHook, EpochPlanSource, EpochStats, TrainCheckpoint, TrainConfig,
    TrainError, TrainRun, TrainSpec,
};
pub use value::{Block, Chunk, DistRelation, ValueError};
