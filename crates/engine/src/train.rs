//! Multi-epoch training driver over autodiff-derived update graphs.
//!
//! A training graph (built by `matopt-graphs`' `ffnn_training_graph`
//! or any autodiff pipeline) has the shape: parameter sources in,
//! updated-parameter sinks out, plus a 1×1 scalar loss sink. One epoch
//! is one adaptive execution of that graph; between epochs the updated
//! parameter relations are fed back as the next epoch's parameter
//! inputs. Because the graph — types, shapes, declared statistics — is
//! *identical* every epoch, the optimized annotation is too, so the
//! driver caches it: epoch 1 pays for the frontier DP, every later
//! epoch hands the cached plan straight to
//! [`crate::execute_adaptive_planned`]. The cache is invalidated by the
//! same signal the paper's §7 adaptivity uses — a mid-flight
//! re-optimization means the measured sparsity drifted off the plan's
//! assumptions. A drifted epoch *recalibrates*: the measured density of
//! every vertex is folded back into the graph's statistics
//! ([`matopt_core::ComputeGraph::with_measured_sparsities`]) and the
//! cache is re-warmed against the corrected graph, so the epoch after a
//! drift still hits the cache — and, because epoch-over-epoch
//! statistics are stable once observed, stays hit.
//!
//! Plan caching is a pure latency optimization: an uncached run re-runs
//! the (deterministic) optimizer on the identical corrected graph every
//! epoch and therefore executes the identical annotation, so cached and
//! uncached loss trajectories are *bit-exact* (asserted in tests and
//! `bench_pr10`).
//!
//! Checkpoints serialize the live parameter relations in the spill wire
//! format ([`crate::encode_relation`]) — the same codec the PR 9 worker
//! fleet ships across process boundaries — plus the calibrated
//! statistics, under per-relation FNV-1a checksums; a training run can
//! be parked, the process killed, and the run resumed bit-exactly.

use crate::adaptive::{execute_adaptive_planned, AdaptiveConfig, AdaptiveError, ReplanHook};
use crate::spill::{decode_relation, encode_relation};
use crate::value::DistRelation;
use matopt_core::{
    Annotation, ComputeGraph, FormatCatalog, MatrixType, NodeId, NodeKind, PhysFormat, PlanContext,
};
use matopt_cost::CostModel;
use matopt_opt::{frontier_dp_beam, OptContext};
use std::cell::Cell;
use std::collections::HashMap;
use std::time::Instant;

/// What to train: the derived joint forward+backward graph plus the
/// vertex ids the driver needs to thread state between epochs.
///
/// The driver is deliberately independent of `matopt-autodiff` — it
/// consumes any graph with this shape, however derived.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// The joint forward+backward+update graph.
    pub graph: ComputeGraph,
    /// Parameter *sources*, in a fixed order.
    pub params: Vec<NodeId>,
    /// Updated-parameter *sinks*, aligned with `params`.
    pub updated: Vec<NodeId>,
    /// The 1×1 scalar loss sink.
    pub loss: NodeId,
}

impl TrainSpec {
    /// Structural validation: aligned param/update pairs with matching
    /// shapes, a scalar loss, and every claimed sink actually a sink.
    ///
    /// # Errors
    /// [`TrainError::BadSpec`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), TrainError> {
        let bad = |message: String| Err(TrainError::BadSpec(message));
        if self.params.len() != self.updated.len() {
            return bad(format!(
                "{} params but {} updated sinks",
                self.params.len(),
                self.updated.len()
            ));
        }
        if self.params.is_empty() {
            return bad("no trainable parameters".into());
        }
        let sinks = self.graph.sinks();
        for (p, u) in self.params.iter().zip(self.updated.iter()) {
            if !matches!(self.graph.node(*p).kind, NodeKind::Source { .. }) {
                return bad(format!("parameter v{} is not a source", p.index()));
            }
            if !sinks.contains(u) {
                return bad(format!("updated v{} is not a sink", u.index()));
            }
            let (pt, ut) = (self.graph.node(*p).mtype, self.graph.node(*u).mtype);
            if (pt.rows, pt.cols) != (ut.rows, ut.cols) {
                return bad(format!(
                    "parameter v{} is {}x{} but its update v{} is {}x{}",
                    p.index(),
                    pt.rows,
                    pt.cols,
                    u.index(),
                    ut.rows,
                    ut.cols
                ));
            }
        }
        let lt = self.graph.node(self.loss).mtype;
        if (lt.rows, lt.cols) != (1, 1) {
            return bad(format!("loss v{} is not a 1x1 scalar", self.loss.index()));
        }
        if !sinks.contains(&self.loss) {
            return bad(format!("loss v{} is not a sink", self.loss.index()));
        }
        Ok(())
    }
}

/// Driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Epochs to run (resuming counts already-completed ones).
    pub epochs: usize,
    /// Adaptive-execution settings for each epoch.
    pub adaptive: AdaptiveConfig,
    /// Reuse the optimized annotation across epochs (invalidated on
    /// sparsity drift). Off = re-optimize every epoch; numerics are
    /// bit-identical either way.
    pub reuse_plans: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 1,
            adaptive: AdaptiveConfig::default(),
            reuse_plans: true,
        }
    }
}

/// Where an epoch's annotation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochPlanSource {
    /// The frontier DP ran this epoch (first epoch, caching disabled,
    /// or the cached plan was invalidated by drift).
    Optimized,
    /// The cached annotation from a previous epoch was reused.
    CacheHit,
}

/// Per-epoch record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Scalar loss read from the loss sink.
    pub loss: f64,
    /// Cache hit or fresh optimization.
    pub plan: EpochPlanSource,
    /// Estimated cost (seconds) of the annotation this epoch ran.
    pub plan_cost: f64,
    /// Seconds spent in the optimizer this epoch (0 on a drift-free
    /// cache hit; a drifted epoch pays here for re-warming the cache).
    pub opt_seconds: f64,
    /// Mid-flight re-optimizations (sparsity drift) this epoch.
    pub reoptimizations: usize,
    /// Whether this epoch's drift recalibrated the graph statistics.
    pub recalibrated: bool,
}

/// The whole run.
#[derive(Debug)]
pub struct TrainRun {
    /// One record per epoch, in order (resumed epochs carry loss-only
    /// records reconstructed from the checkpoint).
    pub epochs: Vec<EpochStats>,
    /// Final parameter values keyed by parameter *source* id.
    pub final_params: HashMap<NodeId, DistRelation>,
    /// Epochs served from the plan cache.
    pub cache_hits: usize,
    /// Cache invalidations forced by sparsity drift.
    pub cache_invalidations: usize,
}

impl TrainRun {
    /// The loss trajectory.
    #[must_use]
    pub fn losses(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.loss).collect()
    }

    /// True when the loss never increased between consecutive epochs.
    #[must_use]
    pub fn monotone_non_increasing(&self) -> bool {
        self.epochs.windows(2).all(|w| w[1].loss <= w[0].loss)
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum TrainError {
    /// The spec violated a structural invariant.
    BadSpec(String),
    /// A required input relation was missing.
    MissingInput(NodeId),
    /// An epoch failed to optimize or execute.
    Epoch(usize, AdaptiveError),
    /// A checkpoint failed to decode.
    Checkpoint(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::BadSpec(m) => write!(f, "invalid training spec: {m}"),
            TrainError::MissingInput(v) => {
                write!(f, "no input relation for source v{}", v.index())
            }
            TrainError::Epoch(e, err) => write!(f, "epoch {e}: {err}"),
            TrainError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// A resumable snapshot: completed-epoch count, the loss trajectory so
/// far, and the live parameter relations.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Epochs completed before this snapshot.
    pub epoch: usize,
    /// Losses of those epochs, in order.
    pub losses: Vec<f64>,
    /// `(param source id, value)` pairs, in spec order.
    pub params: Vec<(NodeId, DistRelation)>,
    /// Calibrated per-vertex density statistics (empty until a drift
    /// recalibrates). Carried so a resumed run plans against the same
    /// statistics the original run had learned — and therefore executes
    /// the same annotations, bit-exactly.
    pub sparsities: Vec<f64>,
}

const CKPT_MAGIC: u64 = 0x4d41_544f_5054_434b; // "MATOPTCK"

impl TrainCheckpoint {
    /// Serializes the checkpoint: a u64-LE header (magic, epoch,
    /// counts, calibrated statistics, per-relation
    /// type/format/length/checksum) followed by each relation in the
    /// spill wire format — the exact bytes the worker fleet ships over
    /// its sockets. Every payload's FNV-1a checksum rides in the
    /// header, so a single torn byte fails [`TrainCheckpoint::decode`]
    /// instead of silently corrupting a parameter.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut words: Vec<u64> = vec![
            CKPT_MAGIC,
            self.epoch as u64,
            self.losses.len() as u64,
            self.params.len() as u64,
            self.sparsities.len() as u64,
        ];
        words.extend(self.losses.iter().map(|l| l.to_bits()));
        words.extend(self.sparsities.iter().map(|s| s.to_bits()));
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(self.params.len());
        for (id, rel) in &self.params {
            let bytes = encode_relation(rel);
            words.push(id.index() as u64);
            words.push(rel.mtype.rows);
            words.push(rel.mtype.cols);
            words.push(rel.mtype.sparsity.to_bits());
            words.push(format_tag(rel.format));
            words.push(bytes.len() as u64);
            words.push(fnv1a(&bytes));
            payloads.push(bytes);
        }
        let mut out: Vec<u8> = Vec::new();
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for p in payloads {
            out.extend_from_slice(&p);
        }
        out
    }

    /// Decodes [`TrainCheckpoint::encode`] bytes.
    ///
    /// # Errors
    /// [`TrainError::Checkpoint`] on truncation, a bad magic word, or a
    /// corrupt relation payload (the spill codec's checksums).
    pub fn decode(bytes: &[u8]) -> Result<Self, TrainError> {
        let bad = |m: &str| TrainError::Checkpoint(m.to_string());
        let mut pos = 0usize;
        let word = |pos: &mut usize| -> Result<u64, TrainError> {
            let end = *pos + 8;
            let chunk = bytes
                .get(*pos..end)
                .ok_or_else(|| bad("truncated header"))?;
            *pos = end;
            Ok(u64::from_le_bytes(chunk.try_into().expect("8 bytes")))
        };
        if word(&mut pos)? != CKPT_MAGIC {
            return Err(bad("bad magic word"));
        }
        let epoch = word(&mut pos)? as usize;
        let n_losses = word(&mut pos)? as usize;
        let n_params = word(&mut pos)? as usize;
        let n_sparsities = word(&mut pos)? as usize;
        if n_losses > bytes.len() || n_params > bytes.len() || n_sparsities > bytes.len() {
            return Err(bad("implausible counts"));
        }
        let mut losses = Vec::with_capacity(n_losses);
        for _ in 0..n_losses {
            losses.push(f64::from_bits(word(&mut pos)?));
        }
        let mut sparsities = Vec::with_capacity(n_sparsities);
        for _ in 0..n_sparsities {
            sparsities.push(f64::from_bits(word(&mut pos)?));
        }
        let mut heads = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let id = NodeId(u32::try_from(word(&mut pos)?).map_err(|_| bad("vertex id overflow"))?);
            let mtype = MatrixType {
                rows: word(&mut pos)?,
                cols: word(&mut pos)?,
                sparsity: f64::from_bits(word(&mut pos)?),
            };
            let format = format_untag(word(&mut pos)?).ok_or_else(|| bad("unknown format tag"))?;
            let len = word(&mut pos)? as usize;
            let checksum = word(&mut pos)?;
            heads.push((id, mtype, format, len, checksum));
        }
        let mut params = Vec::with_capacity(n_params);
        for (id, mtype, format, len, checksum) in heads {
            let end = pos
                .checked_add(len)
                .filter(|e| *e <= bytes.len())
                .ok_or_else(|| bad("truncated relation payload"))?;
            if fnv1a(&bytes[pos..end]) != checksum {
                return Err(bad("relation payload failed its checksum"));
            }
            let rel = decode_relation(&bytes[pos..end], mtype, format)
                .map_err(|e| TrainError::Checkpoint(e.to_string()))?;
            pos = end;
            params.push((id, rel));
        }
        Ok(TrainCheckpoint {
            epoch,
            losses,
            params,
            sparsities,
        })
    }
}

/// FNV-1a over a byte slice — the same constants as the spill layer's
/// stream hash, applied to each relation payload independently.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn format_tag(f: PhysFormat) -> u64 {
    match f {
        PhysFormat::SingleTuple => 0,
        PhysFormat::Tile { side } => (1 << 32) | side,
        PhysFormat::RowStrip { height } => (2 << 32) | height,
        PhysFormat::ColStrip { width } => (3 << 32) | width,
        PhysFormat::CsrTile { side } => (4 << 32) | side,
        PhysFormat::CsrSingle => 5 << 32,
        PhysFormat::Coo => 6 << 32,
    }
}

fn format_untag(w: u64) -> Option<PhysFormat> {
    let param = w & 0xffff_ffff;
    match w >> 32 {
        0 => Some(PhysFormat::SingleTuple),
        1 => Some(PhysFormat::Tile { side: param }),
        2 => Some(PhysFormat::RowStrip { height: param }),
        3 => Some(PhysFormat::ColStrip { width: param }),
        4 => Some(PhysFormat::CsrTile { side: param }),
        5 => Some(PhysFormat::CsrSingle),
        6 => Some(PhysFormat::Coo),
        _ => None,
    }
}

/// Per-epoch observer: the epoch's stats plus a checkpoint capturing
/// the state *after* that epoch (save it, kill the process, resume with
/// [`train_resumable`] — bit-exact).
pub type EpochHook<'h> = &'h (dyn Fn(&EpochStats, &TrainCheckpoint) + 'h);

/// Runs the training loop from scratch. See [`train_resumable`].
///
/// # Errors
/// [`TrainError`] on an invalid spec, missing inputs, or a failed
/// epoch.
pub fn train(
    spec: &TrainSpec,
    inputs: &HashMap<NodeId, DistRelation>,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    model: &dyn CostModel,
    config: &TrainConfig,
) -> Result<TrainRun, TrainError> {
    train_resumable(spec, inputs, ctx, catalog, model, config, None, None, None)
}

/// Runs (or resumes) the multi-epoch training loop.
///
/// `inputs` must hold a relation for every graph source: data, labels,
/// and *initial* parameters. With `resume`, the checkpoint's parameter
/// values override the initial ones and completed epochs are skipped.
/// `on_epoch` fires after every epoch with its stats and a resumable
/// checkpoint; `on_replan` forwards the adaptive executor's drift
/// signal (e.g. to poison an external plan cache).
///
/// # Errors
/// [`TrainError`] on an invalid spec, missing inputs, a corrupt
/// checkpoint, or a failed epoch.
#[allow(clippy::too_many_arguments)]
pub fn train_resumable(
    spec: &TrainSpec,
    inputs: &HashMap<NodeId, DistRelation>,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    model: &dyn CostModel,
    config: &TrainConfig,
    resume: Option<&TrainCheckpoint>,
    on_epoch: Option<EpochHook<'_>>,
    on_replan: Option<ReplanHook<'_>>,
) -> Result<TrainRun, TrainError> {
    spec.validate()?;
    let mut cur: HashMap<NodeId, DistRelation> = HashMap::new();
    for s in spec.graph.sources() {
        let rel = inputs.get(&s).ok_or(TrainError::MissingInput(s))?;
        cur.insert(s, rel.clone());
    }

    let mut epochs: Vec<EpochStats> = Vec::new();
    let mut start = 0usize;
    let mut calibrated: Vec<f64> = Vec::new();
    if let Some(ck) = resume {
        if ck.losses.len() != ck.epoch {
            return Err(TrainError::Checkpoint(format!(
                "{} losses for {} completed epochs",
                ck.losses.len(),
                ck.epoch
            )));
        }
        if !ck.sparsities.is_empty() {
            if ck.sparsities.len() != spec.graph.len() {
                return Err(TrainError::Checkpoint(format!(
                    "{} calibrated densities for a {}-vertex graph",
                    ck.sparsities.len(),
                    spec.graph.len()
                )));
            }
            calibrated = ck.sparsities.clone();
        }
        for (id, rel) in &ck.params {
            if !spec.params.contains(id) {
                return Err(TrainError::Checkpoint(format!(
                    "v{} in checkpoint is not a spec parameter",
                    id.index()
                )));
            }
            cur.insert(*id, rel.clone());
        }
        start = ck.epoch;
        for (i, loss) in ck.losses.iter().enumerate() {
            epochs.push(EpochStats {
                epoch: i,
                loss: *loss,
                plan: EpochPlanSource::Optimized,
                plan_cost: 0.0,
                opt_seconds: 0.0,
                reoptimizations: 0,
                recalibrated: false,
            });
        }
    }

    let mut cur_graph = if calibrated.is_empty() {
        spec.graph.clone()
    } else {
        spec.graph.with_measured_sparsities(&calibrated)
    };
    let optimize = |graph: &ComputeGraph, epoch: usize| {
        frontier_dp_beam(
            graph,
            &OptContext::new(ctx, catalog, model),
            config.adaptive.beam,
        )
        .map_err(|e| TrainError::Epoch(epoch, AdaptiveError::Opt(e)))
    };
    let mut cached: Option<(Annotation, f64)> = None;
    let mut cache_hits = 0usize;
    let mut cache_invalidations = 0usize;
    for epoch in start..config.epochs {
        let (plan, plan_cost, source, mut opt_seconds) = match cached.take() {
            Some((plan, cost)) if config.reuse_plans => {
                cache_hits += 1;
                (plan, cost, EpochPlanSource::CacheHit, 0.0)
            }
            _ => {
                let t = Instant::now();
                let opt = optimize(&cur_graph, epoch)?;
                (
                    opt.annotation,
                    opt.cost,
                    EpochPlanSource::Optimized,
                    t.elapsed().as_secs_f64(),
                )
            }
        };

        let drifted = Cell::new(false);
        let hook = |v: NodeId| {
            drifted.set(true);
            if let Some(h) = on_replan {
                h(v);
            }
        };
        let outcome = execute_adaptive_planned(
            &cur_graph,
            &cur,
            ctx,
            catalog,
            model,
            config.adaptive,
            plan.clone(),
            Some(&hook),
        )
        .map_err(|e| TrainError::Epoch(epoch, e))?;

        let recalibrated = drifted.get();
        if recalibrated {
            // The plan's statistics were wrong for this workload. Fold
            // the measured densities back into the graph and re-warm
            // the cache against the corrected statistics, so the *next*
            // epoch both hits the cache and stays drift-free.
            cache_invalidations += 1;
            calibrated = outcome.measured.clone();
            cur_graph = spec.graph.with_measured_sparsities(&calibrated);
            if config.reuse_plans {
                let t = Instant::now();
                let opt = optimize(&cur_graph, epoch)?;
                opt_seconds += t.elapsed().as_secs_f64();
                cached = Some((opt.annotation, opt.cost));
            }
        } else {
            cached = Some((plan, plan_cost));
        }

        let loss = scalar_of(&outcome.sinks[&spec.loss]);
        for (p, u) in spec.params.iter().zip(spec.updated.iter()) {
            cur.insert(*p, outcome.sinks[u].clone());
        }
        let stats = EpochStats {
            epoch,
            loss,
            plan: source,
            plan_cost,
            opt_seconds,
            reoptimizations: outcome.reoptimizations,
            recalibrated,
        };
        if let Some(h) = on_epoch {
            let ck = TrainCheckpoint {
                epoch: epoch + 1,
                losses: epochs
                    .iter()
                    .map(|e| e.loss)
                    .chain(std::iter::once(loss))
                    .collect(),
                params: spec.params.iter().map(|p| (*p, cur[p].clone())).collect(),
                sparsities: calibrated.clone(),
            };
            h(&stats, &ck);
        }
        epochs.push(stats);
    }

    let final_params = spec.params.iter().map(|p| (*p, cur[p].clone())).collect();
    Ok(TrainRun {
        epochs,
        final_params,
        cache_hits,
        cache_invalidations,
    })
}

fn scalar_of(rel: &DistRelation) -> f64 {
    rel.to_dense().get(0, 0)
}
