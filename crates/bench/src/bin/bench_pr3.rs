//! Execution-performance report for the pipelined-executor /
//! packed-GEMM work: kernel GFLOP/s (reference vs packed), end-to-end
//! executor wall clock (serial topological walk vs pipelined
//! scheduler), and optimizer latency per workload.
//!
//! ```sh
//! cargo run --release -p matopt-bench --bin bench_pr3            # table
//! cargo run --release -p matopt-bench --bin bench_pr3 -- --json  # + BENCH_PR3.json
//! ```
//!
//! With `--json [PATH]` the report is also written as JSON
//! (default `BENCH_PR3.json`). All timings are best-of-N with the two
//! variants interleaved, so machine drift hits both sides equally.

use matopt_bench::{Env, Json};
use matopt_core::{
    Annotation, ComputeGraph, FormatCatalog, MatrixType, NodeId, NodeKind, Op, PhysFormat,
};
use matopt_engine::{execute_plan, execute_plan_serial, DistRelation};
use matopt_graphs::{ffnn_w2_update_graph, two_level_inverse_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng, set_gemm_mode, DenseMatrix, GemmMode};
use std::collections::HashMap;
use std::time::Instant;

fn gflops(n: usize, secs: f64) -> f64 {
    (2.0 * (n as f64).powi(3)) / secs / 1e9
}

/// One GEMM size: best-of-`reps` for each mode, modes interleaved.
fn gemm_point(n: usize, reps: usize) -> (f64, f64) {
    let a = DenseMatrix::from_fn(n, n, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
    let b = DenseMatrix::from_fn(n, n, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
    let (mut best_ref, mut best_packed) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        set_gemm_mode(GemmMode::Reference);
        let t = Instant::now();
        let x = a.matmul(&b);
        best_ref = best_ref.min(t.elapsed().as_secs_f64());
        set_gemm_mode(GemmMode::Packed);
        let t = Instant::now();
        let y = a.matmul(&b);
        best_packed = best_packed.min(t.elapsed().as_secs_f64());
        assert!(x.approx_eq(&y, 1e-6), "GEMM modes disagree at n={n}");
    }
    set_gemm_mode(GemmMode::Packed);
    (best_ref, best_packed)
}

/// A laptop-scale version of the §8.2 multiplication chain (same
/// sharing structure: T1 and T2 each feed two consumers). Sources are
/// tiled at 128 so each tile product is large enough for the packed
/// GEMM while the relations stay multi-chunk.
fn laptop_chain(n: u64) -> ComputeGraph {
    let mut g = ComputeGraph::new();
    let mt = MatrixType::dense(n, n);
    let fmt = PhysFormat::Tile { side: 128 };
    let srcs: Vec<NodeId> = ["A", "B", "C", "D", "E", "F"]
        .iter()
        .map(|name| g.add_source_named(mt, fmt, Some(name)))
        .collect();
    let (a, b, c, d, e, f) = (srcs[0], srcs[1], srcs[2], srcs[3], srcs[4], srcs[5]);
    let t1 = g.add_op_named(Op::MatMul, &[a, b], Some("T1")).unwrap();
    let t2 = g.add_op_named(Op::MatMul, &[c, d], Some("T2")).unwrap();
    let t1e = g.add_op(Op::MatMul, &[t1, e]).unwrap();
    let t1t2 = g.add_op(Op::MatMul, &[t1, t2]).unwrap();
    let left = g.add_op(Op::MatMul, &[t1e, t1t2]).unwrap();
    let t2f = g.add_op(Op::MatMul, &[t2, f]).unwrap();
    let _o = g.add_op_named(Op::MatMul, &[left, t2f], Some("O")).unwrap();
    g
}

fn make_inputs(graph: &ComputeGraph, seed: u64) -> HashMap<NodeId, DistRelation> {
    let mut rng = seeded_rng(seed);
    let mut rels = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let mut d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            if node.mtype.is_square() {
                for i in 0..node.mtype.rows as usize {
                    let v = d.get(i, i) + node.mtype.rows as f64 * 2.0;
                    d.set(i, i, v);
                }
            }
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    rels
}

struct E2e {
    name: &'static str,
    serial_seconds: f64,
    pipelined_seconds: f64,
    opt_seconds: f64,
}

/// Optimizes the workload (recording optimizer latency), then times the
/// pre-PR executor configuration against the current one, interleaved,
/// best-of-N:
///
/// * **before**: the strictly serial topological walk with identity
///   edges deep-copied and the blocked reference GEMM — the executor
///   as it stood before the pipelined-scheduler/packed-GEMM work;
/// * **after**: the pipelined pool scheduler with `Arc`-shared
///   identity edges and the packed register-blocked GEMM.
fn e2e_point(
    env: &Env,
    name: &'static str,
    graph: &ComputeGraph,
    catalog: &FormatCatalog,
    reps: usize,
) -> E2e {
    let cluster = matopt_core::Cluster::simsql_like(4);
    let mut opt_seconds = f64::INFINITY;
    let mut annotation: Option<Annotation> = None;
    for _ in 0..3 {
        let plan = env.auto_plan(graph, cluster, catalog).expect("optimizable");
        opt_seconds = opt_seconds.min(plan.opt_seconds);
        annotation = Some(plan.annotation);
    }
    let annotation = annotation.expect("at least one optimizer run");
    let inputs = make_inputs(graph, 0xC0FFEE);

    let (mut best_serial, mut best_piped) = (f64::INFINITY, f64::INFINITY);
    // Warm both paths once (pool spin-up, allocator warm-up) and check
    // they agree; kernels are approx-compared because the two GEMMs
    // accumulate in different orders.
    let warm_s = execute_plan_serial(graph, &annotation, &inputs, &env.registry).expect("runs");
    let warm_p = execute_plan(graph, &annotation, &inputs, &env.registry).expect("runs");
    for (sink, rel) in &warm_s.sinks {
        assert!(
            warm_p.sinks[sink]
                .to_dense()
                .approx_eq(&rel.to_dense(), 1e-6),
            "{name}: executors disagree"
        );
    }
    for _ in 0..reps {
        set_gemm_mode(GemmMode::Reference);
        let t = Instant::now();
        let _ = execute_plan_serial(graph, &annotation, &inputs, &env.registry).expect("runs");
        best_serial = best_serial.min(t.elapsed().as_secs_f64());
        set_gemm_mode(GemmMode::Packed);
        let t = Instant::now();
        let _ = execute_plan(graph, &annotation, &inputs, &env.registry).expect("runs");
        best_piped = best_piped.min(t.elapsed().as_secs_f64());
    }
    set_gemm_mode(GemmMode::Packed);
    E2e {
        name,
        serial_seconds: best_serial,
        pipelined_seconds: best_piped,
        opt_seconds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.first().map(String::as_str) {
        Some("--json") => Some(
            args.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_PR3.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: bench_pr3 [--json [PATH]]");
            std::process::exit(2);
        }
        None => None,
    };

    let env = Env::new();

    println!("== GEMM: reference vs packed (best-of-N, interleaved) ==");
    let mut gemm_rows = Vec::new();
    for (n, reps) in [(256usize, 15), (512, 11), (1024, 9)] {
        let (t_ref, t_packed) = gemm_point(n, reps);
        let (g_ref, g_packed) = (gflops(n, t_ref), gflops(n, t_packed));
        println!(
            "n={n:5}  reference {g_ref:7.2} GFLOP/s   packed {g_packed:7.2} GFLOP/s   speedup {:4.2}x",
            t_ref / t_packed
        );
        gemm_rows.push(Json::obj([
            ("n", Json::Int(n as i64)),
            ("reference_seconds", Json::Num(t_ref)),
            ("packed_seconds", Json::Num(t_packed)),
            ("reference_gflops", Json::Num(g_ref)),
            ("packed_gflops", Json::Num(g_packed)),
            ("speedup", Json::Num(t_ref / t_packed)),
        ]));
    }

    println!();
    println!("== End-to-end: serial topological walk vs pipelined scheduler ==");
    // "Small" here means laptop-runnable, not paper-scale — but the
    // blocks are sized so matrix multiplies dominate the wall clock,
    // which is what the pre-PR/post-PR comparison is about.
    let ffnn_config = FfnnConfig {
        input_format: PhysFormat::Tile { side: 128 },
        w1_format: PhysFormat::Tile { side: 128 },
        w_format: PhysFormat::Tile { side: 128 },
        batch: 256,
        features: 512,
        hidden: 512,
        ..FfnnConfig::laptop(512)
    };
    let ffnn = ffnn_w2_update_graph(ffnn_config).expect("well-typed").graph;
    let inverse = two_level_inverse_graph(128, 32).expect("well-typed").graph;
    let chain = laptop_chain(256);
    let dense = FormatCatalog::paper_default().dense_only();
    let small = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 32 },
        PhysFormat::Tile { side: 64 },
        PhysFormat::RowStrip { height: 32 },
        PhysFormat::ColStrip { width: 32 },
    ]);
    let chain_catalog = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 128 },
        PhysFormat::RowStrip { height: 128 },
        PhysFormat::ColStrip { width: 128 },
    ]);
    let mut e2e_rows = Vec::new();
    let mut opt_rows = Vec::new();
    for e in [
        e2e_point(&env, "ffnn-small", &ffnn, &dense, 9),
        e2e_point(&env, "inverse", &inverse, &small, 9),
        e2e_point(&env, "chain", &chain, &chain_catalog, 9),
    ] {
        println!(
            "{:<12} serial {:8.4}s   pipelined {:8.4}s   speedup {:4.2}x   (opt {:6.3}s)",
            e.name,
            e.serial_seconds,
            e.pipelined_seconds,
            e.serial_seconds / e.pipelined_seconds,
            e.opt_seconds
        );
        e2e_rows.push(Json::obj([
            ("workload", Json::str(e.name)),
            ("serial_seconds", Json::Num(e.serial_seconds)),
            ("pipelined_seconds", Json::Num(e.pipelined_seconds)),
            ("speedup", Json::Num(e.serial_seconds / e.pipelined_seconds)),
        ]));
        opt_rows.push(Json::obj([
            ("workload", Json::str(e.name)),
            ("opt_seconds", Json::Num(e.opt_seconds)),
        ]));
    }

    if let Some(path) = json_path {
        let report = Json::obj([
            ("pr", Json::Int(3)),
            ("gemm", Json::Arr(gemm_rows)),
            ("e2e", Json::Arr(e2e_rows)),
            ("optimizer", Json::Arr(opt_rows)),
        ]);
        std::fs::write(&path, report.pretty()).expect("write report");
        println!("\nwrote {path}");
    }
}
