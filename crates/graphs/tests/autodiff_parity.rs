//! The autodiff-derived FFNN tapes are *bit-identical* to the
//! hand-built backprop graphs: same wiring per the paper's update
//! rules, so the reference evaluator produces exactly the same f64s —
//! zero Frobenius distance, not merely "close".

use std::collections::HashMap;

use matopt_core::NodeId;
use matopt_engine::reference_eval_all;
use matopt_graphs::{
    ffnn_full_pass_graph, ffnn_full_pass_graph_autodiff, ffnn_train_step_graph,
    ffnn_train_step_graph_autodiff, ffnn_w2_update_graph, ffnn_w2_update_graph_autodiff,
    FfnnConfig, FfnnGraph,
};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};

/// One deterministic matrix per *source name*, so both graphs see the
/// same numbers regardless of how their vertex ids line up.
fn input_bank(g: &FfnnGraph) -> HashMap<String, DenseMatrix> {
    let mut bank = HashMap::new();
    for s in g.graph.sources() {
        let node = g.graph.node(s);
        let name = node.name.clone().expect("ffnn sources are named");
        let seed = 41 + name.bytes().map(u64::from).sum::<u64>();
        let mut rng = seeded_rng(seed);
        bank.insert(
            name,
            random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng),
        );
    }
    bank
}

fn bind(g: &FfnnGraph, bank: &HashMap<String, DenseMatrix>) -> HashMap<NodeId, DenseMatrix> {
    g.graph
        .sources()
        .into_iter()
        .map(|s| {
            let name = g.graph.node(s).name.as_deref().expect("named");
            (s, bank[name].clone())
        })
        .collect()
}

fn assert_bit_identical(hand: &FfnnGraph, auto: &FfnnGraph) {
    assert_eq!(hand.graph.len(), auto.graph.len(), "vertex counts differ");
    let bank = input_bank(hand);
    let hv = reference_eval_all(&hand.graph, &bind(hand, &bank)).unwrap();
    let av = reference_eval_all(&auto.graph, &bind(auto, &bank)).unwrap();
    assert_eq!(hand.updated_weights.len(), auto.updated_weights.len());
    for (i, (h, a)) in hand
        .updated_weights
        .iter()
        .zip(auto.updated_weights.iter())
        .enumerate()
    {
        let dist = hv[h].frobenius_distance(&av[a]);
        assert_eq!(dist, 0.0, "updated weight {i} differs (distance {dist})");
    }
    let dist = hv[&hand.output_activations].frobenius_distance(&av[&auto.output_activations]);
    assert_eq!(dist, 0.0, "output activations differ (distance {dist})");
}

#[test]
fn full_pass_gradients_are_bit_identical() {
    let cfg = FfnnConfig::laptop(16);
    let hand = ffnn_full_pass_graph(cfg).unwrap();
    let auto = ffnn_full_pass_graph_autodiff(cfg).unwrap();
    assert_eq!(hand.graph.len(), 57, "paper-pinned vertex count");
    assert_bit_identical(&hand, &auto);
}

#[test]
fn w2_update_gradients_are_bit_identical() {
    let cfg = FfnnConfig::laptop(24);
    let hand = ffnn_w2_update_graph(cfg).unwrap();
    let auto = ffnn_w2_update_graph_autodiff(cfg).unwrap();
    assert_bit_identical(&hand, &auto);
}

#[test]
fn train_step_gradients_are_bit_identical() {
    let cfg = FfnnConfig::laptop(16);
    let hand = ffnn_train_step_graph(cfg).unwrap();
    let auto = ffnn_train_step_graph_autodiff(cfg).unwrap();
    assert_bit_identical(&hand, &auto);
}
