//! Gradient correctness: every differentiable op's vector-Jacobian
//! rule is checked against central finite differences of the scalar
//! loss, on seeded random dense (and CSR-sampled sparse) inputs, plus
//! property tests for fan-out accumulation and transpose-heavy graphs.

use matopt_autodiff::{gradients, DIFFERENTIABLE_OP_KINDS};
use matopt_core::{ComputeGraph, MatrixType, NodeId, Op, OpKind, PhysFormat};
use matopt_engine::{reference_eval, reference_eval_all};
use matopt_kernels::{random_dense_normal, random_sparse_csr, seeded_rng, DenseMatrix};
use proptest::prelude::*;
use std::collections::HashMap;

/// Maximum allowed `|ad − fd| / max(1, |ad|, |fd|)`.
const TOL: f64 = 1e-6;

fn ones(rows: u64, cols: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows as usize, cols as usize, |_, _| 1.0)
}

/// Checks the autodiff gradients of `loss` w.r.t. every key of
/// `params` against central finite differences on the forward graph.
fn gradcheck(
    graph: &ComputeGraph,
    loss: NodeId,
    params: &[NodeId],
    inputs: &HashMap<NodeId, DenseMatrix>,
) {
    let d = gradients(graph.clone(), loss, params).expect("differentiable graph");
    let mut joint_inputs = inputs.clone();
    for aux in &d.aux {
        joint_inputs.insert(aux.id, ones(aux.rows, aux.cols));
    }
    let vals = reference_eval_all(&d.graph, &joint_inputs).expect("joint eval");
    for p in params {
        let grad = d.gradient(*p).expect("requested gradient");
        let ad = &vals[&grad];
        let base = &inputs[p];
        assert_eq!((ad.rows(), ad.cols()), (base.rows(), base.cols()));
        for r in 0..base.rows() {
            for c in 0..base.cols() {
                let x = base.get(r, c);
                let h = 1e-5 * x.abs().max(1.0);
                let eval_at = |v: f64| -> f64 {
                    let mut perturbed = inputs.clone();
                    let mut m = base.clone();
                    m.set(r, c, v);
                    perturbed.insert(*p, m);
                    reference_eval(graph, &perturbed).expect("forward eval")[&loss].get(0, 0)
                };
                let fd = (eval_at(x + h) - eval_at(x - h)) / (2.0 * h);
                let a = ad.get(r, c);
                let rel = (a - fd).abs() / a.abs().max(fd.abs()).max(1.0);
                assert!(
                    rel <= TOL,
                    "param {p} entry ({r},{c}): autodiff {a} vs finite-diff {fd} (rel {rel:.3e})"
                );
            }
        }
    }
}

fn csr_to_dense(rows: usize, cols: usize, m: &matopt_kernels::CsrMatrix) -> DenseMatrix {
    let mut d = DenseMatrix::zeros(rows, cols);
    for (r, c, v) in m.iter() {
        d.set(r, c, v);
    }
    d
}

struct Case {
    graph: ComputeGraph,
    loss: NodeId,
    params: Vec<NodeId>,
    inputs: HashMap<NodeId, DenseMatrix>,
    /// The op under test, for the completeness assertion.
    covers: OpKind,
}

/// One gradcheck case per differentiable op, all on seeded inputs.
fn cases() -> Vec<Case> {
    let mut rng = seeded_rng(42);
    let mut out = Vec::new();
    let dense = |g: &mut ComputeGraph, n: &str, r: u64, c: u64| -> NodeId {
        g.add_source_named(MatrixType::dense(r, c), PhysFormat::SingleTuple, Some(n))
    };

    // MatMul: loss = sum(A·B), both operands trained.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let b = dense(&mut g, "B", 3, 2);
        let y = g.add_op(Op::MatMul, &[a, b]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let inputs = HashMap::from([
            (a, random_dense_normal(4, 3, &mut rng)),
            (b, random_dense_normal(3, 2, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a, b],
            inputs,
            covers: OpKind::MatMul,
        });
    }

    // Elementwise binaries.
    for (op, kind) in [
        (Op::Add, OpKind::Add),
        (Op::Sub, OpKind::Sub),
        (Op::Hadamard, OpKind::Hadamard),
    ] {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let b = dense(&mut g, "B", 4, 3);
        let y = g.add_op(op, &[a, b]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let inputs = HashMap::from([
            (a, random_dense_normal(4, 3, &mut rng)),
            (b, random_dense_normal(4, 3, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a, b],
            inputs,
            covers: kind,
        });
    }

    // ScalarMul, with a mid-graph SumAll so the non-unit-adjoint
    // broadcast path of the SumAll rule is exercised too.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let sq = g.add_op(Op::Hadamard, &[a, a]).unwrap();
        let s = g.add_op(Op::SumAll, &[sq]).unwrap();
        let loss = g.add_op(Op::ScalarMul(0.5), &[s]).unwrap();
        let inputs = HashMap::from([(a, random_dense_normal(4, 3, &mut rng))]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::ScalarMul,
        });
    }

    // Transpose inside a matmul so its adjoint is not all-ones.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 3, 4);
        let b = dense(&mut g, "B", 3, 2);
        let at = g.add_op(Op::Transpose, &[a]).unwrap();
        let y = g.add_op(Op::MatMul, &[at, b]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let inputs = HashMap::from([
            (a, random_dense_normal(3, 4, &mut rng)),
            (b, random_dense_normal(3, 2, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::Transpose,
        });
    }

    // Unary activations. Relu inputs are pushed away from the kink so
    // the finite difference never straddles it.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let y = g.add_op(Op::Relu, &[a]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let mut m = random_dense_normal(4, 3, &mut rng);
        for v in m.data_mut() {
            *v = v.signum() * (v.abs() + 0.1);
        }
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs: HashMap::from([(a, m)]),
            covers: OpKind::Relu,
        });
    }
    for (op, kind) in [
        (Op::Sigmoid, OpKind::Sigmoid),
        (Op::Exp, OpKind::Exp),
        (Op::Neg, OpKind::Neg),
    ] {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let y = g.add_op(op, &[a]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let m = random_dense_normal(4, 3, &mut rng).scale(0.5);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs: HashMap::from([(a, m)]),
            covers: kind,
        });
    }

    // Softmax weighted by a fixed matrix — sum(softmax(A)) alone has a
    // zero gradient because every row sums to one.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let w = dense(&mut g, "Wfixed", 4, 3);
        let s = g.add_op(Op::Softmax, &[a]).unwrap();
        let y = g.add_op(Op::Hadamard, &[s, w]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let inputs = HashMap::from([
            (a, random_dense_normal(4, 3, &mut rng)),
            (w, random_dense_normal(4, 3, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::Softmax,
        });
    }

    // Row/col sums weighted so their adjoints are not all-ones.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let w = dense(&mut g, "wfixed", 4, 1);
        let rs = g.add_op(Op::RowSums, &[a]).unwrap();
        let y = g.add_op(Op::Hadamard, &[rs, w]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let inputs = HashMap::from([
            (a, random_dense_normal(4, 3, &mut rng)),
            (w, random_dense_normal(4, 1, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::RowSums,
        });
    }
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 4, 3);
        let w = dense(&mut g, "wfixed", 1, 3);
        let cs = g.add_op(Op::ColSums, &[a]).unwrap();
        let y = g.add_op(Op::Hadamard, &[cs, w]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let inputs = HashMap::from([
            (a, random_dense_normal(4, 3, &mut rng)),
            (w, random_dense_normal(1, 3, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::ColSums,
        });
    }

    // Inverse on a well-conditioned (diagonally dominant) matrix,
    // weighted so the adjoint is not all-ones.
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 3, 3);
        let w = dense(&mut g, "Wfixed", 3, 3);
        let inv = g.add_op(Op::Inverse, &[a]).unwrap();
        let y = g.add_op(Op::Hadamard, &[inv, w]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let mut m = random_dense_normal(3, 3, &mut rng).scale(0.1);
        for i in 0..3 {
            m.set(i, i, m.get(i, i) + 3.0);
        }
        let inputs = HashMap::from([(a, m), (w, random_dense_normal(3, 3, &mut rng))]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::Inverse,
        });
    }

    // BroadcastAddRow inside a one-layer net: trains both the weight
    // matrix and the bias row.
    {
        let mut g = ComputeGraph::new();
        let x = dense(&mut g, "X", 4, 3);
        let w = dense(&mut g, "W", 3, 2);
        let b = dense(&mut g, "b", 1, 2);
        let z = g.add_op(Op::MatMul, &[x, w]).unwrap();
        let zb = g.add_op(Op::BroadcastAddRow, &[z, b]).unwrap();
        let s = g.add_op(Op::Sigmoid, &[zb]).unwrap();
        let loss = g.add_op(Op::SumAll, &[s]).unwrap();
        let inputs = HashMap::from([
            (x, random_dense_normal(4, 3, &mut rng)),
            (w, random_dense_normal(3, 2, &mut rng)),
            (b, random_dense_normal(1, 2, &mut rng)),
        ]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![w, b],
            inputs,
            covers: OpKind::BroadcastAddRow,
        });
    }

    // SumAll as the op under test (its rule fires in every case above,
    // but this one trains the reduced matrix directly).
    {
        let mut g = ComputeGraph::new();
        let a = dense(&mut g, "A", 5, 2);
        let loss = g.add_op(Op::SumAll, &[a]).unwrap();
        let inputs = HashMap::from([(a, random_dense_normal(5, 2, &mut rng))]);
        out.push(Case {
            graph: g,
            loss,
            params: vec![a],
            inputs,
            covers: OpKind::SumAll,
        });
    }

    out
}

#[test]
fn finite_differences_confirm_every_differentiable_op() {
    let cases = cases();
    let mut covered: Vec<OpKind> = cases.iter().map(|c| c.covers).collect();
    covered.sort_by_key(|k| *k as u64);
    covered.dedup();
    let mut wanted = DIFFERENTIABLE_OP_KINDS.to_vec();
    wanted.sort_by_key(|k| *k as u64);
    assert_eq!(covered, wanted, "every differentiable op needs a case");
    for case in &cases {
        gradcheck(&case.graph, case.loss, &case.params, &case.inputs);
    }
}

#[test]
fn gradcheck_holds_on_csr_sampled_sparse_inputs() {
    // A sparse CSR-sampled operand through a matmul: the graph carries
    // the sparse matrix type, the numeric check runs on its dense
    // materialization.
    let mut rng = seeded_rng(42);
    let csr = random_sparse_csr(6, 5, 0.4, &mut rng);
    let a_dense = csr_to_dense(6, 5, &csr);
    let mut g = ComputeGraph::new();
    let a = g.add_source_named(
        MatrixType::sparse(6, 5, 0.4),
        PhysFormat::CsrSingle,
        Some("A"),
    );
    let b = g.add_source_named(MatrixType::dense(5, 3), PhysFormat::SingleTuple, Some("B"));
    let y = g.add_op(Op::MatMul, &[a, b]).unwrap();
    let r = g.add_op(Op::Relu, &[y]).unwrap();
    let loss = g.add_op(Op::SumAll, &[r]).unwrap();
    let inputs = HashMap::from([(a, a_dense), (b, random_dense_normal(5, 3, &mut rng))]);
    gradcheck(&g, loss, &[a, b], &inputs);
}

#[test]
fn duplicated_operand_gradient_doubles() {
    // loss = ½·sum(x⊙x) ⇒ ∇x = x exactly: both Hadamard slots must
    // contribute.
    let mut rng = seeded_rng(7);
    let mut g = ComputeGraph::new();
    let x = g.add_source_named(MatrixType::dense(3, 3), PhysFormat::SingleTuple, Some("x"));
    let sq = g.add_op(Op::Hadamard, &[x, x]).unwrap();
    let s = g.add_op(Op::SumAll, &[sq]).unwrap();
    let loss = g.add_op(Op::ScalarMul(0.5), &[s]).unwrap();
    let xm = random_dense_normal(3, 3, &mut rng);
    let d = gradients(g, loss, &[x]).unwrap();
    let mut inputs = HashMap::from([(x, xm.clone())]);
    for aux in &d.aux {
        inputs.insert(aux.id, ones(aux.rows, aux.cols));
    }
    let vals = reference_eval_all(&d.graph, &inputs).unwrap();
    let gx = &vals[&d.gradient(x).unwrap()];
    assert!(gx.frobenius_distance(&xm) < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fan-out accumulation: a parameter consumed by `k` additive
    /// branches has gradient exactly `k` everywhere.
    #[test]
    fn fan_out_accumulation_sums_every_branch(
        k in 2usize..6,
        rows in 1u64..5,
        cols in 1u64..5,
        seed in 0u64..1000,
    ) {
        let mut g = ComputeGraph::new();
        let x = g.add_source_named(
            MatrixType::dense(rows, cols),
            PhysFormat::SingleTuple,
            Some("x"),
        );
        let mut acc = x;
        for _ in 1..k {
            acc = g.add_op(Op::Add, &[acc, x]).unwrap();
        }
        let loss = g.add_op(Op::SumAll, &[acc]).unwrap();
        let d = gradients(g, loss, &[x]).unwrap();
        let mut rng = seeded_rng(seed);
        let mut inputs = HashMap::from([(
            x,
            random_dense_normal(rows as usize, cols as usize, &mut rng),
        )]);
        for aux in &d.aux {
            inputs.insert(aux.id, ones(aux.rows, aux.cols));
        }
        let vals = reference_eval_all(&d.graph, &inputs).unwrap();
        let gx = &vals[&d.gradient(x).unwrap()];
        for v in gx.data() {
            prop_assert!((v - k as f64).abs() < 1e-12, "expected {k}, got {v}");
        }
    }

    /// Transpose-heavy chains: any stack of transposes and scalings
    /// reduces to gradient `α` everywhere, with the right orientation.
    #[test]
    fn transpose_chains_keep_gradients_straight(
        depth in 1usize..6,
        rows in 1u64..5,
        cols in 1u64..5,
        alpha in -3.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let mut g = ComputeGraph::new();
        let x = g.add_source_named(
            MatrixType::dense(rows, cols),
            PhysFormat::SingleTuple,
            Some("x"),
        );
        let mut cur = x;
        for _ in 0..depth {
            cur = g.add_op(Op::Transpose, &[cur]).unwrap();
        }
        let scaled = g.add_op(Op::ScalarMul(alpha), &[cur]).unwrap();
        let loss = g.add_op(Op::SumAll, &[scaled]).unwrap();
        let d = gradients(g, loss, &[x]).unwrap();
        let mut rng = seeded_rng(seed);
        let mut inputs = HashMap::from([(
            x,
            random_dense_normal(rows as usize, cols as usize, &mut rng),
        )]);
        for aux in &d.aux {
            inputs.insert(aux.id, ones(aux.rows, aux.cols));
        }
        let vals = reference_eval_all(&d.graph, &inputs).unwrap();
        let gx = &vals[&d.gradient(x).unwrap()];
        prop_assert_eq!((gx.rows() as u64, gx.cols() as u64), (rows, cols));
        for v in gx.data() {
            prop_assert!((v - alpha).abs() < 1e-12, "expected {}, got {}", alpha, v);
        }
    }
}
