//! Overhead of the resource governor when it is disabled.
//!
//! The acceptance bar is that [`execute_plan_with`] with no memory
//! budget and no hedging costs < 2% versus the plain [`execute_plan`]
//! path. With the governor off the scheduler takes one `Option` branch
//! per admission and never touches the spill manager or the hedge
//! monitor — the machinery must be free when unused.
//!
//! * `execute/plain` — the laptop FFNN weight update through the
//!   ordinary executor;
//! * `execute/governor_disabled` — the same run through
//!   `execute_plan_with` with default options (no budget, no hedge),
//!   which is what every caller pays for the governor living
//!   permanently in the pipelined scheduler;
//! * `execute/governor_unbounded_budget` — the same with a `u64::MAX`
//!   budget, pinning the cost of the admission accounting itself.
//!
//! The final `governor overhead budget` line compares best-of-N run
//! times directly and reports OK/OVER against the 2% budget.

use criterion::{criterion_group, Criterion};
use matopt_core::{Cluster, FormatCatalog, ImplRegistry, NodeKind, PlanContext};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan, execute_plan_with, DistRelation, ExecOptions};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_obs::Obs;
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Fixture {
    graph: matopt_core::ComputeGraph,
    annotation: matopt_core::Annotation,
    registry: ImplRegistry,
    inputs: HashMap<matopt_core::NodeId, DistRelation>,
}

fn fixture() -> Fixture {
    let registry = ImplRegistry::paper_default();
    let ffnn = ffnn_w2_update_graph(FfnnConfig::laptop(32)).expect("type-correct");
    let cluster = Cluster::simsql_like(10);
    let ctx = PlanContext::new(&registry, cluster);
    let catalog = FormatCatalog::paper_default().dense_only();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &catalog, &model);
    let opt = frontier_dp_beam(&ffnn.graph, &octx, 4000).expect("optimizes");

    let mut rng = seeded_rng(42);
    let mut inputs = HashMap::new();
    for (id, node) in ffnn.graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    Fixture {
        graph: ffnn.graph,
        annotation: opt.annotation,
        registry,
        inputs,
    }
}

fn run_governed(fx: &Fixture, budget: Option<u64>) {
    execute_plan_with(
        &fx.graph,
        &fx.annotation,
        &fx.inputs,
        &fx.registry,
        &Obs::disabled(),
        ExecOptions {
            mem_budget: budget,
            ..Default::default()
        },
    )
    .expect("executes");
}

fn bench_execute(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("governor_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    g.bench_function("execute/plain", |b| {
        b.iter(|| {
            execute_plan(&fx.graph, &fx.annotation, &fx.inputs, &fx.registry).expect("executes")
        })
    });
    g.bench_function("execute/governor_disabled", |b| {
        b.iter(|| run_governed(&fx, None))
    });
    g.bench_function("execute/governor_unbounded_budget", |b| {
        b.iter(|| run_governed(&fx, Some(u64::MAX)))
    });
    g.finish();
}

/// Direct budget check: best-of-N governor-disabled run time against
/// the best-of-N plain run time, interleaved so machine drift hits
/// both equally. The minimum is the right estimator: scheduler noise
/// only ever *adds* time, so the floor is the honest cost of each path.
fn overhead_budget_report() {
    let fx = fixture();
    let reps = 40;
    // Warm both paths once so neither pays first-touch costs.
    execute_plan(&fx.graph, &fx.annotation, &fx.inputs, &fx.registry).expect("executes");
    run_governed(&fx, None);

    let mut plain = f64::INFINITY;
    let mut governed = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        execute_plan(&fx.graph, &fx.annotation, &fx.inputs, &fx.registry).expect("executes");
        plain = plain.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        run_governed(&fx, None);
        governed = governed.min(t.elapsed().as_secs_f64());
    }

    let overhead = governed / plain - 1.0;
    println!(
        "governor overhead budget: plain {:.3} ms, governor(disabled) {:.3} ms -> {:+.3}% (budget 2%) -> {}",
        plain * 1e3,
        governed * 1e3,
        overhead * 100.0,
        if overhead < 0.02 { "OK" } else { "OVER" }
    );
}

criterion_group!(benches, bench_execute);

fn main() {
    benches();
    overhead_budget_report();
}
