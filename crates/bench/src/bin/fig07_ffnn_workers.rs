//! Regenerates fig07 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig07(&Env::new()));
}
