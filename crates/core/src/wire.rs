//! Checksummed all-u64-little-endian frame layer for inter-process
//! transport.
//!
//! Same idiom as the engine's spill files and the serve plan cache
//! (`plans.mcache`): a magic word, a body length, an FNV-1a stream
//! checksum over the body bytes, then the body as little-endian u64
//! words. The difference is that this layer frames a *stream* (a
//! socket between the coordinator and a worker process), so the reader
//! must distinguish three terminal conditions:
//!
//! * [`WireError::Eof`] — the stream ended cleanly *between* frames
//!   (the peer closed after a complete frame);
//! * [`WireError::Corrupt`] — the stream ended inside a frame (a torn
//!   frame from a killed peer), the magic was wrong, the declared
//!   length was absurd, or the checksum did not match. A torn frame is
//!   **never** partially decoded: the body either verifies in full or
//!   is rejected whole.
//! * [`WireError::Io`] — the OS reported a real I/O error.
//!
//! Workers killed with `SIGKILL` mid-write are the design case: the
//! coordinator sees either `Eof` (killed between frames) or `Corrupt`
//! (killed mid-frame), and treats both as worker death — it must never
//! see a fabricated value.

use std::io::{self, Read, Write};

/// Magic word opening every frame (`b"MWIR0001"` little-endian).
pub const WIRE_MAGIC: u64 = u64::from_le_bytes(*b"MWIR0001");

/// Largest body accepted, in words (64 MiB of payload). A torn or
/// hostile length word fails fast instead of provoking a huge
/// allocation.
pub const WIRE_MAX_BODY_WORDS: u64 = 8 * 1024 * 1024;

/// Header size in bytes: magic, tag, length, checksum.
const HEADER_BYTES: usize = 32;

/// What went wrong reading a frame stream.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended cleanly on a frame boundary.
    Eof,
    /// The stream's bytes are not a valid frame: torn mid-frame, bad
    /// magic, absurd length, or checksum mismatch.
    Corrupt(String),
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "stream ended on a frame boundary"),
            WireError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
            WireError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// FNV-1a over bytes — identical constants to the spill layer, so a
/// frame's checksum can be recomputed by any tool in the workspace.
#[must_use]
pub fn wire_fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// Encodes one frame — header plus body — as bytes, ready to write to
/// any transport.
#[must_use]
pub fn frame_bytes(tag: u64, body: &[u64]) -> Vec<u8> {
    let body_bytes = words_to_bytes(body);
    let mut out = Vec::with_capacity(HEADER_BYTES + body_bytes.len());
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&wire_fnv1a(&body_bytes).to_le_bytes());
    out.extend_from_slice(&body_bytes);
    out
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
/// Propagates the transport's I/O errors.
pub fn write_frame<W: Write>(w: &mut W, tag: u64, body: &[u64]) -> io::Result<()> {
    w.write_all(&frame_bytes(tag, body))?;
    w.flush()
}

/// One decoded frame: its tag word and body words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Application-level frame kind.
    pub tag: u64,
    /// Checksummed payload words.
    pub body: Vec<u64>,
}

/// Reads `buf.len()` bytes from `r`, distinguishing a clean EOF before
/// any byte (`Ok(false)`) from a torn read (`Corrupt`) and a transport
/// failure (`Io`). Interrupted reads are retried.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(false);
                }
                return Err(WireError::Corrupt(format!(
                    "stream truncated mid-frame: wanted {} bytes, got {got}",
                    buf.len()
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads whole frames off any byte stream, verifying each one.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner }
    }

    /// Returns the underlying stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Reads and verifies the next frame.
    ///
    /// # Errors
    /// [`WireError::Eof`] on a clean end-of-stream, otherwise
    /// [`WireError::Corrupt`] / [`WireError::Io`] as documented on the
    /// module.
    pub fn read_frame(&mut self) -> Result<Frame, WireError> {
        let mut header = [0u8; HEADER_BYTES];
        if !read_exact_or_eof(&mut self.inner, &mut header)? {
            return Err(WireError::Eof);
        }
        let word = |i: usize| u64::from_le_bytes(header[i * 8..(i + 1) * 8].try_into().unwrap());
        let magic = word(0);
        if magic != WIRE_MAGIC {
            return Err(WireError::Corrupt(format!(
                "bad magic {magic:#018x} (expected {WIRE_MAGIC:#018x})"
            )));
        }
        let tag = word(1);
        let len = word(2);
        let want_sum = word(3);
        if len > WIRE_MAX_BODY_WORDS {
            return Err(WireError::Corrupt(format!(
                "frame body of {len} words exceeds the {WIRE_MAX_BODY_WORDS}-word cap"
            )));
        }
        let mut body_bytes = vec![0u8; (len as usize) * 8];
        if !read_exact_or_eof(&mut self.inner, &mut body_bytes)? && len > 0 {
            return Err(WireError::Corrupt(format!(
                "stream truncated mid-frame: body of {len} words missing"
            )));
        }
        let got_sum = wire_fnv1a(&body_bytes);
        if got_sum != want_sum {
            return Err(WireError::Corrupt(format!(
                "body checksum mismatch: stored {want_sum:#018x}, computed {got_sum:#018x}"
            )));
        }
        let body = body_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(Frame { tag, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                tag: 1,
                body: vec![0xDEAD_BEEF, 42, u64::MAX, 0],
            },
            Frame {
                tag: 2,
                body: vec![],
            },
            Frame {
                tag: 3,
                body: (0..17).map(|i| i * i).collect(),
            },
        ]
    }

    fn stream_of(frames: &[Frame]) -> Vec<u8> {
        let mut s = Vec::new();
        for f in frames {
            s.extend_from_slice(&frame_bytes(f.tag, &f.body));
        }
        s
    }

    #[test]
    fn round_trips_a_stream() {
        let frames = sample_frames();
        let bytes = stream_of(&frames);
        let mut r = FrameReader::new(&bytes[..]);
        for f in &frames {
            assert_eq!(&r.read_frame().unwrap(), f);
        }
        assert!(matches!(r.read_frame(), Err(WireError::Eof)));
    }

    /// The satellite-4 contract at the wire layer: EVERY prefix length
    /// of a valid frame stream decodes to a prefix of the original
    /// frames and then fails with a structured error — `Eof` exactly on
    /// frame boundaries, `Corrupt` everywhere else. No panic, no
    /// fabricated frame.
    #[test]
    fn every_prefix_truncation_is_structured() {
        let frames = sample_frames();
        let bytes = stream_of(&frames);
        // Byte offsets at which a frame ends (clean-EOF points).
        let mut boundaries = vec![0usize];
        let mut off = 0;
        for f in &frames {
            off += frame_bytes(f.tag, &f.body).len();
            boundaries.push(off);
        }
        for cut in 0..bytes.len() {
            let mut r = FrameReader::new(&bytes[..cut]);
            let mut decoded = Vec::new();
            let err = loop {
                match r.read_frame() {
                    Ok(f) => decoded.push(f),
                    Err(e) => break e,
                }
            };
            assert!(
                decoded.iter().zip(frames.iter()).all(|(a, b)| a == b),
                "cut {cut}: decoded frames are not a prefix of the originals"
            );
            if boundaries.contains(&cut) {
                assert!(
                    matches!(err, WireError::Eof),
                    "cut {cut} is a frame boundary but reader said: {err}"
                );
            } else {
                assert!(
                    matches!(err, WireError::Corrupt(_)),
                    "cut {cut} is mid-frame but reader said: {err}"
                );
            }
        }
    }

    #[test]
    fn flipped_body_bit_is_a_checksum_error() {
        let frames = sample_frames();
        let mut bytes = stream_of(&frames);
        let last = bytes.len() - 1; // inside frame 3's body
        bytes[last] ^= 0x40;
        let mut r = FrameReader::new(&bytes[..]);
        assert!(r.read_frame().is_ok());
        assert!(r.read_frame().is_ok());
        match r.read_frame() {
            Err(WireError::Corrupt(m)) => assert!(m.contains("checksum"), "{m}"),
            other => panic!("expected checksum corruption, got {other:?}"),
        }
    }

    #[test]
    fn absurd_length_fails_fast() {
        let mut bytes = frame_bytes(9, &[1, 2, 3]);
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = FrameReader::new(&bytes[..]);
        match r.read_frame() {
            Err(WireError::Corrupt(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("expected length-cap corruption, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let mut bytes = frame_bytes(9, &[1]);
        bytes[0] ^= 0xFF;
        let mut r = FrameReader::new(&bytes[..]);
        assert!(matches!(r.read_frame(), Err(WireError::Corrupt(_))));
    }
}
