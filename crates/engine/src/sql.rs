//! Rendering annotated plans as SQL — the concrete artifact the paper's
//! prototype would hand to SimSQL.
//!
//! §1–2 of the paper show matrix computations written as `CREATE TABLE`
//! / `CREATE VIEW` statements over relations with `MATRIX[..][..]`
//! attributes, with tiled multiplies as join + `SUM` + `GROUP BY`,
//! gathers as the `ROWMATRIX`/`COLMATRIX` aggregates, and chunkings via
//! `get_tile`. [`render_sql`] emits exactly that dialect for any
//! type-correct annotation, so every optimized plan can be inspected as
//! the SQL a relational ML engine would execute.

use matopt_core::{
    Annotation, ComputeGraph, MatrixType, NodeId, NodeKind, Op, OpKind, PhysFormat, PlanContext,
    PlanError, Strategy, TransformKind,
};

/// Renders the whole annotated plan as a SQL script: one `CREATE TABLE`
/// per source, one or more `CREATE VIEW`s per transformation and
/// compute vertex.
///
/// # Errors
/// Returns a [`PlanError`] when the annotation is incomplete or not
/// type-correct (validated first).
pub fn render_sql(
    graph: &ComputeGraph,
    annotation: &Annotation,
    ctx: &PlanContext<'_>,
) -> Result<String, PlanError> {
    matopt_core::validate(
        graph,
        annotation,
        &matopt_core::PlanContext {
            registry: ctx.registry,
            transforms: ctx.transforms,
            cluster: ctx.cluster.with_unlimited_resources(),
        },
    )?;
    let mut out = String::new();
    for (id, node) in graph.iter() {
        match &node.kind {
            NodeKind::Source { format } => {
                out.push_str(&create_table(&rel_name(graph, id), &node.mtype, *format));
                out.push('\n');
            }
            NodeKind::Compute { op } => {
                let choice = annotation.choice(id).expect("validated");
                // Edge transformations first: each non-identity move is
                // its own view the operator reads from.
                let mut input_rels = Vec::new();
                for (j, (input, t)) in node
                    .inputs
                    .iter()
                    .zip(choice.input_transforms.iter())
                    .enumerate()
                {
                    let src = rel_name(graph, *input);
                    if t.kind == TransformKind::Identity {
                        input_rels.push(src);
                    } else {
                        let moved = format!("{}_{}in{}", rel_name(graph, id), "", j);
                        out.push_str(&transform_view(
                            &moved,
                            &src,
                            &graph.node(*input).mtype,
                            t.kind,
                            t.to,
                        ));
                        out.push('\n');
                        input_rels.push(moved);
                    }
                }
                let strategy = ctx.registry.get(choice.impl_id).strategy;
                out.push_str(&compute_view(
                    &rel_name(graph, id),
                    op,
                    strategy,
                    &input_rels,
                    choice.output_format,
                ));
                out.push('\n');
            }
        }
    }
    Ok(out)
}

fn rel_name(graph: &ComputeGraph, id: NodeId) -> String {
    graph
        .node(id)
        .name
        .clone()
        .unwrap_or_else(|| format!("v{}", id.0))
}

fn mat_attr(m: &MatrixType, format: PhysFormat) -> String {
    match format {
        PhysFormat::SingleTuple => format!("mat MATRIX[{}][{}]", m.rows, m.cols),
        PhysFormat::RowStrip { height } => format!("mat MATRIX[{}][{}]", height, m.cols),
        PhysFormat::ColStrip { width } => format!("mat MATRIX[{}][{}]", m.rows, width),
        PhysFormat::Tile { side } => format!("mat MATRIX[{side}][{side}]"),
        PhysFormat::Coo => "value DOUBLE".to_string(),
        PhysFormat::CsrSingle => format!("mat SPARSE_MATRIX[{}][{}]", m.rows, m.cols),
        PhysFormat::CsrTile { side } => format!("mat SPARSE_MATRIX[{side}][{side}]"),
    }
}

/// Key columns of a relation in the given layout.
fn key_cols(format: PhysFormat) -> &'static [&'static str] {
    match format {
        PhysFormat::SingleTuple | PhysFormat::CsrSingle => &[],
        PhysFormat::RowStrip { .. } => &["tileRow"],
        PhysFormat::ColStrip { .. } => &["tileCol"],
        PhysFormat::Tile { .. } | PhysFormat::CsrTile { .. } => &["tileRow", "tileCol"],
        PhysFormat::Coo => &["rowIndex", "colIndex"],
    }
}

fn schema(m: &MatrixType, format: PhysFormat) -> String {
    let mut cols: Vec<String> = key_cols(format)
        .iter()
        .map(|k| format!("{k} INTEGER"))
        .collect();
    cols.push(mat_attr(m, format));
    cols.join(", ")
}

fn create_table(name: &str, m: &MatrixType, format: PhysFormat) -> String {
    format!("CREATE TABLE {name} ({});\n", schema(m, format))
}

fn select_keys(alias: &str, format: PhysFormat) -> String {
    key_cols(format)
        .iter()
        .map(|k| format!("{alias}.{k}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn with_keys(keys: &str, rest: &str) -> String {
    if keys.is_empty() {
        rest.to_string()
    } else {
        format!("{keys}, {rest}")
    }
}

/// A view realizing one physical matrix transformation.
fn transform_view(
    name: &str,
    src: &str,
    m: &MatrixType,
    kind: TransformKind,
    to: PhysFormat,
) -> String {
    use TransformKind as K;
    match kind {
        K::Identity => format!("-- {name}: identity over {src}\n"),
        K::GatherToSingle => format!(
            "-- gather {src} into one tuple (two-phase aggregation, cf. paper section 2.1)\n\
             CREATE VIEW {name}_strips (tileRow, mat) AS\n  \
             SELECT x.tileRow, ROWMATRIX(label_matrix(x.mat, x.tileCol))\n  \
             FROM {src} AS x GROUP BY x.tileRow;\n\
             CREATE VIEW {name} (mat) AS\n  \
             SELECT COLMATRIX(label_matrix(x.mat, x.tileRow))\n  FROM {name}_strips AS x;\n"
        ),
        K::SingleToTile
        | K::SingleToRowStrip
        | K::SingleToColStrip
        | K::Retile
        | K::TileToRowStrip
        | K::TileToColStrip
        | K::RowStripToTile
        | K::ColStripToTile
        | K::RowStripRechunk
        | K::ColStripRechunk
        | K::RowStripToColStrip
        | K::ColStripToRowStrip => {
            let (tr, tc) = chunk_dims(m, to);
            format!(
                "-- rechunk {src} ({kind:?})\n\
                 CREATE VIEW {name} ({keys}mat) AS\n  \
                 SELECT {bkeys}get_tile({src_alias}.mat, bi.rowID, bi.colID, {tr}, {tc})\n  \
                 FROM {src} AS {src_alias}, tileIndex AS bi\n  \
                 WHERE covers({src_alias}, bi.rowID, bi.colID);\n",
                keys = if key_cols(to).is_empty() {
                    String::new()
                } else {
                    format!("{}, ", key_cols(to).join(", "))
                },
                bkeys = if key_cols(to).is_empty() {
                    String::new()
                } else {
                    key_cols(to)
                        .iter()
                        .map(|k| format!("bi.{}", if *k == "tileRow" { "rowID" } else { "colID" }))
                        .collect::<Vec<_>>()
                        .join(", ")
                        + ", "
                },
                src_alias = "s",
            )
        }
        K::DenseToCoo => format!(
            "-- explode {src} into (rowIndex, colIndex, value) triples\n\
             CREATE VIEW {name} (rowIndex, colIndex, value) AS\n  \
             SELECT t.rowIndex, t.colIndex, t.value FROM {src} AS s, LATERAL to_triples(s.mat) AS t;\n"
        ),
        K::CooToTile => format!(
            "-- assemble triples of {src} into dense tiles\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT s.rowIndex / {tr}, s.colIndex / {tc}, TILEMATRIX(s.rowIndex, s.colIndex, s.value)\n  \
             FROM {src} AS s GROUP BY s.rowIndex / {tr}, s.colIndex / {tc};\n",
            tr = chunk_dims(m, to).0,
            tc = chunk_dims(m, to).1,
        ),
        K::DenseToCsrSingle | K::TileToCsrTile => format!(
            "-- compress {src} to CSR\n\
             CREATE VIEW {name} ({cols}) AS SELECT {keys}to_csr(s.mat) FROM {src} AS s;\n",
            cols = schema(m, to)
                .replace(" INTEGER", "")
                .replace(mat_attr(m, to).as_str(), "mat"),
            keys = if key_cols(to).is_empty() {
                String::new()
            } else {
                key_cols(to)
                    .iter()
                    .map(|k| format!("s.{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
                    + ", "
            },
        ),
        K::CsrSingleToSingle | K::CsrTileToTile => format!(
            "-- densify {src}\n\
             CREATE VIEW {name} AS SELECT {keys}to_dense(s.mat) AS mat FROM {src} AS s;\n",
            keys = if key_cols(to).is_empty() {
                String::new()
            } else {
                key_cols(to)
                    .iter()
                    .map(|k| format!("s.{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
                    + ", "
            },
        ),
    }
}

fn chunk_dims(m: &MatrixType, format: PhysFormat) -> (u64, u64) {
    match format {
        PhysFormat::SingleTuple | PhysFormat::CsrSingle | PhysFormat::Coo => (m.rows, m.cols),
        PhysFormat::RowStrip { height } => (height, m.cols),
        PhysFormat::ColStrip { width } => (m.rows, width),
        PhysFormat::Tile { side } | PhysFormat::CsrTile { side } => (side, side),
    }
}

/// The scalar/matrix function name of a unary or binary op in the SQL
/// dialect.
fn op_fn(op: &Op) -> String {
    match op.kind() {
        OpKind::MatMul => "matrix_multiply".into(),
        OpKind::Add | OpKind::BroadcastAddRow => "matrix_add".into(),
        OpKind::Sub => "matrix_sub".into(),
        OpKind::Hadamard => "matrix_hadamard".into(),
        OpKind::ScalarMul => match op {
            Op::ScalarMul(a) => format!("matrix_scale[{a}]"),
            _ => unreachable!(),
        },
        OpKind::Transpose => "matrix_transpose".into(),
        OpKind::Relu => "relu".into(),
        OpKind::ReluGrad => "relu_grad".into(),
        OpKind::Softmax => "softmax".into(),
        OpKind::Sigmoid => "sigmoid".into(),
        OpKind::Exp => "matrix_exp".into(),
        OpKind::Neg => "matrix_neg".into(),
        OpKind::RowSums => "row_sums".into(),
        OpKind::ColSums => "col_sums".into(),
        OpKind::Inverse => "matrix_inverse".into(),
        OpKind::SumAll => "sum_all".into(),
        OpKind::FrobeniusNorm => "frobenius_norm".into(),
    }
}

/// A view realizing one atomic computation implementation.
fn compute_view(
    name: &str,
    op: &Op,
    strategy: Strategy,
    inputs: &[String],
    out: PhysFormat,
) -> String {
    use Strategy as S;
    let f = op_fn(op);
    let lhs = inputs.first().cloned().unwrap_or_default();
    let rhs = inputs.get(1).cloned().unwrap_or_default();
    match strategy {
        S::MmTileShuffle | S::MmCsrTileTile => format!(
            "-- tile x tile multiply: shuffle join + SUM aggregation\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT x.tileRow, m.tileCol, SUM({f}(x.mat, m.mat))\n  \
             FROM {lhs} AS x, {rhs} AS m\n  WHERE x.tileCol = m.tileRow\n  \
             GROUP BY x.tileRow, m.tileCol;\n"
        ),
        S::MmTileBcast => format!(
            "-- tile x tile multiply: the smaller side is BROADCAST to every site\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT x.tileRow, m.tileCol, SUM({f}(x.mat, m.mat))\n  \
             FROM {lhs} AS x, {rhs} AS m\n  WHERE x.tileCol = m.tileRow\n  \
             GROUP BY x.tileRow, m.tileCol;\n"
        ),
        S::MmRowstripColstripCross => format!(
            "-- row-strips x col-strips: cross join, no aggregation needed\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT x.tileRow, m.tileCol, {f}(x.mat, m.mat)\n  \
             FROM {lhs} AS x, {rhs} AS m;\n"
        ),
        S::MmBcastSingleColstrip => format!(
            "-- single x col-strips: BROADCAST JOIN of the single-tuple side\n\
             CREATE VIEW {name} (tileCol, mat) AS\n  \
             SELECT m.tileCol, {f}(x.mat, m.mat)\n  FROM {lhs} AS x, {rhs} AS m;\n"
        ),
        S::MmRowstripBcastSingle => format!(
            "-- row-strips x single: BROADCAST JOIN of the single-tuple side\n\
             CREATE VIEW {name} (tileRow, mat) AS\n  \
             SELECT x.tileRow, {f}(x.mat, m.mat)\n  FROM {lhs} AS x, {rhs} AS m;\n"
        ),
        S::MmColstripRowstripOuter => format!(
            "-- col-strips x row-strips: co-partitioned outer products + global SUM\n\
             CREATE VIEW {name} (mat) AS\n  \
             SELECT SUM({f}(x.mat, m.mat))\n  FROM {lhs} AS x, {rhs} AS m\n  \
             WHERE x.tileCol = m.tileRow;\n"
        ),
        S::MmSingleLocal | S::MmCsrSingleSingle => format!(
            "-- single x single: local multiply on one site\n\
             CREATE VIEW {name} (mat) AS\n  \
             SELECT {f}(x.mat, m.mat) FROM {lhs} AS x, {rhs} AS m;\n"
        ),
        S::MmCooDenseShuffle => format!(
            "-- (rowIndex, colIndex, value) triples x dense tiles: relational multiply\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT x.rowIndex / tile_rows({rhs}), m.tileCol, SUM(scale_row(m.mat, x.colIndex, x.value, x.rowIndex))\n  \
             FROM {lhs} AS x, {rhs} AS m\n  WHERE x.colIndex / tile_rows({rhs}) = m.tileRow\n  \
             GROUP BY x.rowIndex / tile_rows({rhs}), m.tileCol;\n"
        ),
        S::EwCopart | S::HadamardCsrDenseCopart => {
            let keys = select_keys("x", out);
            let on = key_cols(out)
                .iter()
                .map(|k| format!("x.{k} = y.{k}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            format!(
                "-- elementwise, co-partitioned join on the chunk key\n\
                 CREATE VIEW {name} AS\n  \
                 SELECT {sel}\n  FROM {lhs} AS x, {rhs} AS y\n  WHERE {on};\n",
                sel = with_keys(&keys, &format!("{f}(x.mat, y.mat) AS mat")),
            )
        }
        S::EwSingleLocal => format!(
            "CREATE VIEW {name} (mat) AS SELECT {f}(x.mat, y.mat) FROM {lhs} AS x, {rhs} AS y;\n"
        ),
        S::AddCooDenseCopart => format!(
            "-- scatter triples into the dense side\n\
             CREATE VIEW {name} AS\n  \
             SELECT y.tileRow, y.tileCol, scatter_add(y.mat, x.rowIndex, x.colIndex, x.value) AS mat\n  \
             FROM {lhs} AS x RIGHT JOIN {rhs} AS y ON in_tile(y, x.rowIndex, x.colIndex);\n"
        ),
        S::BiasBcast => format!(
            "-- BROADCAST the bias vector to every chunk\n\
             CREATE VIEW {name} AS\n  \
             SELECT {sel}\n  FROM {lhs} AS x, {rhs} AS b;\n",
            sel = with_keys(
                &select_keys("x", out),
                &format!("{f}(x.mat, slice_cols(b.mat, x)) AS mat")
            ),
        ),
        S::UnaryMap | S::SoftmaxRowAligned | S::TransposeCoo | S::TransposeCsrSingle => {
            let sel = with_keys(&select_keys("x", out), &format!("{f}(x.mat) AS mat"));
            format!("CREATE VIEW {name} AS SELECT {sel} FROM {lhs} AS x;\n")
        }
        S::SoftmaxTileTwoRound => format!(
            "-- softmax over tiles: two reduction rounds (row max, row sum)\n\
             CREATE VIEW {name}_stats (tileRow, maxes, sums) AS\n  \
             SELECT x.tileRow, ROWMAX(x.mat), ROWSUMEXP(x.mat) FROM {lhs} AS x GROUP BY x.tileRow;\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT x.tileRow, x.tileCol, softmax_with(x.mat, s.maxes, s.sums)\n  \
             FROM {lhs} AS x, {name}_stats AS s WHERE x.tileRow = s.tileRow;\n"
        ),
        S::TransposeChunkwise => format!(
            "-- transpose each chunk and swap its coordinates\n\
             CREATE VIEW {name} AS SELECT {sel} FROM {lhs} AS x;\n",
            sel = match out {
                PhysFormat::Tile { .. } =>
                    format!("x.tileCol AS tileRow, x.tileRow AS tileCol, {f}(x.mat) AS mat"),
                PhysFormat::RowStrip { .. } => format!("x.tileCol AS tileRow, {f}(x.mat) AS mat"),
                PhysFormat::ColStrip { .. } => format!("x.tileRow AS tileCol, {f}(x.mat) AS mat"),
                _ => format!("{f}(x.mat) AS mat"),
            },
        ),
        S::ReduceRowAligned | S::ReduceColAligned | S::ReduceCoo => {
            let sel = with_keys(&select_keys("x", out), &format!("{f}(x.mat) AS mat"));
            format!("CREATE VIEW {name} AS SELECT {sel} FROM {lhs} AS x;\n")
        }
        S::ReduceTileShuffle => {
            let key = if op.kind() == OpKind::RowSums {
                "tileRow"
            } else {
                "tileCol"
            };
            format!(
                "-- per-tile partials + group-by SUM on {key}\n\
                 CREATE VIEW {name} ({key}, mat) AS\n  \
                 SELECT x.{key}, SUM({f}(x.mat)) FROM {lhs} AS x GROUP BY x.{key};\n"
            )
        }
        S::InvSingleLocal => format!(
            "CREATE VIEW {name} (mat) AS SELECT {f}(x.mat) FROM {lhs} AS x;\n"
        ),
        S::InvTileGaussJordan => format!(
            "-- distributed blocked Gauss-Jordan: one relational round per pivot panel\n\
             CREATE VIEW {name} (tileRow, tileCol, mat) AS\n  \
             SELECT x.tileRow, x.tileCol, gauss_jordan_round(x.mat, pivot_panel(x.tileRow))\n  \
             FROM {lhs} AS x;  -- repeated for each pivot block\n"
        ),
        S::ReduceScalarLocal => {
            format!("CREATE VIEW {name} (mat) AS SELECT {f}(x.mat) FROM {lhs} AS x;\n")
        }
        S::ReduceScalarTree => {
            let agg = if op.kind() == OpKind::FrobeniusNorm {
                "SQRT(SUM(sum_squares(x.mat)))".to_string()
            } else {
                format!("SUM({f}(x.mat))")
            };
            format!(
                "-- per-chunk partial scalars + global SUM into one tuple\n\
                 CREATE VIEW {name} (mat) AS\n  \
                 SELECT {agg} FROM {lhs} AS x;\n"
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_core::{Cluster, ImplRegistry, Transform, VertexChoice};

    /// The §2.1 motivating plans must render to the paper's SQL shapes.
    #[test]
    fn motivating_example_renders_like_the_paper() {
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source_named(
            MatrixType::dense(100, 10_000),
            PhysFormat::RowStrip { height: 10 },
            Some("matA"),
        );
        let b = g.add_source_named(
            MatrixType::dense(10_000, 100),
            PhysFormat::ColStrip { width: 10 },
            Some("matB"),
        );
        let c = g.add_source_named(
            MatrixType::dense(100, 1_000_000),
            PhysFormat::ColStrip { width: 10_000 },
            Some("matC"),
        );
        let ab = g.add_op_named(Op::MatMul, &[a, b], Some("matAB")).unwrap();
        let abc = g
            .add_op_named(Op::MatMul, &[ab, c], Some("matABC"))
            .unwrap();

        let mut ann = Annotation::empty(&g);
        ann.set(
            ab,
            VertexChoice {
                impl_id: reg.by_name("mm_rowstrip_colstrip_cross").unwrap().id,
                input_transforms: vec![
                    Transform::identity(PhysFormat::RowStrip { height: 10 }),
                    Transform::identity(PhysFormat::ColStrip { width: 10 }),
                ],
                output_format: PhysFormat::Tile { side: 10 },
            },
        );
        ann.set(
            abc,
            VertexChoice {
                impl_id: reg.by_name("mm_bcast_single_colstrip").unwrap().id,
                input_transforms: vec![
                    Transform {
                        kind: TransformKind::GatherToSingle,
                        to: PhysFormat::SingleTuple,
                    },
                    Transform::identity(PhysFormat::ColStrip { width: 10_000 }),
                ],
                output_format: PhysFormat::ColStrip { width: 10_000 },
            },
        );
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let sql = render_sql(&g, &ann, &ctx).unwrap();
        // Sources declare MATRIX attributes with chunk dimensions.
        assert!(sql.contains("CREATE TABLE matA (tileRow INTEGER, mat MATRIX[10][10000]);"));
        assert!(sql.contains("CREATE TABLE matC (tileCol INTEGER, mat MATRIX[100][10000]);"));
        // The cross join has no WHERE / GROUP BY.
        assert!(sql.contains("cross join, no aggregation"));
        // The gather renders the paper's ROWMATRIX/COLMATRIX pair.
        assert!(sql.contains("ROWMATRIX(label_matrix"));
        assert!(sql.contains("COLMATRIX(label_matrix"));
        // The final multiply is a broadcast join.
        assert!(sql.contains("BROADCAST JOIN"));
    }

    #[test]
    fn tile_shuffle_renders_join_plus_sum() {
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source_named(
            MatrixType::dense(4000, 4000),
            PhysFormat::Tile { side: 1000 },
            Some("lhs"),
        );
        let b = g.add_source_named(
            MatrixType::dense(4000, 4000),
            PhysFormat::Tile { side: 1000 },
            Some("rhs"),
        );
        let c = g.add_op_named(Op::MatMul, &[a, b], Some("prod")).unwrap();
        let mut ann = Annotation::empty(&g);
        ann.set(
            c,
            VertexChoice {
                impl_id: reg.by_name("mm_tile_shuffle").unwrap().id,
                input_transforms: vec![
                    Transform::identity(PhysFormat::Tile { side: 1000 }),
                    Transform::identity(PhysFormat::Tile { side: 1000 }),
                ],
                output_format: PhysFormat::Tile { side: 1000 },
            },
        );
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(5));
        let sql = render_sql(&g, &ann, &ctx).unwrap();
        assert!(sql.contains("SUM(matrix_multiply(x.mat, m.mat))"));
        assert!(sql.contains("WHERE x.tileCol = m.tileRow"));
        assert!(sql.contains("GROUP BY x.tileRow, m.tileCol"));
    }

    #[test]
    fn invalid_annotation_is_rejected() {
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source(MatrixType::dense(8, 8), PhysFormat::SingleTuple);
        let _r = g.add_op(Op::Relu, &[a]).unwrap();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(2));
        let empty = Annotation::empty(&g);
        assert!(render_sql(&g, &empty, &ctx).is_err());
    }

    #[test]
    fn coo_source_declares_triples() {
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source_named(
            MatrixType::sparse(1000, 1000, 0.01),
            PhysFormat::Coo,
            Some("triples"),
        );
        {
            let t = g
                .add_op_named(Op::Transpose, &[a], Some("flipped"))
                .unwrap();
            let mut ann = Annotation::empty(&g);
            ann.set(
                t,
                VertexChoice {
                    impl_id: reg.by_name("transpose_coo").unwrap().id,
                    input_transforms: vec![Transform::identity(PhysFormat::Coo)],
                    output_format: PhysFormat::Coo,
                },
            );
            let ctx = PlanContext::new(&reg, Cluster::simsql_like(2));
            let sql = render_sql(&g, &ann, &ctx).unwrap();
            assert!(sql.contains(
                "CREATE TABLE triples (rowIndex INTEGER, colIndex INTEGER, value DOUBLE);"
            ));
        };
    }
}
