//! Fault-tolerant plan execution: retries with bounded exponential
//! backoff, per-vertex checkpointing, lineage replay, and degradation-
//! aware re-planning.
//!
//! [`execute_fault_tolerant`] is [`crate::execute_plan`] wrapped in a
//! recovery loop driven by a [`FaultInjector`]:
//!
//! * **transient kernel errors** retry the vertex after exponential
//!   backoff with seeded jitter, up to [`RetryConfig::max_retries`];
//! * **corrupted chunks** are caught by an FNV checksum over the
//!   vertex's output (only computed while a corruption fault is
//!   pending) and recomputed;
//! * **worker crashes** lose the in-flight vertex plus a seeded random
//!   subset of this plan epoch's materialized intermediates, then
//!   recover per the [`RecoveryPolicy`]: restart-from-scratch replays
//!   every lost vertex, per-vertex checkpointing restores from the
//!   checkpoint store, lineage replay recomputes only the lost vertices
//!   from their nearest surviving ancestors;
//! * **resource exhaustion**, after [`FtConfig::degrade_after`]
//!   repeats, shrinks the [`Cluster`](matopt_core::Cluster) and
//!   re-optimizes the remaining suffix with the same machinery
//!   [`crate::execute_adaptive`] uses — already-computed values become
//!   plan inputs pinned in driver storage.
//!
//! Since the pipelined-scheduler rework the executor is no longer a
//! strict topological walk:
//!
//! * with a **disabled injector** the run delegates wholesale to the
//!   same pipelined scheduler [`crate::execute_plan`] uses, so the
//!   fault-free path pays no per-vertex fault branches at all (pinned
//!   under 2% by the `recovery_overhead` bench);
//! * with a **live injector** vertices execute in *antichain waves*
//!   (same-depth vertices have no mutual data dependencies). Within a
//!   wave, vertices with scheduled faults run first, serially in id
//!   order, so fault handling and PRNG draws stay deterministic per
//!   seed; the remaining clean vertices of the wave then run as one
//!   concurrent pool batch. Vertices therefore complete out of
//!   topological order, and recovery tracks the *done set* explicitly
//!   instead of assuming every lower-id vertex is materialized.
//!
//! Every fault, retry, and recovery emits a record under
//! [`Subsystem::Faults`].

use crate::adaptive::rebuild_suffix;
use crate::exec::{
    missing_choice, missing_input, unshare, vertex_label, ExecOptions, GovernorStats, HedgeConfig,
};
use crate::faults::{corrupt_chunk, relation_checksum, FaultInjector, FaultKind};
use crate::impl_exec::{execute_impl_shared, ExecError};
use crate::schedule::run_pipelined;
use crate::value::DistRelation;
use matopt_core::{
    Annotation, ComputeGraph, FormatCatalog, ImplRegistry, NodeId, NodeKind, PlanContext,
    RecoveryPolicy, TransformKind,
};
use matopt_cost::CostModel;
use matopt_obs::{Obs, Subsystem};
use matopt_opt::{frontier_dp_beam, OptContext};
use matopt_pool::Pool;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded exponential backoff for transient faults.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Retries allowed per vertex before
    /// [`ExecError::RetryBudgetExhausted`].
    pub max_retries: u32,
    /// First backoff delay, in milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, in milliseconds (jitter of up to one base delay
    /// is added on top, drawn from the injector's seeded PRNG).
    pub max_backoff_ms: u64,
}

impl RetryConfig {
    /// The equivalent shared backoff policy: same base, cap, and
    /// budget, with the delay arithmetic (and its bounded-total-wait
    /// property test) hoisted into `matopt-core`.
    #[must_use]
    pub fn policy(&self) -> matopt_core::BackoffPolicy {
        matopt_core::BackoffPolicy {
            base_ms: self.base_backoff_ms,
            cap_ms: self.max_backoff_ms,
            max_attempts: self.max_retries,
        }
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 4,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
        }
    }
}

/// Configuration of the fault-tolerant executor.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// How crashes are recovered.
    pub policy: RecoveryPolicy,
    /// Backoff/retry limits for transient faults.
    pub retry: RetryConfig,
    /// Resource-style failures at one vertex before the cluster is
    /// degraded and the suffix re-planned.
    pub degrade_after: u32,
    /// Beam width for degradation re-planning.
    pub beam: usize,
    /// Memory budget in bytes (`None` = unbounded). The fault-free fast
    /// path governs with spill-to-disk exactly like
    /// [`crate::execute_plan_with`]; the live-injector path retains
    /// every value for crash recovery, so it instead throttles wave
    /// admission to keep projected residency within budget.
    pub mem_budget: Option<u64>,
    /// Scratch directory for spilled buffers (fast path only; `None` =
    /// [`matopt_core::default_scratch_dir`]).
    pub scratch_dir: Option<PathBuf>,
    /// Hedged straggler re-execution (`None` = off). Composes with
    /// retries: a hedge bounds the straggler delay, while transient
    /// faults still burn the retry budget.
    pub hedge: Option<HedgeConfig>,
    /// Shared admission/memory pool (`None` = self-governed). Fault-free
    /// fast-path runs lease a carve-out exactly like
    /// [`crate::execute_plan_with`]; the live-injector path ignores it
    /// (crash recovery retains every value and throttles wave admission
    /// instead).
    pub shared_governor: Option<std::sync::Arc<crate::SharedGovernor>>,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            policy: RecoveryPolicy::default(),
            retry: RetryConfig::default(),
            degrade_after: 2,
            beam: 2000,
            mem_budget: None,
            scratch_dir: None,
            hedge: None,
            shared_governor: None,
        }
    }
}

/// Per-vertex recovery bookkeeping, indexed like the graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexRecovery {
    /// Retries spent at this vertex (transient faults, corruption
    /// recomputes, resource failures).
    pub retries: u32,
    /// Crash recoveries that replayed this vertex.
    pub recoveries: u32,
    /// Seconds spent on backoff, straggling, and replay at this vertex.
    pub recovery_seconds: f64,
}

/// A fault that actually fired during the run.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// Compute-step index the fault fired at.
    pub step: usize,
    /// The vertex executing when it fired.
    pub vertex: NodeId,
    /// What went wrong.
    pub kind: FaultKind,
}

/// The result of a fault-tolerant run.
#[derive(Debug, Clone)]
pub struct FtOutcome {
    /// Values at the graph's sinks — identical to the fault-free run's
    /// for any crash/transient/corruption schedule (degradation
    /// re-plans may pick different implementations, which changes
    /// floating-point rounding).
    pub sinks: HashMap<NodeId, DistRelation>,
    /// The value computed at every vertex.
    pub values: HashMap<NodeId, DistRelation>,
    /// Wall seconds per vertex for the *successful* attempt.
    pub vertex_seconds: Vec<f64>,
    /// Wall seconds per in-edge transform for the successful attempt.
    pub transform_seconds: Vec<Vec<f64>>,
    /// Chunks in each vertex's output relation.
    pub vertex_chunks: Vec<usize>,
    /// Bytes of each vertex's output relation.
    pub vertex_resident_bytes: Vec<u64>,
    /// Worker parallelism of the pool the run was scheduled on.
    pub parallelism: usize,
    /// Highest number of vertices in flight at once.
    pub max_concurrency: usize,
    /// Peak bytes resident across all live vertex buffers (the
    /// fault-tolerant executor retains everything, so this is the
    /// total).
    pub peak_resident_bytes: u64,
    /// Total wall seconds including all recovery work.
    pub total_seconds: f64,
    /// Total retries across the run.
    pub retries: u32,
    /// Total crash recoveries.
    pub recoveries: u32,
    /// Degradation re-plans performed.
    pub replans: u32,
    /// Every fault that fired, in firing order.
    pub faults: Vec<InjectedFault>,
    /// Seconds spent recovering (backoff + straggling + replay).
    pub recovery_seconds: f64,
    /// Seconds spent writing checkpoints.
    pub checkpoint_seconds: f64,
    /// Per-vertex breakdown of the above.
    pub per_vertex: Vec<VertexRecovery>,
    /// Spill/backpressure/hedging counters. The fast path reports the
    /// pipelined governor's full stats; the live-injector path fills
    /// the admission-wait and hedge counters.
    pub governor: GovernorStats,
    /// Pool counter delta for this run (tasks, steals, busy time).
    pub pool: matopt_pool::PoolStats,
}

/// Executes an annotated graph under fault injection, recovering every
/// fault the injector fires.
///
/// With a [`FaultInjector::disabled`] injector this behaves exactly
/// like [`crate::execute_plan`] (same values, near-zero overhead).
/// `ctx`/`catalog`/`model` are only consulted when degradation forces a
/// re-plan of the remaining suffix.
///
/// # Errors
/// [`ExecError`] on malformed plans, and
/// [`ExecError::RetryBudgetExhausted`] when one vertex's faults outrun
/// [`RetryConfig::max_retries`].
#[allow(clippy::too_many_arguments)]
pub fn execute_fault_tolerant(
    graph: &ComputeGraph,
    annotation: &Annotation,
    inputs: &HashMap<NodeId, DistRelation>,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    model: &dyn CostModel,
    mut injector: FaultInjector,
    config: &FtConfig,
    obs: &Obs,
) -> Result<FtOutcome, ExecError> {
    let _run = obs.span_with(Subsystem::Faults, "execute_fault_tolerant", || {
        vec![
            ("vertices", graph.len().into()),
            ("policy", config.policy.as_str().into()),
            ("scheduled_faults", injector.pending().len().into()),
        ]
    });
    let start = Instant::now();
    let pool_before = Pool::global().stats();
    let registry = ctx.registry;

    // Fault-free fast path: the whole run is one pipelined-scheduler
    // execution — identical to `execute_plan`, zero fault bookkeeping.
    if !injector.is_enabled() {
        let options = ExecOptions {
            retain_values: true,
            mem_budget: config.mem_budget,
            scratch_dir: config.scratch_dir.clone(),
            hedge: config.hedge.clone(),
            straggler_delays_ms: None,
            shared_governor: config.shared_governor.clone(),
            kernel_config: None,
            remote: None,
        };
        let mut out = run_pipelined(graph, annotation, inputs, registry, obs, true, &options)?;
        // Take each slot so the `Arc` is unique and `unshare` moves
        // instead of deep-copying every retained value.
        let mut all = HashMap::new();
        for (id, _) in graph.iter() {
            if let Some(rel) = out.values[id.index()].take() {
                all.insert(id, unshare(rel));
            }
        }
        let sinks = graph
            .sinks()
            .into_iter()
            .map(|s| (s, all[&s].clone()))
            .collect();
        return Ok(FtOutcome {
            sinks,
            values: all,
            vertex_seconds: out.vertex_seconds,
            transform_seconds: out.transform_seconds,
            vertex_chunks: out.vertex_chunks,
            vertex_resident_bytes: out.vertex_resident_bytes,
            parallelism: out.parallelism,
            max_concurrency: out.max_concurrency,
            peak_resident_bytes: out.peak_resident_bytes,
            total_seconds: start.elapsed().as_secs_f64(),
            retries: 0,
            recoveries: 0,
            replans: 0,
            faults: Vec::new(),
            recovery_seconds: 0.0,
            checkpoint_seconds: 0.0,
            per_vertex: vec![VertexRecovery::default(); graph.len()],
            governor: out.governor,
            pool: out.pool,
        });
    }

    let n = graph.len();
    let mut cluster = ctx.cluster;
    // `Arc`s so clean-wave pool closures can share the plan state.
    let graph_arc = Arc::new(graph.clone());
    let registry_arc = Arc::new(registry.clone());
    // One kernel-config snapshot for the whole fault-tolerant run:
    // retries and recoveries re-execute with the same dispatch.
    let kcfg = Arc::new(matopt_kernels::KernelConfig::global());
    let mut cur_graph: Arc<ComputeGraph> = Arc::clone(&graph_arc);
    let mut cur_plan: Arc<Annotation> = Arc::new(annotation.clone());
    let mut idmap: Arc<Vec<NodeId>> = Arc::new(graph.iter().map(|(id, _)| id).collect());

    let order: Vec<NodeId> = graph.iter().map(|(id, _)| id).collect();
    let consumers = graph.consumers();
    let mut values: Vec<Option<Arc<DistRelation>>> = vec![None; n];
    // Compute vertices materialized in the *current* plan epoch — the
    // crash victim pool. Reset on re-plan: earlier epochs' values are
    // pinned in driver storage. A done-set (not a topological prefix)
    // because waves complete vertices out of id order.
    let mut epoch_done: Vec<bool> = vec![false; n];
    let mut checkpoints: HashMap<usize, Arc<DistRelation>> = HashMap::new();

    let mut vertex_seconds = vec![0.0; n];
    let mut transform_seconds: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut vertex_chunks = vec![0usize; n];
    let mut vertex_resident_bytes = vec![0u64; n];
    let mut per_vertex = vec![VertexRecovery::default(); n];
    let mut faults: Vec<InjectedFault> = Vec::new();
    let (mut retries, mut recoveries, mut replans) = (0u32, 0u32, 0u32);
    let (mut recovery_seconds, mut checkpoint_seconds) = (0.0f64, 0.0f64);
    let (mut resident, mut max_concurrency) = (0u64, 1usize);
    let mut governor = GovernorStats::default();

    // Fault schedules address vertices by compute-step index in
    // topological id order (the serial executor's numbering), not by
    // completion order.
    let mut step_of = vec![usize::MAX; n];
    let mut level = vec![0usize; n];
    {
        let mut cs = 0usize;
        for (id, node) in graph.iter() {
            level[id.index()] = node
                .inputs
                .iter()
                .map(|i| level[i.index()] + 1)
                .max()
                .unwrap_or(0);
            if matches!(node.kind, NodeKind::Compute { .. }) {
                step_of[id.index()] = cs;
                cs += 1;
            }
        }
    }

    // Seed the sources.
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let rel = inputs.get(&id).ok_or_else(|| missing_input(graph, id))?;
            let rel = if rel.format == *format {
                rel.clone()
            } else {
                rel.reformat(*format)
                    .map_err(|e| ExecError::Internal(e.to_string()))?
            };
            vertex_chunks[id.index()] = rel.chunks.len();
            let bytes = rel.total_bytes() as u64;
            vertex_resident_bytes[id.index()] = bytes;
            resident += bytes;
            values[id.index()] = Some(Arc::new(rel));
        }
    }

    // Antichain waves of compute vertices, by dependency depth.
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut waves: Vec<Vec<NodeId>> = vec![Vec::new(); max_level + 1];
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Compute { .. }) {
            waves[level[id.index()]].push(id);
        }
    }

    for wave in waves.iter().filter(|w| !w.is_empty()) {
        // Vertices with faults scheduled at their step run first,
        // serially in id order: fault preambles, PRNG draws, and
        // recovery all happen in a deterministic sequence. The clean
        // remainder of the wave then runs as one concurrent batch.
        let fault_steps: HashSet<usize> = injector.pending().iter().map(|e| e.step).collect();
        let (faulted, clean): (Vec<NodeId>, Vec<NodeId>) = wave
            .iter()
            .copied()
            .partition(|v| fault_steps.contains(&step_of[v.index()]));

        for &v in &faulted {
            let step = step_of[v.index()];
            let fired = injector.take(step);
            let mut pending_transient = 0u32;
            let mut corrupt_hints: Vec<usize> = Vec::new();
            for kind in fired {
                obs.record(Subsystem::Faults, "fault_injected", || {
                    vec![
                        ("step", step.into()),
                        ("vertex", v.index().into()),
                        ("kind", kind.to_string().into()),
                    ]
                });
                faults.push(InjectedFault {
                    step,
                    vertex: v,
                    kind,
                });
                match kind {
                    FaultKind::Straggler { slowdown } => {
                        // A slow worker stretches the step; model it
                        // with a capped real delay. With hedging on,
                        // the duplicate completes at the hedge deadline
                        // (factor × the 0.5 ms unit step time) and the
                        // straggler is abandoned — the delay shrinks to
                        // the deadline when that beats waiting out the
                        // slowdown.
                        let delay_ms = (slowdown.min(20.0) * 0.5).ceil() as u64;
                        let slept_ms = match &config.hedge {
                            Some(h) => {
                                let deadline_ms = ((h.factor * 0.5).ceil() as u64).max(1);
                                if deadline_ms < delay_ms {
                                    governor.hedges_launched += 1;
                                    governor.hedges_won += 1;
                                    obs.record(Subsystem::Faults, "hedge_won", || {
                                        vec![
                                            ("vertex", v.index().into()),
                                            ("straggler_ms", (delay_ms as i64).into()),
                                            ("hedged_ms", (deadline_ms as i64).into()),
                                        ]
                                    });
                                    deadline_ms
                                } else {
                                    delay_ms
                                }
                            }
                            None => delay_ms,
                        };
                        let t0 = Instant::now();
                        std::thread::sleep(Duration::from_millis(slept_ms));
                        let dt = t0.elapsed().as_secs_f64();
                        recovery_seconds += dt;
                        per_vertex[v.index()].recovery_seconds += dt;
                    }
                    FaultKind::TransientKernelError { failures } => {
                        pending_transient += failures;
                    }
                    FaultKind::CorruptedChunk { chunk } => corrupt_hints.push(chunk),
                    // A real process kill is simulated in-process as a
                    // worker crash: same loss set, same lineage-replay
                    // recovery. The fleet harness (`matopt-worker`)
                    // maps it to an actual SIGKILL instead.
                    FaultKind::WorkerCrash | FaultKind::ProcessKill { .. } => {
                        let dt = recover_crash(
                            graph,
                            &epoch_done,
                            config.policy,
                            &mut injector,
                            &mut values,
                            &checkpoints,
                            |u, vals| {
                                run_vertex(
                                    graph, u, &cur_graph, &idmap, &cur_plan, registry, vals, &kcfg,
                                )
                            },
                            &mut per_vertex,
                            obs,
                        )?;
                        recoveries += 1;
                        per_vertex[v.index()].recoveries += 1;
                        recovery_seconds += dt;
                        per_vertex[v.index()].recovery_seconds += dt;
                    }
                    FaultKind::ResourceExhaustion { repeats } => {
                        for done in 1..=repeats {
                            retries += 1;
                            per_vertex[v.index()].retries += 1;
                            let dt =
                                backoff(&config.retry, done, &mut injector, v, "resources", obs);
                            recovery_seconds += dt;
                            per_vertex[v.index()].recovery_seconds += dt;
                            if done >= config.degrade_after {
                                // Degrade and re-plan the suffix on
                                // the shrunken cluster. Everything
                                // materialized so far (any wave) is a
                                // pinned input of the new plan.
                                let before = cluster.workers;
                                cluster = cluster.degraded();
                                let executed: Vec<NodeId> = order
                                    .iter()
                                    .copied()
                                    .filter(|u| values[u.index()].is_some())
                                    .collect();
                                let (g2, map2) =
                                    rebuild_suffix(graph, &executed, &values, &consumers);
                                let ctx2 = PlanContext::new(registry, cluster);
                                let plan2 = frontier_dp_beam(
                                    &g2,
                                    &OptContext::new(&ctx2, catalog, model),
                                    config.beam,
                                )
                                .map_err(|e| {
                                    ExecError::Internal(format!(
                                        "re-planning after degradation failed: {e}"
                                    ))
                                })?
                                .annotation;
                                cur_graph = Arc::new(g2);
                                idmap = Arc::new(map2);
                                cur_plan = Arc::new(plan2);
                                epoch_done = vec![false; n];
                                replans += 1;
                                obs.record(Subsystem::Faults, "degraded", || {
                                    vec![
                                        ("vertex", v.index().into()),
                                        ("workers_before", (before as i64).into()),
                                        ("workers_after", (cluster.workers as i64).into()),
                                    ]
                                });
                                break;
                            }
                        }
                    }
                }
            }

            // Attempt loop: transient failures and corruption
            // recomputes burn the per-vertex retry budget.
            let mut attempt = 0u32;
            let out = loop {
                if attempt > config.retry.max_retries {
                    return Err(ExecError::RetryBudgetExhausted {
                        vertex: v,
                        label: vertex_label(graph, v),
                        attempts: attempt,
                    });
                }
                if pending_transient > 0 {
                    pending_transient -= 1;
                    attempt += 1;
                    retries += 1;
                    per_vertex[v.index()].retries += 1;
                    let dt = backoff(&config.retry, attempt, &mut injector, v, "transient", obs);
                    recovery_seconds += dt;
                    per_vertex[v.index()].recovery_seconds += dt;
                    continue;
                }
                let (out, tsecs, isecs) = run_vertex(
                    graph, v, &cur_graph, &idmap, &cur_plan, registry, &values, &kcfg,
                )?;
                if let Some(hint) = corrupt_hints.pop() {
                    // Corruption "in transit": checksum the honest
                    // output, corrupt a chunk, detect the mismatch.
                    let want = relation_checksum(&out);
                    let mut received = out;
                    corrupt_chunk(&mut received, hint);
                    if relation_checksum(&received) != want {
                        attempt += 1;
                        retries += 1;
                        per_vertex[v.index()].retries += 1;
                        obs.record(Subsystem::Faults, "corruption_detected", || {
                            vec![("vertex", v.index().into()), ("chunk", hint.into())]
                        });
                        // The wasted attempt is recovery time.
                        recovery_seconds += isecs;
                        per_vertex[v.index()].recovery_seconds += isecs;
                        continue;
                    }
                    // Corruption had no representable effect (e.g.
                    // an empty chunk): the relation is intact.
                    vertex_seconds[v.index()] = isecs;
                    transform_seconds[v.index()] = tsecs;
                    break received;
                }
                vertex_seconds[v.index()] = isecs;
                transform_seconds[v.index()] = tsecs;
                break out;
            };

            // Checkpoint completed vertices *after* fault handling,
            // so a crash at this step never sees its own output
            // checkpointed.
            let out = Arc::new(out);
            if config.policy == RecoveryPolicy::Checkpoint {
                let t0 = Instant::now();
                checkpoints.insert(v.index(), Arc::clone(&out));
                checkpoint_seconds += t0.elapsed().as_secs_f64();
            }
            vertex_chunks[v.index()] = out.chunks.len();
            let bytes = out.total_bytes() as u64;
            vertex_resident_bytes[v.index()] = bytes;
            resident += bytes;
            values[v.index()] = Some(out);
            epoch_done[v.index()] = true;
        }

        if clean.is_empty() {
            continue;
        }
        // Concurrent batches over the wave's clean vertices: inputs all
        // live in earlier waves, so a snapshot of the value slots
        // (reference bumps) is a consistent read view. With a memory
        // budget, each batch is the longest prefix whose *estimated*
        // output bytes keep projected residency within budget (always
        // at least one vertex so the wave progresses) — the
        // fault-tolerant path retains every value for crash recovery,
        // so it throttles admission instead of spilling.
        let mut rest: &[NodeId] = &clean;
        while !rest.is_empty() {
            let take = match config.mem_budget {
                None => rest.len(),
                Some(budget) => {
                    let mut take = 0usize;
                    let mut projected = resident;
                    for &v in rest {
                        let cur_id = idmap[v.index()];
                        let est = cur_plan.choice(cur_id).map_or(0u64, |c| {
                            c.output_format
                                .total_bytes(&cur_graph.node(cur_id).mtype)
                                .max(0.0) as u64
                        });
                        if take > 0 && projected.saturating_add(est) > budget {
                            break;
                        }
                        projected = projected.saturating_add(est);
                        take += 1;
                    }
                    take
                }
            };
            let batch_ids = rest[..take].to_vec();
            rest = &rest[take..];
            if !rest.is_empty() {
                governor.admission_waits += 1;
                obs.record(Subsystem::Sched, "admission_wait", || {
                    vec![
                        ("ready", rest.len().into()),
                        ("resident_plus_reserved", (resident as i64).into()),
                    ]
                });
            }
            max_concurrency = max_concurrency.max(batch_ids.len());
            let snapshot: Arc<Vec<Option<Arc<DistRelation>>>> = Arc::new(values.clone());
            let batch: Arc<Vec<NodeId>> = Arc::new(batch_ids.clone());
            let (g, cg, im, pl, rg, kc) = (
                Arc::clone(&graph_arc),
                Arc::clone(&cur_graph),
                Arc::clone(&idmap),
                Arc::clone(&cur_plan),
                Arc::clone(&registry_arc),
                Arc::clone(&kcfg),
            );
            let results = Pool::global()
                .try_map(batch_ids.len(), move |i| {
                    run_vertex(&g, batch[i], &cg, &im, &pl, &rg, &snapshot, &kc)
                })
                .map_err(|detail| ExecError::KernelPanic {
                    vertex: None,
                    label: None,
                    detail,
                })?;
            for (&v, res) in batch_ids.iter().zip(results) {
                let (out, tsecs, isecs) = res?;
                vertex_seconds[v.index()] = isecs;
                transform_seconds[v.index()] = tsecs;
                let out = Arc::new(out);
                if config.policy == RecoveryPolicy::Checkpoint {
                    let t0 = Instant::now();
                    checkpoints.insert(v.index(), Arc::clone(&out));
                    checkpoint_seconds += t0.elapsed().as_secs_f64();
                }
                vertex_chunks[v.index()] = out.chunks.len();
                let bytes = out.total_bytes() as u64;
                vertex_resident_bytes[v.index()] = bytes;
                resident += bytes;
                values[v.index()] = Some(out);
                epoch_done[v.index()] = true;
            }
        }
    }

    let mut all = HashMap::new();
    for (id, _) in graph.iter() {
        all.insert(id, unshare(values[id.index()].take().expect("computed")));
    }
    let sinks = graph
        .sinks()
        .into_iter()
        .map(|s| (s, all[&s].clone()))
        .collect();
    obs.counter(Subsystem::Faults, "faults_fired", faults.len() as f64);
    obs.counter(Subsystem::Faults, "retries", f64::from(retries));
    obs.counter(Subsystem::Faults, "recoveries", f64::from(recoveries));
    if let Some(m) = obs.metrics() {
        m.add(Subsystem::Faults, "faults_injected", faults.len() as u64);
        m.add(Subsystem::Faults, "retries", u64::from(retries));
        m.add(Subsystem::Faults, "recoveries", u64::from(recoveries));
        m.add(Subsystem::Faults, "replans", u64::from(replans));
        m.add(Subsystem::Faults, "hedges_won", governor.hedges_won);
    }
    Ok(FtOutcome {
        sinks,
        values: all,
        vertex_seconds,
        transform_seconds,
        vertex_chunks,
        vertex_resident_bytes,
        parallelism: Pool::global().parallelism(),
        max_concurrency,
        peak_resident_bytes: resident,
        total_seconds: start.elapsed().as_secs_f64(),
        retries,
        recoveries,
        replans,
        faults,
        recovery_seconds,
        checkpoint_seconds,
        per_vertex,
        governor,
        pool: Pool::global().stats().since(&pool_before),
    })
}

/// Sleeps the bounded-exponential-backoff delay for retry number
/// `attempt` (1-based) with jitter from the injector's PRNG, emits the
/// retry record, and returns the seconds slept.
fn backoff(
    retry: &RetryConfig,
    attempt: u32,
    injector: &mut FaultInjector,
    vertex: NodeId,
    cause: &str,
    obs: &Obs,
) -> f64 {
    // Delay arithmetic lives in `matopt_core::BackoffPolicy` (shared
    // with the cache DirLock and the worker-fleet restart supervisor);
    // the jitter word comes from the injector's seeded PRNG so chaos
    // runs stay reproducible.
    let ms = retry.policy().delay_ms(attempt, injector.rng().next_u64());
    let delay = Duration::from_millis(ms);
    obs.record(Subsystem::Faults, "retry", || {
        vec![
            ("vertex", vertex.index().into()),
            ("attempt", attempt.into()),
            ("backoff_ms", (ms as i64).into()),
            ("cause", cause.to_string().into()),
        ]
    });
    let t0 = Instant::now();
    std::thread::sleep(delay);
    t0.elapsed().as_secs_f64()
}

/// Loses the crash's victim set and brings every lost vertex back per
/// `policy`, returning the seconds spent. `recompute` replays one
/// vertex from the current values (its inputs are guaranteed present
/// because replay runs in id — hence topological — order).
///
/// The victim pool is the *done set* of this plan epoch: with wave
/// execution the crashing vertex may be handled while lower-id vertices
/// of its wave are still unexecuted, so "materialized" is tracked
/// explicitly rather than inferred from topological position.
#[allow(clippy::too_many_arguments)]
fn recover_crash(
    graph: &ComputeGraph,
    epoch_done: &[bool],
    policy: RecoveryPolicy,
    injector: &mut FaultInjector,
    values: &mut [Option<Arc<DistRelation>>],
    checkpoints: &HashMap<usize, Arc<DistRelation>>,
    recompute: impl Fn(
        NodeId,
        &[Option<Arc<DistRelation>>],
    ) -> Result<(DistRelation, Vec<f64>, f64), ExecError>,
    per_vertex: &mut [VertexRecovery],
    obs: &Obs,
) -> Result<f64, ExecError> {
    let t0 = Instant::now();
    // Victims: this epoch's already-materialized compute vertices. The
    // in-flight vertex isn't stored yet, so it is implicitly lost too.
    let candidates: Vec<NodeId> = graph
        .iter()
        .map(|(id, _)| id)
        .filter(|u| {
            epoch_done[u.index()]
                && matches!(graph.node(*u).kind, NodeKind::Compute { .. })
                && values[u.index()].is_some()
        })
        .collect();
    let lost: Vec<NodeId> = match policy {
        // Restart-from-scratch throws the whole epoch away.
        RecoveryPolicy::Restart => candidates,
        // Otherwise one worker's memory is gone: a seeded coin flip per
        // resident intermediate.
        _ => candidates
            .into_iter()
            .filter(|_| injector.rng().next_f64() < 0.5)
            .collect(),
    };
    for u in &lost {
        values[u.index()] = None;
    }
    let mut restored = 0usize;
    let mut recomputed = 0usize;
    // Replay in id order: each lost vertex's inputs are either
    // survivors or lost-but-earlier (already brought back).
    for u in &lost {
        if policy == RecoveryPolicy::Checkpoint {
            if let Some(ck) = checkpoints.get(&u.index()) {
                values[u.index()] = Some(Arc::clone(ck));
                restored += 1;
                continue;
            }
        }
        let (out, _, _) = recompute(*u, values)?;
        values[u.index()] = Some(Arc::new(out));
        per_vertex[u.index()].recoveries += 1;
        recomputed += 1;
    }
    let dt = t0.elapsed().as_secs_f64();
    obs.record(Subsystem::Faults, "recovery", || {
        vec![
            ("policy", policy.as_str().into()),
            ("lost", lost.len().into()),
            ("restored_from_checkpoint", restored.into()),
            ("recomputed", recomputed.into()),
            ("seconds", dt.into()),
        ]
    });
    Ok(dt)
}

/// Transforms a vertex's inputs per the current plan's choice and runs
/// its implementation, returning the output, per-edge transform
/// seconds, and implementation seconds. Identity edges share the input
/// by reference (`Arc` bump) instead of deep-copying it.
#[allow(clippy::too_many_arguments)]
fn run_vertex(
    graph: &ComputeGraph,
    v: NodeId,
    cur_graph: &ComputeGraph,
    idmap: &[NodeId],
    plan: &Annotation,
    registry: &ImplRegistry,
    values: &[Option<Arc<DistRelation>>],
    kcfg: &matopt_kernels::KernelConfig,
) -> Result<(DistRelation, Vec<f64>, f64), ExecError> {
    let node = graph.node(v);
    let NodeKind::Compute { op } = &node.kind else {
        return Err(ExecError::Internal(format!(
            "vertex {v} is not a compute vertex"
        )));
    };
    let cur_id = idmap[v.index()];
    let choice = plan
        .choice(cur_id)
        .ok_or_else(|| missing_choice(graph, v))?;
    let mut transformed: Vec<Arc<DistRelation>> = Vec::with_capacity(node.inputs.len());
    let mut tsecs = Vec::with_capacity(node.inputs.len());
    for (input, t) in node.inputs.iter().zip(choice.input_transforms.iter()) {
        let src = values[input.index()].as_ref().ok_or_else(|| {
            ExecError::Internal(format!(
                "input {input} of vertex {v} unavailable during recovery"
            ))
        })?;
        let t0 = Instant::now();
        let moved = if t.kind == TransformKind::Identity {
            Arc::clone(src)
        } else {
            Arc::new(
                src.reformat(t.to)
                    .map_err(|e| ExecError::Internal(e.to_string()))?,
            )
        };
        tsecs.push(t0.elapsed().as_secs_f64());
        transformed.push(moved);
    }
    let strategy = registry.get(choice.impl_id).strategy;
    let out_type = cur_graph.node(cur_id).mtype;
    let t0 = Instant::now();
    let out = execute_impl_shared(
        strategy,
        op,
        &transformed,
        out_type,
        choice.output_format,
        kcfg,
    )
    .map_err(|e| e.at_vertex(v, &vertex_label(graph, v)))?;
    Ok((out, tsecs, t0.elapsed().as_secs_f64()))
}
