//! The wire protocol of `matopt serve`: JSON-lines requests over
//! stdin/stdout.
//!
//! A request is one JSON object per line, in one of two shapes:
//!
//! ```json
//! {"id": "r1", "workload": "ffnn-small:32"}
//! {"id": "r2", "graph": {
//!     "sources": [{"name": "A", "rows": 64, "cols": 64,
//!                  "sparsity": 0.05, "format": "csr"}],
//!     "ops": [{"op": "mm", "in": [0, 0]},
//!             {"op": "relu", "in": [1]}]}}
//! ```
//!
//! `workload` names one of the CLI's built-in experiment graphs
//! ([`workload_graph`] — the same specs `matopt plan` accepts);
//! `graph` spells out an arbitrary DAG. Op inputs index the combined
//! vertex list (sources first, then prior ops in order); the graph is
//! assembled through the expression DSL's fallible `try_apply`, so a
//! type-incorrect request comes back as an error response instead of a
//! panic. The JSON parser lives here too — the workspace builds
//! offline, so no serde; the grammar is small enough that a
//! hand-rolled recursive-descent parser is the honest dependency.
//!
//! A third shape is the *control* request, selected by a top-level
//! `"op"` key (`"id"` optional, echoed back):
//!
//! ```json
//! {"id": "s1", "op": "stats"}
//! {"id": "s2", "op": "drain"}
//! {"id": "s3", "op": "shutdown"}
//! ```
//!
//! `stats` answers with the service's live statistics instead of a
//! plan: request/hit/miss/coalesced counters, admission rejects and
//! deadline expiries, optimizer runs and seconds, cache entries /
//! bytes / epoch / evictions, cost-drift events, and `p50_us` /
//! `p95_us` / `p99_us` request-latency percentiles computed from the
//! merged hit+miss+coalesced histograms (`null` when the service has
//! no metrics registry or nothing has been timed yet). Unknown `op`
//! values are error responses; a `stats` line does not count as a plan
//! request in the counters it reports.
//!
//! `shutdown` and `drain` stop the session in an orderly way. Both
//! finish every request that arrived before them, flush any
//! `--metrics-dump` sidecar, and make the `matopt serve` process exit
//! 0. `shutdown` stops reading immediately — its `{"status": "ok",
//! "op": "shutdown"}` acknowledgement is the last line written.
//! `drain` keeps reading until EOF but answers every *later* request
//! with a `draining` error response (position in the stream decides,
//! not worker timing). Plain EOF behaves like an implicit drain:
//! requests already read are always answered, never abandoned.

use crate::ServeError;
use matopt_core::{Cluster, ComputeGraph, MatrixType, Op, PhysFormat};
use matopt_graphs::{
    ffnn_full_pass_graph_autodiff, ffnn_train_step_graph_autodiff, ffnn_training_graph,
    ffnn_w2_update_graph_autodiff, matmul_chain_graph, motivating_graph, two_level_inverse_graph,
    Expr, ExprBuilder, FfnnConfig, SizeSet,
};

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

/// A parsed JSON value (numbers are kept as `f64`, like JavaScript).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (and nothing but it).
    ///
    /// # Errors
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    ) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogates are rejected rather than paired —
                        // no request field needs astral characters.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Advance one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A parsed plan request.
#[derive(Debug)]
pub struct PlanRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: String,
    /// The compute graph to plan.
    pub graph: ComputeGraph,
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

/// Parses one request line against the current cluster (some built-in
/// workloads, e.g. `chain:*`, are sized from the cluster).
///
/// # Errors
/// [`ServeError::BadRequest`] describing the problem.
pub fn parse_request(line: &str, cluster: &Cluster) -> Result<PlanRequest, ServeError> {
    let doc = Json::parse(line).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    // String ids pass through; numeric ids (JSON-RPC style) are
    // rendered and echoed back as strings.
    let id = doc
        .get("id")
        .and_then(|v| {
            v.as_str().map(str::to_string).or_else(|| {
                v.as_f64().map(|n| {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        format!("{}", n as i64)
                    } else {
                        format!("{n}")
                    }
                })
            })
        })
        .ok_or_else(|| bad("missing string or number field \"id\""))?;
    let graph = match (doc.get("workload"), doc.get("graph")) {
        (Some(w), None) => {
            let spec = w
                .as_str()
                .ok_or_else(|| bad("\"workload\" must be a string"))?;
            workload_graph(spec, cluster).map_err(bad)?
        }
        (None, Some(g)) => graph_from_json(g)?,
        _ => return Err(bad("provide exactly one of \"workload\" or \"graph\"")),
    };
    Ok(PlanRequest { id, graph })
}

/// Builds a graph from the explicit `"graph"` request form via the
/// fallible expression DSL.
fn graph_from_json(doc: &Json) -> Result<ComputeGraph, ServeError> {
    let sources = doc
        .get("sources")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("\"graph\" needs a \"sources\" array"))?;
    let ops = doc
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("\"graph\" needs an \"ops\" array"))?;
    if sources.is_empty() {
        return Err(bad("at least one source is required"));
    }

    let builder = ExprBuilder::new();
    let mut nodes: Vec<Expr<'_>> = Vec::with_capacity(sources.len() + ops.len());
    for (i, s) in sources.iter().enumerate() {
        let rows = s
            .get("rows")
            .and_then(Json::as_u64)
            .filter(|r| *r > 0)
            .ok_or_else(|| bad(format!("source {i}: \"rows\" must be a positive integer")))?;
        let cols = s
            .get("cols")
            .and_then(Json::as_u64)
            .filter(|c| *c > 0)
            .ok_or_else(|| bad(format!("source {i}: \"cols\" must be a positive integer")))?;
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("src{i}"));
        let mtype = match s.get("sparsity").map(|v| v.as_f64()) {
            None => MatrixType::dense(rows, cols),
            Some(Some(sp)) if (0.0..=1.0).contains(&sp) => MatrixType::sparse(rows, cols, sp),
            _ => return Err(bad(format!("source {i}: \"sparsity\" must be in [0, 1]"))),
        };
        let format = match s.get("format") {
            None => default_format(&mtype),
            Some(f) => {
                let spec = f
                    .as_str()
                    .ok_or_else(|| bad(format!("source {i}: \"format\" must be a string")))?;
                parse_format(spec)
                    .ok_or_else(|| bad(format!("source {i}: unknown format \"{spec}\"")))?
            }
        };
        nodes.push(builder.source(&name, mtype, format));
    }

    for (i, o) in ops.iter().enumerate() {
        let name = o
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad(format!("op {i}: missing string field \"op\"")))?;
        let op = match name {
            "mm" | "matmul" => Op::MatMul,
            "add" => Op::Add,
            "sub" => Op::Sub,
            "hadamard" => Op::Hadamard,
            "scalarmul" => {
                let alpha = o
                    .get("alpha")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad(format!("op {i}: scalarmul needs numeric \"alpha\"")))?;
                Op::ScalarMul(alpha)
            }
            "transpose" => Op::Transpose,
            "relu" => Op::Relu,
            "relugrad" => Op::ReluGrad,
            "softmax" => Op::Softmax,
            "sigmoid" => Op::Sigmoid,
            "exp" => Op::Exp,
            "neg" => Op::Neg,
            "rowsums" => Op::RowSums,
            "colsums" => Op::ColSums,
            "inverse" => Op::Inverse,
            "biasadd" => Op::BroadcastAddRow,
            "sumall" => Op::SumAll,
            "frobeniusnorm" | "frobenius" => Op::FrobeniusNorm,
            other => return Err(bad(format!("op {i}: unknown op \"{other}\""))),
        };
        let input_idx = o
            .get("in")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad(format!("op {i}: missing \"in\" index array")))?;
        let mut inputs = Vec::with_capacity(input_idx.len());
        for idx in input_idx {
            let idx = idx
                .as_u64()
                .map(|n| n as usize)
                .filter(|n| *n < nodes.len())
                .ok_or_else(|| {
                    bad(format!(
                        "op {i}: \"in\" must index already-built vertices (0..{})",
                        nodes.len()
                    ))
                })?;
            inputs.push(nodes[idx]);
        }
        let (first, rest) = inputs
            .split_first()
            .ok_or_else(|| bad(format!("op {i}: \"in\" must not be empty")))?;
        let out = first
            .try_apply(op, rest)
            .map_err(|e| bad(format!("op {i}: {e}")))?;
        nodes.push(out);
    }
    Ok(builder.finish())
}

/// The format a source defaults to when the request doesn't pin one.
fn default_format(mtype: &MatrixType) -> PhysFormat {
    if mtype.sparsity < 1.0 {
        PhysFormat::CsrSingle
    } else {
        PhysFormat::SingleTuple
    }
}

/// Parses `single`, `rowstrip:H`, `colstrip:W`, `tile:S`, `coo`, `csr`,
/// `csrtile:S`.
pub fn parse_format(spec: &str) -> Option<PhysFormat> {
    let (head, arg) = match spec.split_once(':') {
        Some((h, a)) => (h, Some(a.parse::<u64>().ok().filter(|n| *n > 0)?)),
        None => (spec, None),
    };
    Some(match (head, arg) {
        ("single", None) => PhysFormat::SingleTuple,
        ("rowstrip", Some(h)) => PhysFormat::RowStrip { height: h },
        ("colstrip", Some(w)) => PhysFormat::ColStrip { width: w },
        ("tile", Some(s)) => PhysFormat::Tile { side: s },
        ("coo", None) => PhysFormat::Coo,
        ("csr", None) => PhysFormat::CsrSingle,
        ("csrtile", Some(s)) => PhysFormat::CsrTile { side: s },
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// Built-in workloads
// ---------------------------------------------------------------------

/// Builds one of the CLI's named experiment graphs — the same specs
/// `matopt plan <workload>` accepts (`ffnn:H`, `ffnn-full:H`,
/// `ffnn-small:H`, `ffnn-train:H`, `amazoncat:B:L[:sparse]`,
/// `chain:1|2|3`, `inverse`, `motivating`).
///
/// The FFNN backprop workloads are *autodiff-derived*: the forward
/// pass is written once and `matopt-autodiff` emits the gradient tape.
/// The hand-built builders survive only as the reference the parity
/// suite checks the derivation against, bit for bit.
///
/// # Errors
/// A usage string for unknown or malformed specs.
pub fn workload_graph(spec: &str, cluster: &Cluster) -> Result<ComputeGraph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts[0] {
        "ffnn" => {
            let hidden = parts
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("ffnn:<hidden> expects a size, e.g. ffnn:80000")?;
            Ok(
                ffnn_w2_update_graph_autodiff(FfnnConfig::simsql_experiment(hidden))
                    .map_err(|e| e.to_string())?
                    .graph,
            )
        }
        "ffnn-full" => {
            let hidden = parts
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("ffnn-full:<hidden> expects a size")?;
            Ok(
                ffnn_full_pass_graph_autodiff(FfnnConfig::simsql_experiment(hidden))
                    .map_err(|e| e.to_string())?
                    .graph,
            )
        }
        "ffnn-small" => {
            let hidden = parts
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("ffnn-small:<hidden> expects a size, e.g. ffnn-small:32")?;
            Ok(ffnn_w2_update_graph_autodiff(FfnnConfig::laptop(hidden))
                .map_err(|e| e.to_string())?
                .graph)
        }
        "ffnn-train" => {
            let hidden = parts
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("ffnn-train:<hidden> expects a size, e.g. ffnn-train:32")?;
            Ok(ffnn_training_graph(FfnnConfig::laptop(hidden))
                .map_err(|e| e.to_string())?
                .graph)
        }
        "amazoncat" => {
            let batch = parts
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or("amazoncat:<batch>:<layer>[:sparse]")?;
            let layer = parts
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or("amazoncat:<batch>:<layer>[:sparse]")?;
            let sparse = parts.get(3) == Some(&"sparse");
            Ok(
                ffnn_train_step_graph_autodiff(FfnnConfig::amazoncat(batch, layer, sparse))
                    .map_err(|e| e.to_string())?
                    .graph,
            )
        }
        "chain" => {
            let set = match parts.get(1) {
                Some(&"1") => SizeSet::Set1,
                Some(&"2") => SizeSet::Set2,
                Some(&"3") => SizeSet::Set3,
                _ => return Err("chain:<1|2|3>".into()),
            };
            Ok(matmul_chain_graph(set, cluster)
                .map_err(|e| e.to_string())?
                .graph)
        }
        "inverse" => Ok(two_level_inverse_graph(10_000, 2_000)
            .map_err(|e| e.to_string())?
            .graph),
        "motivating" => Ok(motivating_graph().map_err(|e| e.to_string())?.graph),
        other => Err(format!(
            "unknown workload {other} (expected ffnn:H, ffnn-full:H, ffnn-small:H, \
             ffnn-train:H, amazoncat:B:L[:sparse], chain:1|2|3, inverse, motivating)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_the_request_grammar() {
        let doc = Json::parse(
            r#"{"id": "r1", "graph": {"sources": [{"rows": 4, "cols": 4}],
                "ops": [{"op": "mm", "in": [0, 0]}]}, "x": [true, null, -1.5e2]}"#,
        )
        .expect("parses");
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(
            doc.get("x").and_then(Json::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert_eq!(
            Json::parse(r#""aA\n""#).expect("escapes"),
            Json::Str("aA\n".into())
        );
    }

    #[test]
    fn explicit_graph_requests_build() {
        let line = r#"{"id": "q", "graph": {
            "sources": [{"name": "W", "rows": 8, "cols": 8},
                        {"name": "X", "rows": 8, "cols": 4, "sparsity": 0.1,
                         "format": "csr"}],
            "ops": [{"op": "mm", "in": [0, 1]},
                    {"op": "relu", "in": [2]},
                    {"op": "scalarmul", "in": [3], "alpha": 0.5}]}}"#;
        let req = parse_request(line, &Cluster::simsql_like(4)).expect("parses");
        assert_eq!(req.id, "q");
        assert_eq!(req.graph.len(), 5);
    }

    #[test]
    fn type_errors_become_bad_request_not_panic() {
        let line = r#"{"id": "q", "graph": {
            "sources": [{"rows": 8, "cols": 4}],
            "ops": [{"op": "mm", "in": [0, 0]}]}}"#;
        let err = parse_request(line, &Cluster::simsql_like(4)).expect_err("4 != 8");
        assert!(matches!(err, ServeError::BadRequest(_)), "got {err:?}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let cluster = Cluster::simsql_like(4);
        for line in [
            "not json",
            r#"{"workload": "motivating"}"#,
            r#"{"id": "a"}"#,
            r#"{"id": "a", "workload": "nope"}"#,
            r#"{"id": "a", "workload": "x", "graph": {}}"#,
            r#"{"id": "a", "graph": {"sources": [], "ops": []}}"#,
            r#"{"id": "a", "graph": {"sources": [{"rows": 4, "cols": 4}],
                "ops": [{"op": "mm", "in": [0, 9]}]}}"#,
        ] {
            assert!(
                matches!(
                    parse_request(line, &cluster),
                    Err(ServeError::BadRequest(_))
                ),
                "accepted: {line}"
            );
        }
    }

    #[test]
    fn workload_specs_match_the_cli() {
        let cluster = Cluster::simsql_like(4);
        for spec in [
            "ffnn-small:16",
            "ffnn-train:8",
            "chain:1",
            "motivating",
            "inverse",
        ] {
            assert!(workload_graph(spec, &cluster).is_ok(), "{spec} failed");
        }
        assert!(workload_graph("ffnn", &cluster).is_err());
        assert!(workload_graph("ffnn-train", &cluster).is_err());
    }

    #[test]
    fn format_specs_round_trip() {
        assert_eq!(parse_format("single"), Some(PhysFormat::SingleTuple));
        assert_eq!(
            parse_format("tile:500"),
            Some(PhysFormat::Tile { side: 500 })
        );
        assert_eq!(parse_format("csrtile:0"), None);
        assert_eq!(parse_format("tile"), None);
        assert_eq!(parse_format("bogus"), None);
    }

    #[test]
    fn escaping_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"s\": \"{}\"}}", json_escape(nasty));
        let parsed = Json::parse(&doc).expect("parses");
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some(nasty));
    }
}
