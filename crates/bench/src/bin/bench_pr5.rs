//! Plan-serving report: cache hit rate, request latency, and optimizer
//! time saved when concurrent clients hammer the plan service with a
//! repeating workload mix.
//!
//! ```sh
//! cargo run --release -p matopt-bench --bin bench_pr5            # table
//! cargo run --release -p matopt-bench --bin bench_pr5 -- --json  # + BENCH_PR5.json
//! ```
//!
//! Eight client threads issue 1024 plan requests spread round-robin
//! over 32 distinct laptop-scale FFNN workloads (distinct hidden-layer
//! widths, so distinct fingerprints). The same request stream runs
//! twice: once against a cache-enabled service and once against a
//! cache-disabled one where every request pays the optimizer. The
//! report asserts the serving contract:
//!
//! * zero errored responses and a >= 90% hit rate under concurrency
//!   (only the first request per workload can miss; coalesced requests
//!   share the leader's run);
//! * every cached response carries bit-identical plan cost to the
//!   uncached response for the same workload;
//! * total optimizer time drops >= 10x versus the uncached service;
//! * executing a cached plan produces bit-identical sinks to executing
//!   the uncached plan on the same inputs.
//!
//! `MATOPT_BENCH_QUICK=1` shrinks the stream to 256 requests over 8
//! workloads (same client count, same assertions) for CI smoke runs.

use matopt_bench::Json;
use matopt_core::{Cluster, ComputeGraph, FormatCatalog, ImplRegistry, NodeId, NodeKind};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::DistRelation;
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_serve::{PlanService, PlanSource, ServeConfig};
use std::collections::HashMap;
use std::time::Instant;

const CLIENTS: usize = 8;

fn service(cache_enabled: bool) -> PlanService {
    PlanService::new(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        Cluster::simsql_like(4),
        Box::new(AnalyticalCostModel),
        ServeConfig {
            cache_enabled,
            ..ServeConfig::default()
        },
    )
}

/// The 32 distinct workloads: laptop-scale FFNN weight updates whose
/// hidden widths differ, so their fingerprints differ.
fn workloads(n: usize) -> Vec<ComputeGraph> {
    (0..n)
        .map(|i| {
            ffnn_w2_update_graph(FfnnConfig::laptop(8 + 2 * i as u64))
                .expect("well-typed")
                .graph
        })
        .collect()
}

/// One answered request. Workloads and fingerprints are in bijection
/// here (distinct matrix dimensions), so the cost-identity check keys
/// by workload index — the uncached service skips fingerprinting.
struct Sample {
    workload: usize,
    cost: f64,
    source: PlanSource,
    latency_us: u64,
}

struct Phase {
    samples: Vec<Sample>,
    errors: u64,
    wall_secs: f64,
}

impl Phase {
    fn count(&self, source: PlanSource) -> u64 {
        self.samples.iter().filter(|s| s.source == source).count() as u64
    }

    fn hit_rate(&self) -> f64 {
        // Coalesced requests rode a leader's single optimizer run: for
        // the "did the service avoid re-optimizing" question they count
        // with hits.
        (self.count(PlanSource::Hit) + self.count(PlanSource::Coalesced)) as f64
            / self.samples.len() as f64
    }

    fn latency_us(&self, quantile: f64) -> u64 {
        let mut v: Vec<u64> = self.samples.iter().map(|s| s.latency_us).collect();
        v.sort_unstable();
        v[((v.len() - 1) as f64 * quantile).round() as usize]
    }

    fn throughput_rps(&self) -> f64 {
        self.samples.len() as f64 / self.wall_secs
    }
}

/// Replays the request stream (`total` requests round-robin over
/// `graphs`) from [`CLIENTS`] threads against `service`.
fn run_phase(service: &PlanService, graphs: &[ComputeGraph], total: usize) -> Phase {
    let t0 = Instant::now();
    let mut samples = Vec::with_capacity(total);
    let mut errors = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut errs = 0u64;
                    let mut i = client;
                    while i < total {
                        let workload = i % graphs.len();
                        let t = Instant::now();
                        match service.plan(&graphs[workload]) {
                            Ok(p) => out.push(Sample {
                                workload,
                                cost: p.plan.cost,
                                source: p.source,
                                latency_us: t.elapsed().as_micros() as u64,
                            }),
                            Err(_) => errs += 1,
                        }
                        i += CLIENTS;
                    }
                    (out, errs)
                })
            })
            .collect();
        for h in handles {
            let (out, errs) = h.join().expect("client thread");
            samples.extend(out);
            errors += errs;
        }
    });
    Phase {
        samples,
        errors,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

fn make_inputs(graph: &ComputeGraph, seed: u64) -> HashMap<NodeId, DistRelation> {
    let mut rng = seeded_rng(seed);
    let mut rels = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    rels
}

/// Executes the same workload through both services and compares every
/// sink bit for bit.
fn assert_execution_bit_exact(cached: &PlanService, uncached: &PlanService, graph: &ComputeGraph) {
    let inputs = make_inputs(graph, 0xC0FFEE);
    let via_cache = cached.plan(graph).expect("cached plan");
    let via_opt = uncached.plan(graph).expect("uncached plan");
    assert_eq!(via_cache.source, PlanSource::Hit, "stream warmed this fp");
    let a = cached
        .execute(graph, &via_cache, &inputs)
        .expect("cached execution");
    let b = uncached
        .execute(graph, &via_opt, &inputs)
        .expect("uncached execution");
    assert_eq!(a.sinks.len(), b.sinks.len());
    for (sink, rel) in &a.sinks {
        assert_eq!(
            b.sinks[sink].to_dense().data(),
            rel.to_dense().data(),
            "sink {sink} differs between cached and uncached plans"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.first().map(String::as_str) {
        Some("--json") => Some(
            args.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_PR5.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: bench_pr5 [--json [PATH]]");
            std::process::exit(2);
        }
        None => None,
    };
    let quick = std::env::var("MATOPT_BENCH_QUICK").is_ok();
    let (n_workloads, total) = if quick { (8, 256) } else { (32, 1024) };
    let graphs = workloads(n_workloads);

    println!(
        "== Plan serving: {total} requests over {n_workloads} workloads, {CLIENTS} clients =="
    );
    let uncached = service(false);
    let u = run_phase(&uncached, &graphs, total);
    let cached = service(true);
    let c = run_phase(&cached, &graphs, total);
    let (cs, us) = (cached.stats(), uncached.stats());

    assert_eq!(c.errors + u.errors, 0, "no request may error");
    assert_eq!(c.samples.len() + u.samples.len(), 2 * total);
    let hit_rate = c.hit_rate();
    assert!(
        hit_rate >= 0.90,
        "hit rate {hit_rate:.3} under concurrency must reach 0.90"
    );

    // Identical plan costs per workload (= per fingerprint): the cache
    // must never serve a plan that differs from what the optimizer
    // would produce.
    let mut reference: HashMap<usize, f64> = HashMap::new();
    for s in &u.samples {
        let prev = reference.insert(s.workload, s.cost);
        assert!(
            prev.is_none_or(|p| p == s.cost),
            "uncached optimizer must be deterministic per workload"
        );
    }
    for s in &c.samples {
        assert_eq!(
            reference[&s.workload], s.cost,
            "cached cost differs from the optimizer's for workload {}",
            s.workload
        );
    }

    let speedup = us.optimize_seconds / cs.optimize_seconds;
    assert!(
        speedup >= 10.0,
        "caching must cut total optimizer time >= 10x (uncached {:.3}s / cached {:.3}s = {speedup:.1}x)",
        us.optimize_seconds,
        cs.optimize_seconds
    );

    // Cached and uncached plans execute to bit-identical results.
    for graph in graphs.iter().take(3) {
        assert_execution_bit_exact(&cached, &uncached, graph);
    }

    for (name, phase, stats) in [("uncached", &u, &us), ("cached", &c, &cs)] {
        println!(
            "{name:>9}  hit rate {:>5.1}%  p50 {:>6} us  p99 {:>6} us  {:>7.0} req/s  \
             {} optimizer runs totalling {:.3}s",
            phase.hit_rate() * 100.0,
            phase.latency_us(0.50),
            phase.latency_us(0.99),
            phase.throughput_rps(),
            stats.optimize_runs,
            stats.optimize_seconds,
        );
    }
    println!(
        "   serving  {} hits, {} coalesced, {} misses; optimizer time cut {speedup:.1}x; \
         execution bit-exact on {} workloads",
        c.count(PlanSource::Hit),
        c.count(PlanSource::Coalesced),
        c.count(PlanSource::Miss),
        3.min(n_workloads)
    );

    if let Some(path) = json_path {
        let phase_json = |phase: &Phase, stats: &matopt_serve::ServeStats| {
            Json::obj([
                ("requests", Json::Int(phase.samples.len() as i64)),
                ("errors", Json::Int(phase.errors as i64)),
                ("hit_rate", Json::Num(phase.hit_rate())),
                ("p50_latency_us", Json::Int(phase.latency_us(0.50) as i64)),
                ("p99_latency_us", Json::Int(phase.latency_us(0.99) as i64)),
                ("throughput_rps", Json::Num(phase.throughput_rps())),
                ("optimizer_runs", Json::Int(stats.optimize_runs as i64)),
                ("optimizer_seconds", Json::Num(stats.optimize_seconds)),
            ])
        };
        let report = Json::obj([
            ("pr", Json::Int(5)),
            ("workloads", Json::Int(n_workloads as i64)),
            ("clients", Json::Int(CLIENTS as i64)),
            ("requests_per_phase", Json::Int(total as i64)),
            ("uncached", phase_json(&u, &us)),
            ("cached", phase_json(&c, &cs)),
            ("optimizer_time_speedup", Json::Num(speedup)),
            ("plan_costs_identical", Json::Bool(true)),
            ("execution_bit_exact", Json::Bool(true)),
        ]);
        std::fs::write(&path, report.pretty()).expect("write report");
        println!("\nwrote {path}");
    }
}
