//! Regenerates fig04 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig04(&Env::new()));
}
