//! Fingerprint correctness: isomorphism stability under random vertex
//! relabelings, and sensitivity to everything that *should* change the
//! key (statistics past a bucket boundary, cluster reconfiguration,
//! catalog changes).

use matopt_core::{Cluster, ComputeGraph, FormatCatalog, MatrixType, Op, PhysFormat};
use matopt_kernels::seeded_rng;
use matopt_serve::{fingerprint, Fingerprint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

const SIDE: u64 = 32;

/// A graph recipe that can be replayed in any topological order:
/// square-matrix sources plus ops whose operands index earlier recipe
/// entries (sources first, then ops in recipe order).
#[derive(Debug, Clone)]
struct Recipe {
    source_sparsity: Vec<f64>,
    ops: Vec<(Op, Vec<usize>)>,
}

/// Sparsities chosen to spread across several buckets.
const SPARSITIES: [f64; 5] = [1.0, 0.5, 0.11, 0.04, 0.004];

fn random_recipe(rng: &mut StdRng) -> Recipe {
    let n_sources = rng.random_range(1..4usize);
    let n_ops = rng.random_range(1..8usize);
    let source_sparsity = (0..n_sources)
        .map(|_| SPARSITIES[rng.random_range(0..SPARSITIES.len())])
        .collect();
    let mut ops = Vec::with_capacity(n_ops);
    for i in 0..n_ops {
        let avail = n_sources + i;
        let pick = |rng: &mut StdRng| rng.random_range(0..avail);
        // Square matrices throughout, so every one of these
        // type-checks against any operands.
        let (op, inputs) = match rng.random_range(0..6u32) {
            0 => (Op::MatMul, vec![pick(rng), pick(rng)]),
            1 => (Op::Add, vec![pick(rng), pick(rng)]),
            2 => (Op::Hadamard, vec![pick(rng), pick(rng)]),
            3 => (Op::Transpose, vec![pick(rng)]),
            4 => (Op::ScalarMul(1.5), vec![pick(rng)]),
            _ => (Op::Relu, vec![pick(rng)]),
        };
        ops.push((op, inputs));
    }
    Recipe {
        source_sparsity,
        ops,
    }
}

/// The format a recipe source uses (varied by sparsity so format words
/// participate too).
fn source_format(sparsity: f64) -> PhysFormat {
    if sparsity < 0.1 {
        PhysFormat::CsrSingle
    } else {
        PhysFormat::Tile { side: 8 }
    }
}

/// Builds the recipe's graph adding vertices in `order` (a permutation
/// of recipe indices that must be topological w.r.t. op operands).
fn build_in_order(recipe: &Recipe, order: &[usize]) -> ComputeGraph {
    let n_sources = recipe.source_sparsity.len();
    let mut g = ComputeGraph::new();
    let mut placed: Vec<Option<matopt_core::NodeId>> = vec![None; n_sources + recipe.ops.len()];
    for &item in order {
        if item < n_sources {
            let s = recipe.source_sparsity[item];
            placed[item] = Some(g.add_source(MatrixType::sparse(SIDE, SIDE, s), source_format(s)));
        } else {
            let (op, inputs) = &recipe.ops[item - n_sources];
            let ids: Vec<_> = inputs
                .iter()
                .map(|i| placed[*i].expect("order is topological"))
                .collect();
            placed[item] = Some(g.add_op(*op, &ids).expect("square ops type-check"));
        }
    }
    g
}

/// A uniformly random topological order of the recipe's DAG.
fn random_topo_order(recipe: &Recipe, rng: &mut StdRng) -> Vec<usize> {
    let n_sources = recipe.source_sparsity.len();
    let total = n_sources + recipe.ops.len();
    let mut placed = vec![false; total];
    let mut order = Vec::with_capacity(total);
    while order.len() < total {
        let ready: Vec<usize> = (0..total)
            .filter(|&i| {
                !placed[i]
                    && (i < n_sources || recipe.ops[i - n_sources].1.iter().all(|d| placed[*d]))
            })
            .collect();
        let next = ready[rng.random_range(0..ready.len())];
        placed[next] = true;
        order.push(next);
    }
    order
}

fn fp(g: &ComputeGraph) -> Fingerprint {
    fingerprint(g, &Cluster::simsql_like(4), &FormatCatalog::paper_default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// THE cache-correctness property: however the same DAG is built
    /// — any vertex insertion order — its fingerprint is identical, so
    /// relabeled-but-equal `ExprBuilder` graphs hit the same entry.
    #[test]
    fn random_relabelings_keep_the_fingerprint(seed in 0u64..100_000) {
        let mut rng = seeded_rng(seed);
        let recipe = random_recipe(&mut rng);
        let total = recipe.source_sparsity.len() + recipe.ops.len();
        let canonical = build_in_order(&recipe, &(0..total).collect::<Vec<_>>());
        let base = fp(&canonical);
        for _ in 0..3 {
            let order = random_topo_order(&recipe, &mut rng);
            let relabeled = build_in_order(&recipe, &order);
            prop_assert_eq!(
                fp(&relabeled), base,
                "order {:?} of {:?} changed the fingerprint", order, recipe
            );
        }
    }

    /// Structurally different recipes (almost always) get different
    /// fingerprints — the hash actually depends on the graph.
    #[test]
    fn different_recipes_differ(seed in 0u64..100_000) {
        let mut rng = seeded_rng(seed);
        let a = random_recipe(&mut rng);
        let b = random_recipe(&mut rng);
        let total_a = a.source_sparsity.len() + a.ops.len();
        let total_b = b.source_sparsity.len() + b.ops.len();
        let ga = build_in_order(&a, &(0..total_a).collect::<Vec<_>>());
        let gb = build_in_order(&b, &(0..total_b).collect::<Vec<_>>());
        // Identical recipes can repeat across seeds; only compare when
        // the specs differ.
        if format!("{a:?}") != format!("{b:?}") {
            prop_assert_ne!(fp(&ga), fp(&gb), "{:?} vs {:?} collided", a, b);
        }
    }
}

/// A graph whose intermediate sparsities track the source's exactly
/// (transpose and scalar-mul both preserve sparsity), so bucket
/// behaviour at the source is bucket behaviour everywhere.
fn stat_graph(sparsity: f64) -> ComputeGraph {
    let mut g = ComputeGraph::new();
    let a = g.add_source(
        MatrixType::sparse(SIDE, SIDE, sparsity),
        PhysFormat::CsrSingle,
    );
    let t = g.add_op(Op::Transpose, &[a]).unwrap();
    g.add_op(Op::ScalarMul(2.0), &[t]).unwrap();
    g
}

#[test]
fn stats_within_a_bucket_share_the_fingerprint() {
    // 0.104 and 0.11 land in the same eighth-decade bucket: the cached
    // plan keeps serving as statistics drift a little.
    assert_eq!(fp(&stat_graph(0.104)), fp(&stat_graph(0.11)));
}

#[test]
fn stats_past_a_bucket_boundary_change_the_fingerprint() {
    // 0.09 is across the boundary from 0.11 (~1.33× band): past the
    // cost model's sensitivity, the key must change.
    assert_ne!(fp(&stat_graph(0.09)), fp(&stat_graph(0.11)));
    // And the dense endpoint is its own key.
    assert_ne!(fp(&stat_graph(1.0)), fp(&stat_graph(0.999)));
}

#[test]
fn cluster_perturbations_change_the_fingerprint() {
    let g = stat_graph(0.05);
    let cat = FormatCatalog::paper_default();
    let base = fingerprint(&g, &Cluster::simsql_like(4), &cat);
    assert_ne!(base, fingerprint(&g, &Cluster::simsql_like(5), &cat));
    assert_ne!(
        base,
        fingerprint(&g, &Cluster::simsql_like(4).degraded(), &cat)
    );
    let mut slower = Cluster::simsql_like(4);
    slower.net_bytes_per_sec *= 0.5;
    assert_ne!(base, fingerprint(&g, &slower, &cat));
}

#[test]
fn catalog_perturbations_change_the_fingerprint() {
    let g = stat_graph(0.05);
    let cluster = Cluster::simsql_like(4);
    let full = FormatCatalog::paper_default();
    let dense = full.dense_only();
    assert_ne!(
        fingerprint(&g, &cluster, &full),
        fingerprint(&g, &cluster, &dense)
    );
}
