//! The six-matrix multiplication chain of §8.2 (Figures 4 and 10) and
//! the motivating example of §2.1 (Figure 1).

use matopt_core::{Cluster, ComputeGraph, MatrixType, NodeId, Op, PhysFormat, TypeError};

/// The three input-size combinations of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeSet {
    /// A 10K×30K, B 30K×50K, C 50K×1, D 1×50K, E 50K×10K, F 50K×10K.
    Set1,
    /// A 50K×1, B 1×100K, C 100K×30K, D 30K×100K, E 100K×50K, F 100K×30K.
    Set2,
    /// All six matrices 50K×50K.
    Set3,
}

impl SizeSet {
    /// The `(rows, cols)` of inputs A–F.
    pub fn dims(&self) -> [(u64, u64); 6] {
        match self {
            SizeSet::Set1 => [
                (10_000, 30_000),
                (30_000, 50_000),
                (50_000, 1),
                (1, 50_000),
                (50_000, 10_000),
                (50_000, 10_000),
            ],
            SizeSet::Set2 => [
                (50_000, 1),
                (1, 100_000),
                (100_000, 30_000),
                (30_000, 100_000),
                (100_000, 50_000),
                (100_000, 30_000),
            ],
            SizeSet::Set3 => [(50_000, 50_000); 6],
        }
    }
}

/// Picks a sensible given storage for an input matrix: whole when it
/// fits in one tuple, 1000-tiles otherwise.
pub fn default_source_format(m: &MatrixType, cluster: &Cluster) -> PhysFormat {
    if PhysFormat::SingleTuple.feasible(m, cluster) {
        PhysFormat::SingleTuple
    } else {
        PhysFormat::Tile { side: 1000 }
    }
}

/// Handles to a built multiplication-chain graph.
#[derive(Debug, Clone)]
pub struct ChainGraph {
    /// The graph.
    pub graph: ComputeGraph,
    /// Input vertices A–F.
    pub inputs: [NodeId; 6],
    /// The output vertex `O`.
    pub output: NodeId,
}

/// Builds the §8.2 chain:
///
/// ```text
/// T1 = A × B;  T2 = C × D
/// O  = ((T1 × E) × (T1 × T2)) × (T2 × F)
/// ```
///
/// `T1` and `T2` each feed two consumers, so the graph is a DAG with
/// sharing (the frontier algorithm is required).
///
/// # Errors
/// Propagates [`TypeError`] on a non-multiplicable size set.
pub fn matmul_chain_graph(set: SizeSet, cluster: &Cluster) -> Result<ChainGraph, TypeError> {
    let mut g = ComputeGraph::new();
    let names = ["A", "B", "C", "D", "E", "F"];
    let mut inputs = [NodeId(0); 6];
    for (i, ((r, c), name)) in set.dims().iter().zip(names.iter()).enumerate() {
        let mt = MatrixType::dense(*r, *c);
        inputs[i] = g.add_source_named(mt, default_source_format(&mt, cluster), Some(name));
    }
    let [a, b, c, d, e, f] = inputs;
    let t1 = g.add_op_named(Op::MatMul, &[a, b], Some("T1"))?;
    let t2 = g.add_op_named(Op::MatMul, &[c, d], Some("T2"))?;
    let t1e = g.add_op(Op::MatMul, &[t1, e])?;
    let t1t2 = g.add_op(Op::MatMul, &[t1, t2])?;
    let left = g.add_op(Op::MatMul, &[t1e, t1t2])?;
    let t2f = g.add_op(Op::MatMul, &[t2, f])?;
    let output = g.add_op_named(Op::MatMul, &[left, t2f], Some("O"))?;
    Ok(ChainGraph {
        graph: g,
        inputs,
        output,
    })
}

/// Handles to the §2.1 motivating example.
#[derive(Debug, Clone)]
pub struct MotivatingGraph {
    /// The graph.
    pub graph: ComputeGraph,
    /// matA (100 × 10⁴, ten row-strips).
    pub mat_a: NodeId,
    /// matB (10⁴ × 100, ten column-strips).
    pub mat_b: NodeId,
    /// matC (100 × 10⁶, one hundred column-strips).
    pub mat_c: NodeId,
    /// matAB.
    pub mat_ab: NodeId,
    /// The output matABC.
    pub mat_abc: NodeId,
}

/// Builds the §2.1 example: `matA × matB × matC` with the paper's
/// storage — matA in ten row-strips, matB in ten column-strips, matC in
/// one hundred column-strips.
///
/// # Errors
/// Propagates [`TypeError`].
pub fn motivating_graph() -> Result<MotivatingGraph, TypeError> {
    let mut g = ComputeGraph::new();
    let mat_a = g.add_source_named(
        MatrixType::dense(100, 10_000),
        PhysFormat::RowStrip { height: 10 },
        Some("matA"),
    );
    let mat_b = g.add_source_named(
        MatrixType::dense(10_000, 100),
        PhysFormat::ColStrip { width: 10 },
        Some("matB"),
    );
    let mat_c = g.add_source_named(
        MatrixType::dense(100, 1_000_000),
        PhysFormat::ColStrip { width: 10_000 },
        Some("matC"),
    );
    let mat_ab = g.add_op_named(Op::MatMul, &[mat_a, mat_b], Some("matAB"))?;
    let mat_abc = g.add_op_named(Op::MatMul, &[mat_ab, mat_c], Some("matABC"))?;
    Ok(MotivatingGraph {
        graph: g,
        mat_a,
        mat_b,
        mat_c,
        mat_ab,
        mat_abc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_size_sets_type_check() {
        let cl = Cluster::simsql_like(10);
        for set in [SizeSet::Set1, SizeSet::Set2, SizeSet::Set3] {
            let c = matmul_chain_graph(set, &cl).unwrap();
            assert!(!c.graph.is_tree_shaped(), "T1/T2 sharing expected");
            assert_eq!(c.graph.sinks(), vec![c.output]);
        }
    }

    #[test]
    fn set1_output_shape() {
        let cl = Cluster::simsql_like(10);
        let c = matmul_chain_graph(SizeSet::Set1, &cl).unwrap();
        let o = c.graph.node(c.output).mtype;
        assert_eq!((o.rows, o.cols), (10_000, 10_000));
    }

    #[test]
    fn big_inputs_default_to_tiles() {
        let cl = Cluster::simsql_like(10);
        // 30K × 50K doubles = 12 GB > the 8 GB tuple cap.
        let m = MatrixType::dense(30_000, 50_000);
        assert_eq!(
            default_source_format(&m, &cl),
            PhysFormat::Tile { side: 1000 }
        );
        let small = MatrixType::dense(10_000, 10_000);
        assert_eq!(default_source_format(&small, &cl), PhysFormat::SingleTuple);
    }

    #[test]
    fn motivating_example_matches_paper_storage() {
        let m = motivating_graph().unwrap();
        assert_eq!(
            PhysFormat::RowStrip { height: 10 }.num_tuples(&m.graph.node(m.mat_a).mtype),
            10.0
        );
        assert_eq!(
            PhysFormat::ColStrip { width: 10_000 }.num_tuples(&m.graph.node(m.mat_c).mtype),
            100.0
        );
        let ab = m.graph.node(m.mat_ab).mtype;
        assert_eq!((ab.rows, ab.cols), (100, 100));
    }
}
