//! The aggregated-metrics half of observability: a process-wide
//! [`MetricsRegistry`] of monotonic counters, gauges, and mergeable
//! log-linear histograms, labeled by [`Subsystem`].
//!
//! The event stream in the crate root answers "what happened, in
//! order"; this module answers "how much, how fast, right now" for a
//! long-lived process like `matopt serve`, where buffering every event
//! forever is not an option but latency percentiles and cache ratios
//! must be readable at any time.
//!
//! Design:
//!
//! * **Wait-free writers.** Once a call site holds a metric handle
//!   ([`Counter`], [`Gauge`], [`Histogram`] — all `Arc`-shared),
//!   updating it is a single relaxed atomic RMW; no lock is taken and
//!   no writer ever waits on a reader or another writer. Counters are
//!   sharded over cache-line-padded cells indexed by thread so hot
//!   counters shared by many workers do not ping-pong one cache line.
//! * **Snapshot without pausing.** [`MetricsRegistry::snapshot`] reads
//!   every atomic with relaxed loads while writers keep writing; the
//!   result is a point-in-time-ish view that is exact for quiescent
//!   metrics and never blocks the hot path.
//! * **Mergeable histograms.** [`Histogram`] buckets are log-linear:
//!   base-2 octaves split into 16 linear sub-buckets (relative error
//!   ≤ 1/16 per recorded value), the same shape for every histogram,
//!   so two snapshots merge by elementwise addition —
//!   [`HistogramSnapshot::merge`] is associative and commutative,
//!   which is what lets per-shard or per-process latency histograms
//!   roll up into one SLO view.
//! * **Exposition.** [`MetricsSnapshot::prometheus`] renders the
//!   Prometheus text format; [`MetricsSnapshot::to_json`] renders a
//!   JSON document through the in-crate escaping helpers (validated
//!   by the exporter tests).
//!
//! Registration (`registry.counter(...)` etc.) takes a short
//! read-write lock and is *not* wait-free — hot call sites should
//! resolve their handles once and cache the `Arc`s; the convenience
//! methods ([`MetricsRegistry::add`], [`MetricsRegistry::observe`],
//! [`MetricsRegistry::set_gauge`]) re-resolve per call and are meant
//! for cold paths.

use crate::json::{escape_into, number_into};
use crate::Subsystem;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Sub-bucket resolution: each base-2 octave is split into
/// 2^`SUB_BITS` = 16 linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 16 exact buckets for values < 16, then 16
/// sub-buckets for each of the 60 remaining octaves of a `u64`.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Cells per sharded counter; writers pick a cell by thread id.
const COUNTER_SHARDS: usize = 8;

/// An `AtomicU64` padded to its own cache line so sharded cells do not
/// false-share.
#[derive(Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A monotonic counter. Increments are relaxed atomic adds spread over
/// per-thread shards; [`Counter::value`] sums the shards.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Adds `n` to the counter (wait-free).
    pub fn add(&self, n: u64) {
        let cell = crate::thread_id() as usize % COUNTER_SHARDS;
        self.cells[cell].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one (wait-free).
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across every shard.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A sampled instantaneous value, stored as an `f64` bit pattern in one
/// atomic (last writer wins).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge (wait-free).
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The most recently set value (0.0 before any set).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The bucket index a value lands in: exact below 16, then log-linear
/// (octave via leading zeros, 16 linear sub-buckets per octave).
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // e >= SUB_BITS
    let sub = (v >> (e - SUB_BITS)) - SUB;
    (SUB + u64::from(e - SUB_BITS) * SUB + sub) as usize
}

/// Inclusive lower bound of bucket `i` (the smallest value it holds).
fn bucket_lower_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let k = i - SUB;
    let e = SUB_BITS + (k / SUB) as u32;
    let sub = k % SUB;
    (SUB + sub) << (e - SUB_BITS)
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(i + 1) - 1
    }
}

/// A mergeable log-linear histogram over `u64` samples (typically
/// microseconds). Base-2 octaves with 16 linear sub-buckets bound the
/// per-sample relative error at 1/16; every histogram shares the same
/// bucket layout, so snapshots merge by addition.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample (wait-free: three relaxed atomic adds).
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets, taken without pausing
    /// writers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]: quantile queries and
/// associative merging happen here, off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`: the inclusive upper bound of the
    /// bucket holding the rank-`ceil(q * count)` sample (an
    /// overestimate by at most 1/16 relative). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Adds `other`'s buckets into `self`. Elementwise addition over a
    /// shared bucket layout, so the operation is associative and
    /// commutative (property-tested) — per-shard histograms roll up
    /// into one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_lower_bound(i), bucket_upper_bound(i), *c))
            .collect()
    }
}

/// A handle to one registered metric.
#[derive(Clone)]
enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl MetricHandle {
    fn kind(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

/// The live registry: metric name → shared handle, labeled by
/// [`Subsystem`]. See the module docs for the concurrency contract.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: RwLock<HashMap<(Subsystem, String), MetricHandle>>,
}

impl MetricsRegistry {
    /// An empty registry, ready to share behind an `Arc`.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn resolve<T>(
        &self,
        subsystem: Subsystem,
        name: &str,
        pick: impl Fn(&MetricHandle) -> Option<Arc<T>>,
        make: impl FnOnce() -> MetricHandle,
        want: &'static str,
    ) -> Arc<T> {
        if let Some(handle) = self
            .metrics
            .read()
            .expect("registry")
            .get(&(subsystem, name.to_string()))
        {
            return pick(handle).unwrap_or_else(|| {
                panic!(
                    "metric {}/{name} is a {}, requested as {want}",
                    subsystem.as_str(),
                    handle.kind()
                )
            });
        }
        let mut map = self.metrics.write().expect("registry");
        let handle = map
            .entry((subsystem, name.to_string()))
            .or_insert_with(make)
            .clone();
        pick(&handle).unwrap_or_else(|| {
            panic!(
                "metric {}/{name} is a {}, requested as {want}",
                subsystem.as_str(),
                handle.kind()
            )
        })
    }

    /// The counter `name` under `subsystem`, created on first use.
    /// Cache the returned `Arc` on hot paths.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, subsystem: Subsystem, name: &str) -> Arc<Counter> {
        self.resolve(
            subsystem,
            name,
            |h| match h {
                MetricHandle::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || MetricHandle::Counter(Arc::new(Counter::default())),
            "counter",
        )
    }

    /// The gauge `name` under `subsystem`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, subsystem: Subsystem, name: &str) -> Arc<Gauge> {
        self.resolve(
            subsystem,
            name,
            |h| match h {
                MetricHandle::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || MetricHandle::Gauge(Arc::new(Gauge::default())),
            "gauge",
        )
    }

    /// The histogram `name` under `subsystem`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, subsystem: Subsystem, name: &str) -> Arc<Histogram> {
        self.resolve(
            subsystem,
            name,
            |h| match h {
                MetricHandle::Histogram(hi) => Some(Arc::clone(hi)),
                _ => None,
            },
            || MetricHandle::Histogram(Arc::new(Histogram::default())),
            "histogram",
        )
    }

    /// Convenience: add `n` to a counter (re-resolves the handle; fine
    /// off the hot path).
    pub fn add(&self, subsystem: Subsystem, name: &str, n: u64) {
        self.counter(subsystem, name).add(n);
    }

    /// Convenience: set a gauge.
    pub fn set_gauge(&self, subsystem: Subsystem, name: &str, v: f64) {
        self.gauge(subsystem, name).set(v);
    }

    /// Convenience: record a histogram sample.
    pub fn observe(&self, subsystem: Subsystem, name: &str, v: u64) {
        self.histogram(subsystem, name).record(v);
    }

    /// A point-in-time view of every registered metric, sorted by
    /// `(subsystem, name)` so expositions are stable. Writers are
    /// never paused; see the module docs.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().expect("registry");
        let mut metrics: Vec<MetricSnapshot> = map
            .iter()
            .map(|((subsystem, name), handle)| MetricSnapshot {
                subsystem: *subsystem,
                name: name.clone(),
                value: match handle {
                    MetricHandle::Counter(c) => MetricValue::Counter(c.value()),
                    MetricHandle::Gauge(g) => MetricValue::Gauge(g.value()),
                    MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        drop(map);
        metrics.sort_by(|a, b| {
            (a.subsystem.as_str(), a.name.as_str()).cmp(&(b.subsystem.as_str(), b.name.as_str()))
        });
        MetricsSnapshot { metrics }
    }
}

/// One metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// The subsystem label.
    pub subsystem: Subsystem,
    /// The metric name within the subsystem.
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A monotonic total.
    Counter(u64),
    /// A last-written sample.
    Gauge(f64),
    /// A frozen histogram.
    Histogram(HistogramSnapshot),
}

/// Replaces every character Prometheus disallows in a metric name
/// with `_`.
fn prom_sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A point-in-time view of the whole registry, with both exposition
/// formats and typed lookups.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Every metric, sorted by `(subsystem, name)`.
    pub metrics: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    fn find(&self, subsystem: Subsystem, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.subsystem == subsystem && m.name == name)
            .map(|m| &m.value)
    }

    /// The counter's total, if registered.
    pub fn counter(&self, subsystem: Subsystem, name: &str) -> Option<u64> {
        match self.find(subsystem, name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge's value, if registered.
    pub fn gauge(&self, subsystem: Subsystem, name: &str) -> Option<f64> {
        match self.find(subsystem, name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if registered.
    pub fn histogram(&self, subsystem: Subsystem, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(subsystem, name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `# TYPE` lines, `matopt_<subsystem>_<name>` naming, counters
    /// suffixed `_total`, histograms as cumulative `_bucket{le=...}`
    /// series with `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let base = format!("matopt_{}_{}", m.subsystem.as_str(), prom_sanitize(&m.name));
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {base}_total counter\n"));
                    out.push_str(&format!("{base}_total {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {base} gauge\n"));
                    let mut num = String::new();
                    number_into(*v, &mut num);
                    // Prometheus has no null; a non-finite gauge reads NaN.
                    if num == "null" {
                        num = "NaN".to_string();
                    }
                    out.push_str(&format!("{base} {num}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {base} histogram\n"));
                    let mut cumulative = 0u64;
                    for (_, ub, c) in h.buckets() {
                        cumulative += c;
                        out.push_str(&format!("{base}_bucket{{le=\"{ub}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
                    out.push_str(&format!("{base}_sum {}\n", h.sum()));
                    out.push_str(&format!("{base}_count {}\n", h.count()));
                }
            }
        }
        out
    }

    /// Renders one JSON document:
    /// `{"metrics": [{"subsystem": ..., "name": ..., "type": ...,
    /// ...}]}`. Histograms carry `count`, `sum`, p50/p95/p99, and the
    /// non-empty `[lower, upper, count]` buckets. Built on the
    /// in-crate escaping helpers and validated against the in-crate
    /// parser in tests.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"subsystem\": ");
            escape_into(m.subsystem.as_str(), &mut out);
            out.push_str(", \"name\": ");
            escape_into(&m.name, &mut out);
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!(", \"type\": \"counter\", \"value\": {v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(", \"type\": \"gauge\", \"value\": ");
                    number_into(*v, &mut out);
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        ", \"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                        h.count(),
                        h.sum(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    ));
                    for (j, (lb, ub, c)) in h.buckets().iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("[{lb}, {ub}, {c}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_exact_then_log_linear() {
        // Values below 16 land in their own bucket.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // Every value is within its bucket's bounds, and the relative
        // width of any bucket is at most 1/16 of its lower bound.
        for v in [16u64, 17, 100, 1000, 12345, 1 << 20, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v, "{v} below bucket {i}");
            assert!(v <= bucket_upper_bound(i), "{v} above bucket {i}");
            if i + 1 < BUCKETS {
                let width = bucket_upper_bound(i) - bucket_lower_bound(i) + 1;
                assert!(
                    width * 16 <= bucket_lower_bound(i).max(1) * 2,
                    "bucket {i} too wide: {width}"
                );
            }
        }
        // Bucket bounds tile the u64 range without gaps or overlaps.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn counters_shard_and_sum() {
        let c = Arc::new(Counter::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        c.add(5);
        assert_eq!(c.value(), 4005);
    }

    #[test]
    fn gauges_hold_last_write() {
        let g = Gauge::default();
        assert_eq!(g.value(), 0.0);
        g.set(3.25);
        assert_eq!(g.value(), 3.25);
        g.set(-1.0);
        assert_eq!(g.value(), -1.0);
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        // Upper-bound quantiles overestimate by at most 1/16.
        for (q, exact) in [(0.50, 500u64), (0.95, 950), (0.99, 990)] {
            let got = s.quantile(q);
            assert!(got >= exact, "q{q}: {got} < {exact}");
            assert!(
                got as f64 <= exact as f64 * (1.0 + 1.0 / 16.0) + 1.0,
                "q{q}: {got} too far above {exact}"
            );
        }
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshots_merge_by_addition() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 37);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.sum(), a.snapshot().sum() + b.snapshot().sum());
        // Merge order does not matter.
        let mut other = b.snapshot();
        other.merge(&a.snapshot());
        assert_eq!(merged, other);
    }

    #[test]
    fn registry_resolves_and_snapshots() {
        let r = MetricsRegistry::new();
        r.counter(Subsystem::Serve, "hits").add(3);
        r.counter(Subsystem::Serve, "hits").add(4);
        r.gauge(Subsystem::Sched, "queue_depth").set(2.0);
        r.observe(Subsystem::Serve, "latency_us", 120);
        let s = r.snapshot();
        assert_eq!(s.counter(Subsystem::Serve, "hits"), Some(7));
        assert_eq!(s.gauge(Subsystem::Sched, "queue_depth"), Some(2.0));
        assert_eq!(
            s.histogram(Subsystem::Serve, "latency_us").unwrap().count(),
            1
        );
        assert_eq!(s.counter(Subsystem::Serve, "nope"), None);
        // Sorted exposition order: (subsystem, name).
        let names: Vec<&str> = s.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["queue_depth", "hits", "latency_us"]);
    }

    #[test]
    #[should_panic(expected = "requested as gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter(Subsystem::Serve, "hits").inc();
        let _ = r.gauge(Subsystem::Serve, "hits");
    }

    /// One registry that exercises every metric kind plus the edge
    /// cases (non-finite gauge, name needing sanitization). The
    /// histogram holds 3, 3, 100: two samples in the exact bucket
    /// `[3, 3]` and one in the log-linear bucket `[100, 103]`.
    fn golden_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::new();
        r.add(Subsystem::Cli, "bad-name.v2", 1);
        r.set_gauge(Subsystem::Sched, "peak", f64::NAN);
        r.add(Subsystem::Serve, "hits", 3);
        r.set_gauge(Subsystem::Serve, "queue_depth", 2.5);
        let h = r.histogram(Subsystem::Serve, "latency_us");
        h.record(3);
        h.record(3);
        h.record(100);
        r
    }

    #[test]
    fn golden_prometheus_exposition() {
        let text = golden_registry().snapshot().prometheus();
        let expected = "\
# TYPE matopt_cli_bad_name_v2_total counter
matopt_cli_bad_name_v2_total 1
# TYPE matopt_sched_peak gauge
matopt_sched_peak NaN
# TYPE matopt_serve_hits_total counter
matopt_serve_hits_total 3
# TYPE matopt_serve_latency_us histogram
matopt_serve_latency_us_bucket{le=\"3\"} 2
matopt_serve_latency_us_bucket{le=\"103\"} 3
matopt_serve_latency_us_bucket{le=\"+Inf\"} 3
matopt_serve_latency_us_sum 106
matopt_serve_latency_us_count 3
# TYPE matopt_serve_queue_depth gauge
matopt_serve_queue_depth 2.5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn golden_json_exposition_validates() {
        let text = golden_registry().snapshot().to_json();
        crate::json::validate(&text).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{text}"));
        let expected = concat!(
            "{\"metrics\": [",
            "{\"subsystem\": \"cli\", \"name\": \"bad-name.v2\", ",
            "\"type\": \"counter\", \"value\": 1}, ",
            "{\"subsystem\": \"sched\", \"name\": \"peak\", ",
            "\"type\": \"gauge\", \"value\": null}, ",
            "{\"subsystem\": \"serve\", \"name\": \"hits\", ",
            "\"type\": \"counter\", \"value\": 3}, ",
            "{\"subsystem\": \"serve\", \"name\": \"latency_us\", ",
            "\"type\": \"histogram\", \"count\": 3, \"sum\": 106, ",
            "\"p50\": 3, \"p95\": 103, \"p99\": 103, ",
            "\"buckets\": [[3, 3, 2], [100, 103, 1]]}, ",
            "{\"subsystem\": \"serve\", \"name\": \"queue_depth\", ",
            "\"type\": \"gauge\", \"value\": 2.5}",
            "]}",
        );
        assert_eq!(text, expected);
    }

    use proptest::prelude::*;

    fn snap_of(samples: &[u64]) -> HistogramSnapshot {
        let h = Histogram::default();
        for &v in samples {
            h.record(v);
        }
        h.snapshot()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merging is elementwise addition over one shared bucket
        /// layout, so it must be associative and commutative and add
        /// counts and (wrapping aside, bounded inputs here) sums —
        /// the property that lets per-shard histograms roll up.
        #[test]
        fn histogram_merge_is_associative_and_commutative(
            a in prop::collection::vec(0u64..1 << 48, 0..40),
            b in prop::collection::vec(0u64..1 << 48, 0..40),
            c in prop::collection::vec(0u64..1 << 48, 0..40),
        ) {
            let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let mut left = sa.clone();
            left.merge(&sb);
            left.merge(&sc);
            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);

            // a ⊕ b == b ⊕ a
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(&ab, &ba);

            // Counts and sums add; the identity element is the empty
            // snapshot.
            prop_assert_eq!(ab.count(), sa.count() + sb.count());
            prop_assert_eq!(ab.sum(), sa.sum() + sb.sum());
            let mut with_zero = sa.clone();
            with_zero.merge(&HistogramSnapshot::default());
            prop_assert_eq!(&with_zero, &sa);

            // Merging matches recording the concatenation directly.
            let mut all = a.clone();
            all.extend_from_slice(&b);
            prop_assert_eq!(&ab, &snap_of(&all));
        }
    }
}
