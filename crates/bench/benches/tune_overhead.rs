//! Overhead of tuned kernel dispatch on the untuned path.
//!
//! The acceptance bar is that routing a GEMM through the
//! catalog-aware dispatch ([`DenseMatrix::matmul_with`] on an *empty*
//! catalog) costs < 2% versus calling the packed kernel directly with
//! the fixed default blocking. An untouched catalog must be free: the
//! dispatch pays one relaxed atomic load for the class count and two
//! for the thresholds, then lands on exactly the same
//! `matmul_packed_with(DEFAULT)` call the direct path makes.
//!
//! * `gemm/packed_direct` — `matmul_packed_with` with
//!   [`GemmBlocking::DEFAULT`], no catalog in sight;
//! * `gemm/dispatch_untuned` — the same product through
//!   [`DenseMatrix::matmul_with`] with [`KernelConfig::untuned`].
//!
//! The final `tune overhead budget` line compares best-of-N run times
//! directly and reports OK/OVER against the 2% budget.

use criterion::{black_box, criterion_group, Criterion};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix, GemmBlocking, KernelConfig};
use std::time::{Duration, Instant};

/// Big enough that the packed path is taken (past `pack_min_flops`),
/// small enough that per-call dispatch overhead is not lost in a long
/// kernel run: dispatch cost is constant, so the smallest packed GEMM
/// is the worst case for the budget.
const DIM: usize = 96;

struct Fixture {
    a: DenseMatrix,
    b: DenseMatrix,
    cfg: KernelConfig,
}

fn fixture() -> Fixture {
    let mut rng = seeded_rng(42);
    Fixture {
        a: random_dense_normal(DIM, DIM, &mut rng),
        b: random_dense_normal(DIM, DIM, &mut rng),
        cfg: KernelConfig::untuned(),
    }
}

fn run_direct(fx: &Fixture) -> DenseMatrix {
    fx.a.matmul_packed_with(&fx.b, GemmBlocking::DEFAULT)
}

fn run_dispatch(fx: &Fixture) -> DenseMatrix {
    fx.a.matmul_with(&fx.b, &fx.cfg)
}

fn bench_dispatch(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("tune_overhead");
    g.sample_size(20).measurement_time(Duration::from_secs(2));

    g.bench_function("gemm/packed_direct", |b| {
        b.iter(|| black_box(run_direct(&fx)))
    });
    g.bench_function("gemm/dispatch_untuned", |b| {
        b.iter(|| black_box(run_dispatch(&fx)))
    });
    g.finish();
}

/// Direct budget check: best-of-N dispatched run time against the
/// best-of-N direct run time, interleaved so machine drift hits both
/// equally. The minimum is the right estimator: scheduler noise only
/// ever *adds* time, so the floor is the honest cost of each path.
fn overhead_budget_report() {
    let fx = fixture();
    let reps = 80;
    // A batch of calls per sample so the measured interval is well
    // above timer resolution (one 96^3 GEMM is ~100 microseconds).
    let batch = 8;
    // Warm both paths (first-touch page faults, instruction cache).
    for _ in 0..4 {
        black_box(run_direct(&fx));
        black_box(run_dispatch(&fx));
    }

    let mut direct = f64::INFINITY;
    let mut dispatched = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(run_direct(&fx));
        }
        direct = direct.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        for _ in 0..batch {
            black_box(run_dispatch(&fx));
        }
        dispatched = dispatched.min(t.elapsed().as_secs_f64());
    }

    let overhead = dispatched / direct - 1.0;
    println!(
        "tune overhead budget: direct {:.3} ms, dispatch(untuned) {:.3} ms -> {:+.3}% (budget 2%) -> {}",
        direct * 1e3,
        dispatched * 1e3,
        overhead * 100.0,
        if overhead < 0.02 { "OK" } else { "OVER" }
    );
}

criterion_group!(benches, bench_dispatch);

fn main() {
    benches();
    overhead_budget_report();
}
