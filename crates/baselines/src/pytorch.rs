//! A simulated PyTorch data-parallel baseline (§8.3).
//!
//! The paper runs "a standard, 'data parallel' implementation [19]; the
//! input data matrix is sharded into column strips so each machine gets
//! one shard" and observes that "PyTorch's data-parallel implementation
//! broadcasts the entire model to all machines, which is problematic
//! with such a large model", and that "PyTorch is unable to multiply
//! the matrix storing the input data with the entire matrix connecting
//! the inputs to the first input layer without failing".
//!
//! Both behaviours are direct consequences of the data-parallel
//! strategy, which this module models explicitly:
//!
//! * every worker holds the **full model and its gradients** (2× model
//!   bytes) plus its dense batch shard and activations — exceeding
//!   worker RAM is a failure;
//! * per step: model synchronization traffic that grows with the
//!   worker count, plus the dense forward+backward FLOPs spread across
//!   workers.

use matopt_engine::{FailReason, SimOutcome};
use matopt_graphs::FfnnConfig;

/// Performance constants of the simulated PyTorch runtime on
/// `r5dn.2xlarge` workers (calibrated against Figures 11–12; see
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct PyTorchProfile {
    /// Effective dense GEMM throughput per worker (flop/s) — MKL on 8
    /// vCPUs.
    pub flops_per_sec: f64,
    /// Effective per-worker model-synchronization bandwidth (bytes/s);
    /// total sync cost grows with the worker count.
    pub sync_bytes_per_sec: f64,
    /// Worker RAM (bytes).
    pub worker_ram_bytes: f64,
    /// Fixed framework overhead per measured step (seconds).
    pub overhead_sec: f64,
}

impl Default for PyTorchProfile {
    fn default() -> Self {
        PyTorchProfile {
            flops_per_sec: 5.5e11,
            sync_bytes_per_sec: 6e9,
            worker_ram_bytes: 64e9,
            overhead_sec: 8.0,
        }
    }
}

/// Bytes of the model parameters (all three weight matrices; biases
/// are negligible).
fn model_bytes(cfg: &FfnnConfig) -> f64 {
    let d = cfg.features as f64;
    let h = cfg.hidden as f64;
    let l = cfg.labels as f64;
    (d * h + h * h + h * l) * 8.0
}

/// Dense forward FLOPs of one pass over the full batch.
fn forward_flops(cfg: &FfnnConfig) -> f64 {
    let b = cfg.batch as f64;
    let d = cfg.features as f64;
    let h = cfg.hidden as f64;
    let l = cfg.labels as f64;
    2.0 * b * (d * h + h * h + h * l)
}

/// Simulates one measured PyTorch training step (forward + backprop)
/// of the FFNN on `workers` machines.
pub fn simulate_pytorch_ffnn(
    cfg: &FfnnConfig,
    workers: usize,
    profile: &PyTorchProfile,
) -> SimOutcome {
    let w = workers.max(1) as f64;
    let model = model_bytes(cfg);
    // PyTorch densifies the sharded input batch.
    let x_shard = (cfg.batch as f64 / w).ceil() * cfg.features as f64 * 8.0;
    let act_shard =
        (cfg.batch as f64 / w).ceil() * (2.0 * cfg.hidden as f64 + cfg.labels as f64) * 8.0;
    // Model + gradients resident on every worker (gradient buckets are
    // partially released as the all-reduce drains, hence < 2×), plus
    // the data shard and activations.
    let peak = 1.9 * model + x_shard + act_shard;
    if peak > profile.worker_ram_bytes {
        return SimOutcome::Failed {
            vertex: matopt_core::NodeId(0),
            reason: FailReason::OutOfMemory,
        };
    }
    // Forward + backward ≈ 3× forward FLOPs, data-parallel across
    // workers.
    let compute = 3.0 * forward_flops(cfg) / (w * profile.flops_per_sec);
    // Model broadcast + gradient all-reduce: effective cost grows with
    // the worker count (the paper observes PyTorch *slowing down* as
    // workers are added at fixed batch size).
    let sync = w * model / profile.sync_bytes_per_sec;
    SimOutcome::Finished {
        seconds: compute + sync + profile.overhead_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(batch: u64, hidden: u64) -> FfnnConfig {
        FfnnConfig::amazoncat(batch, hidden, false)
    }

    #[test]
    fn layer_7000_fails_at_any_cluster_size() {
        // Figure 11/12: PyTorch fails at layer size 7000 everywhere —
        // 2 × 33.9 GB of parameters+gradients exceeds 64 GB RAM.
        let p = PyTorchProfile::default();
        for w in [2, 5, 10] {
            assert!(simulate_pytorch_ffnn(&cfg(1000, 7000), w, &p).failed());
        }
    }

    #[test]
    fn ten_k_batch_fails_at_5000_on_two_workers() {
        // Figure 12, 2 workers: 4000 passes, 5000 fails.
        let p = PyTorchProfile::default();
        assert!(!simulate_pytorch_ffnn(&cfg(10_000, 4000), 2, &p).failed());
        assert!(simulate_pytorch_ffnn(&cfg(10_000, 5000), 2, &p).failed());
        // ...but 5000 passes on 5 workers (the shard shrinks).
        assert!(!simulate_pytorch_ffnn(&cfg(10_000, 5000), 5, &p).failed());
    }

    #[test]
    fn adding_workers_eventually_slows_small_batches_down() {
        // Figure 11's counter-intuitive shape: at batch 1000 the sync
        // term dominates, so 10 workers are slower than 2.
        let p = PyTorchProfile::default();
        let t2 = simulate_pytorch_ffnn(&cfg(1000, 4000), 2, &p)
            .seconds()
            .unwrap();
        let t10 = simulate_pytorch_ffnn(&cfg(1000, 4000), 10, &p)
            .seconds()
            .unwrap();
        assert!(t10 > t2, "t2={t2} t10={t10}");
    }

    #[test]
    fn big_batches_do_benefit_from_workers() {
        let p = PyTorchProfile::default();
        let t2 = simulate_pytorch_ffnn(&cfg(10_000, 4000), 2, &p)
            .seconds()
            .unwrap();
        let t10 = simulate_pytorch_ffnn(&cfg(10_000, 4000), 10, &p)
            .seconds()
            .unwrap();
        assert!(t10 < t2, "t2={t2} t10={t10}");
    }
}
