//! Distributed matrix values: chunked relations with matrix-valued
//! attributes, the runtime counterpart of a
//! [`matopt_core::PhysFormat`].

use matopt_core::{MatrixType, PhysFormat};
use matopt_kernels::{CooMatrix, CsrMatrix, DenseMatrix};

/// The payload of one tuple: a dense block, a CSR block, or a bag of
/// coordinate triples.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Dense row-major payload.
    Dense(DenseMatrix),
    /// Compressed-sparse-row payload.
    Csr(CsrMatrix),
    /// Coordinate triples (indices relative to the whole matrix).
    Coo(CooMatrix),
}

impl Block {
    /// Rows of the payload.
    pub fn rows(&self) -> usize {
        match self {
            Block::Dense(d) => d.rows(),
            Block::Csr(s) => s.rows(),
            Block::Coo(c) => c.rows(),
        }
    }

    /// Columns of the payload.
    pub fn cols(&self) -> usize {
        match self {
            Block::Dense(d) => d.cols(),
            Block::Csr(s) => s.cols(),
            Block::Coo(c) => c.cols(),
        }
    }

    /// Bytes this payload occupies (approximate, matching the §7
    /// accounting).
    pub fn bytes(&self) -> f64 {
        match self {
            Block::Dense(d) => (d.rows() * d.cols()) as f64 * 8.0,
            Block::Csr(s) => s.nnz() as f64 * 16.0,
            Block::Coo(c) => c.nnz() as f64 * 24.0,
        }
    }

    /// Densifies the payload.
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Block::Dense(d) => d.clone(),
            Block::Csr(s) => s.to_dense(),
            Block::Coo(c) => c.to_dense(),
        }
    }

    /// Borrows the dense payload.
    ///
    /// # Panics
    /// Panics when the payload is not dense.
    pub fn as_dense(&self) -> &DenseMatrix {
        match self {
            Block::Dense(d) => d,
            other => panic!("expected dense block, found {other:?}"),
        }
    }

    /// Borrows the CSR payload.
    ///
    /// # Panics
    /// Panics when the payload is not CSR.
    pub fn as_csr(&self) -> &CsrMatrix {
        match self {
            Block::Csr(s) => s,
            other => panic!("expected CSR block, found {other:?}"),
        }
    }
}

/// One tuple of a distributed matrix relation: the chunk coordinates
/// (`tileRow`, `tileCol` in the paper's schemas) plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Grid row index (0 for column strips / single tuples).
    pub row: u64,
    /// Grid column index (0 for row strips / single tuples).
    pub col: u64,
    /// The matrix payload.
    pub block: Block,
}

impl Chunk {
    /// The worker this chunk hashes to on a `workers`-node cluster.
    pub fn worker(&self, workers: usize) -> usize {
        // A cheap deterministic hash of the grid key.
        let h = self
            .row
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.col.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        (h % workers.max(1) as u64) as usize
    }
}

/// A distributed matrix: a relation of chunks in a specific physical
/// format. This is the runtime value flowing along compute-graph edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DistRelation {
    /// The logical matrix type.
    pub mtype: MatrixType,
    /// The physical implementation the relation is stored in.
    pub format: PhysFormat,
    /// The tuples.
    pub chunks: Vec<Chunk>,
}

/// Errors constructing or reshaping distributed relations.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueError {
    /// The requested format cannot represent the value (e.g. COO of a
    /// dense payload is allowed, but strip heights of zero are not).
    BadFormat(String),
}

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValueError::BadFormat(m) => write!(f, "bad format: {m}"),
        }
    }
}

impl std::error::Error for ValueError {}

impl DistRelation {
    /// Chunks a dense matrix into the given physical format.
    ///
    /// # Errors
    /// Returns [`ValueError::BadFormat`] for degenerate chunk sizes.
    pub fn from_dense(dense: &DenseMatrix, format: PhysFormat) -> Result<Self, ValueError> {
        let rows = dense.rows();
        let cols = dense.cols();
        let mtype = MatrixType {
            rows: rows as u64,
            cols: cols as u64,
            sparsity: dense.measured_sparsity(),
        };
        let chunks = match format {
            PhysFormat::SingleTuple => vec![Chunk {
                row: 0,
                col: 0,
                block: Block::Dense(dense.clone()),
            }],
            PhysFormat::RowStrip { height } => {
                let h = usize::try_from(height).map_err(|_| bad("strip height"))?;
                if h == 0 {
                    return Err(bad("strip height 0"));
                }
                (0..rows.div_ceil(h))
                    .map(|i| Chunk {
                        row: i as u64,
                        col: 0,
                        block: Block::Dense(dense.block(i * h, 0, h, cols)),
                    })
                    .collect()
            }
            PhysFormat::ColStrip { width } => {
                let w = usize::try_from(width).map_err(|_| bad("strip width"))?;
                if w == 0 {
                    return Err(bad("strip width 0"));
                }
                (0..cols.div_ceil(w))
                    .map(|j| Chunk {
                        row: 0,
                        col: j as u64,
                        block: Block::Dense(dense.block(0, j * w, rows, w)),
                    })
                    .collect()
            }
            PhysFormat::Tile { side } => {
                let s = usize::try_from(side).map_err(|_| bad("tile side"))?;
                if s == 0 {
                    return Err(bad("tile side 0"));
                }
                let mut out = Vec::new();
                for i in 0..rows.div_ceil(s) {
                    for j in 0..cols.div_ceil(s) {
                        out.push(Chunk {
                            row: i as u64,
                            col: j as u64,
                            block: Block::Dense(dense.block(i * s, j * s, s, s)),
                        });
                    }
                }
                out
            }
            PhysFormat::Coo => vec![Chunk {
                row: 0,
                col: 0,
                block: Block::Coo(CooMatrix::from_dense(dense)),
            }],
            PhysFormat::CsrSingle => vec![Chunk {
                row: 0,
                col: 0,
                block: Block::Csr(CsrMatrix::from_dense(dense)),
            }],
            PhysFormat::CsrTile { side } => {
                let s = usize::try_from(side).map_err(|_| bad("tile side"))?;
                if s == 0 {
                    return Err(bad("tile side 0"));
                }
                let full = CsrMatrix::from_dense(dense);
                let mut out = Vec::new();
                for i in 0..rows.div_ceil(s) {
                    for j in 0..cols.div_ceil(s) {
                        out.push(Chunk {
                            row: i as u64,
                            col: j as u64,
                            block: Block::Csr(full.block(i * s, j * s, s, s)),
                        });
                    }
                }
                out
            }
        };
        Ok(DistRelation {
            mtype,
            format,
            chunks,
        })
    }

    /// Reassembles the logical dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let rows = self.mtype.rows as usize;
        let cols = self.mtype.cols as usize;
        let mut out = DenseMatrix::zeros(rows, cols);
        let (ch, cw) = self.chunk_strides();
        for c in &self.chunks {
            match &c.block {
                Block::Coo(coo) => {
                    // COO indices are global.
                    for (r, cc, v) in coo.entries() {
                        let cur = out.get(*r, *cc);
                        out.set(*r, *cc, cur + *v);
                    }
                }
                b => {
                    let d = b.to_dense();
                    out.set_block(c.row as usize * ch, c.col as usize * cw, &d);
                }
            }
        }
        out
    }

    /// The `(row, col)` strides of the chunk grid: how far apart chunk
    /// origins are.
    pub fn chunk_strides(&self) -> (usize, usize) {
        match self.format {
            PhysFormat::SingleTuple | PhysFormat::Coo | PhysFormat::CsrSingle => {
                (self.mtype.rows as usize, self.mtype.cols as usize)
            }
            PhysFormat::RowStrip { height } => (height as usize, self.mtype.cols as usize),
            PhysFormat::ColStrip { width } => (self.mtype.rows as usize, width as usize),
            PhysFormat::Tile { side } | PhysFormat::CsrTile { side } => {
                (side as usize, side as usize)
            }
        }
    }

    /// Total payload bytes across chunks.
    pub fn total_bytes(&self) -> f64 {
        self.chunks.iter().map(|c| c.block.bytes()).sum()
    }

    /// Re-materializes this relation in another physical format — the
    /// runtime realization of any [`matopt_core::Transform`].
    ///
    /// # Errors
    /// Propagates [`ValueError`] from chunking.
    pub fn reformat(&self, to: PhysFormat) -> Result<DistRelation, ValueError> {
        if to == self.format {
            return Ok(self.clone());
        }
        let dense = self.to_dense();
        let mut out = DistRelation::from_dense(&dense, to)?;
        // Keep the logical (estimated) sparsity of the source type, so
        // repeated reformatting never drifts the statistic.
        out.mtype = self.mtype;
        Ok(out)
    }

    /// Looks up a chunk by its grid key.
    pub fn chunk_at(&self, row: u64, col: u64) -> Option<&Chunk> {
        self.chunks.iter().find(|c| c.row == row && c.col == col)
    }
}

fn bad(what: &str) -> ValueError {
    ValueError::BadFormat(what.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_kernels::{random_dense_normal, seeded_rng};

    fn sample(rows: usize, cols: usize) -> DenseMatrix {
        random_dense_normal(rows, cols, &mut seeded_rng(11))
    }

    #[test]
    fn round_trip_all_formats() {
        let d = sample(37, 53);
        for fmt in [
            PhysFormat::SingleTuple,
            PhysFormat::RowStrip { height: 10 },
            PhysFormat::ColStrip { width: 7 },
            PhysFormat::Tile { side: 8 },
            PhysFormat::Coo,
            PhysFormat::CsrSingle,
            PhysFormat::CsrTile { side: 9 },
        ] {
            let rel = DistRelation::from_dense(&d, fmt).unwrap();
            assert!(
                rel.to_dense().approx_eq(&d, 1e-12),
                "round trip failed for {fmt}"
            );
        }
    }

    #[test]
    fn chunk_counts_match_format_accounting() {
        let d = sample(40, 60);
        let rel = DistRelation::from_dense(&d, PhysFormat::Tile { side: 16 }).unwrap();
        assert_eq!(rel.chunks.len(), 3 * 4);
        assert_eq!(
            rel.chunks.len() as f64,
            PhysFormat::Tile { side: 16 }.num_tuples(&rel.mtype)
        );
    }

    #[test]
    fn reformat_preserves_values() {
        let d = sample(25, 31);
        let rel = DistRelation::from_dense(&d, PhysFormat::Tile { side: 6 }).unwrap();
        let strips = rel.reformat(PhysFormat::RowStrip { height: 4 }).unwrap();
        assert!(strips.to_dense().approx_eq(&d, 1e-12));
        assert_eq!(strips.format, PhysFormat::RowStrip { height: 4 });
    }

    #[test]
    fn worker_assignment_is_deterministic_and_in_range() {
        let d = sample(32, 32);
        let rel = DistRelation::from_dense(&d, PhysFormat::Tile { side: 8 }).unwrap();
        for c in &rel.chunks {
            assert!(c.worker(5) < 5);
            assert_eq!(c.worker(5), c.worker(5));
        }
    }

    #[test]
    fn ragged_edges_are_clamped() {
        let d = sample(10, 10);
        let rel = DistRelation::from_dense(&d, PhysFormat::Tile { side: 7 }).unwrap();
        let corner = rel.chunk_at(1, 1).unwrap();
        assert_eq!((corner.block.rows(), corner.block.cols()), (3, 3));
    }

    #[test]
    fn sparse_blocks_account_bytes_by_nnz() {
        let mut d = DenseMatrix::zeros(100, 100);
        d.set(3, 4, 1.0);
        d.set(90, 7, 2.0);
        let rel = DistRelation::from_dense(&d, PhysFormat::CsrSingle).unwrap();
        assert_eq!(rel.total_bytes(), 2.0 * 16.0);
        let coo = DistRelation::from_dense(&d, PhysFormat::Coo).unwrap();
        assert_eq!(coo.total_bytes(), 2.0 * 24.0);
    }

    #[test]
    fn zero_chunk_sizes_are_rejected() {
        let d = sample(4, 4);
        assert!(DistRelation::from_dense(&d, PhysFormat::Tile { side: 0 }).is_err());
        assert!(DistRelation::from_dense(&d, PhysFormat::RowStrip { height: 0 }).is_err());
    }
}
