//! The multi-tenant front door: one admission point fusing plan
//! serving and execution serving.
//!
//! [`FrontDoor`] wraps a [`PlanService`] and adds everything a hostile
//! production workload needs that the bare service does not have:
//!
//! * **Per-tenant quotas** — each tenant (a named client population)
//!   carries a cap on requests in flight; the request past the cap is
//!   rejected with the structured [`ServeError::QuotaExceeded`] naming
//!   the tenant, so one runaway client cannot monopolize the service.
//! * **Weighted fair queueing** — when more executions arrive than the
//!   configured concurrency, waiters queue per-tenant and are admitted
//!   by virtual-time fair queueing: a tenant with weight 2 drains
//!   twice as fast as weight 1, and no tenant starves.
//! * **Deadline-aware load shedding** — queued work whose deadline has
//!   already passed is dropped with [`ServeError::DeadlineExceeded`]
//!   instead of executing uselessly; the global queue is bounded and
//!   overflow is rejected with [`ServeError::Overloaded`].
//! * **Plan-aware execution batching** — execute requests with the
//!   same plan fingerprint *and* the same declared input key coalesce
//!   into one run (the execution-side generalization of the planner's
//!   single-flight): the leader executes, followers share the
//!   `Arc<ExecOutcome>`. Kernels are bit-deterministic, so a batched
//!   answer is bit-identical to an unbatched one — the soak bench
//!   asserts exactly that.
//! * **Shared-pool governance + cross-tenant hedging** — executions
//!   draw memory carve-outs from one [`SharedGovernor`] pool, and with
//!   [`FrontDoorConfig::hedge_factor`] set stragglers are hedged on
//!   the shared worker pool regardless of which tenant is running —
//!   spare capacity from idle tenants cuts the tail of busy ones.
//! * **Circuit breaker** — drift latches, fault recoveries, and
//!   execution failures feed a [`CircuitBreaker`]; a storm trips it
//!   and the front door degrades to serial, unhedged, cache-bypassing
//!   execution (slow but trustworthy) until probes close it again.
//!   See the `breaker` module docs for the state machine.
//!
//! With [`TenancyConfig::disabled`] the quota/WFQ layers short-circuit
//! to a handful of branch checks: the `tenancy_overhead` bench gates
//! that disabled path at < 2% over calling the executor directly.

use crate::breaker::{BreakerConfig, BreakerDecision, BreakerState, BreakerStats, CircuitBreaker};
use crate::tenant::{TenancyConfig, TenantConfig, TenantStats};
use crate::{Fingerprint, PlanService, Planned, ServeError};
use matopt_core::{ComputeGraph, NodeId};
use matopt_engine::{
    execute_plan_serial, execute_plan_with, DistRelation, ExecOptions, ExecOutcome, FaultInjector,
    FtConfig, HedgeConfig, RemoteVertexExec, SharedGovernor, SharedGovernorStats,
};
use matopt_obs::{Histogram, Subsystem};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Front-door tuning.
#[derive(Debug, Clone)]
pub struct FrontDoorConfig {
    /// Per-tenant quotas and weights.
    pub tenancy: TenancyConfig,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Executions allowed to run concurrently; the rest queue under
    /// weighted fair queueing. Only enforced while tenancy is enabled.
    pub exec_concurrency: usize,
    /// Bound on queued executions across all tenants; overflow is
    /// rejected with [`ServeError::Overloaded`].
    pub max_queued: usize,
    /// Byte budget of the shared execution memory pool (`None` = no
    /// pool; each run governs itself).
    pub shared_pool_bytes: Option<u64>,
    /// Straggler-hedging deadline factor for executions (`None` = no
    /// hedging). Hedged duplicates run on the shared worker pool
    /// regardless of tenant.
    pub hedge_factor: Option<f64>,
    /// Coalesce same-fingerprint, same-input-key executions into one
    /// run.
    pub batching: bool,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        FrontDoorConfig {
            tenancy: TenancyConfig::default(),
            breaker: BreakerConfig::default(),
            exec_concurrency: matopt_pool::Pool::global().parallelism().max(2),
            max_queued: 256,
            shared_pool_bytes: None,
            hedge_factor: None,
            batching: true,
        }
    }
}

/// One execution request presented at the front door.
#[derive(Debug)]
pub struct ExecRequest<'a> {
    /// The requesting tenant (any name; unknown tenants get the
    /// default quota).
    pub tenant: &'a str,
    /// The compute graph to execute.
    pub graph: &'a ComputeGraph,
    /// One relation per source vertex.
    pub inputs: &'a HashMap<NodeId, DistRelation>,
    /// Caller-declared identity of `inputs`: two requests may batch
    /// into one run only when both their plan fingerprints *and* their
    /// input keys match. Callers that cannot prove input identity must
    /// pass distinct keys.
    pub input_key: u64,
    /// Drop-dead time: queued work past this instant is shed, and
    /// batched followers stop waiting.
    pub deadline: Option<Instant>,
}

/// A served execution.
#[derive(Debug, Clone)]
pub struct ExecResponse {
    /// The execution outcome (shared with every batched follower).
    pub outcome: Arc<ExecOutcome>,
    /// The plan that ran.
    pub planned: Planned,
    /// `true` when this request was answered by another request's run.
    pub batched: bool,
    /// `true` when the breaker routed this request through the
    /// degraded (serial, unhedged, cache-bypassing) path.
    pub degraded: bool,
    /// Fault recoveries performed during the run (fault-injected runs
    /// only).
    pub recoveries: u32,
    /// End-to-end front-door latency for this request.
    pub latency: Duration,
}

/// Counter snapshot from [`FrontDoor::stats`].
#[derive(Debug, Clone)]
pub struct FrontStats {
    /// Execute requests presented (admitted or not).
    pub exec_requests: u64,
    /// Execute requests answered successfully.
    pub exec_ok: u64,
    /// Execute requests that failed (optimizer or executor).
    pub exec_errors: u64,
    /// Requests answered from another request's batched run.
    pub batched: u64,
    /// Runs actually executed (batch leaders + unbatched).
    pub flights: u64,
    /// Requests rejected by per-tenant quota.
    pub quota_rejects: u64,
    /// Requests rejected because the wait queue was full.
    pub overloaded: u64,
    /// Queued executions shed past their deadline.
    pub shed: u64,
    /// Times an execution had to queue behind the concurrency cap.
    pub queued_waits: u64,
    /// Hedged duplicates launched across all runs.
    pub hedges_launched: u64,
    /// Hedged duplicates that won their race.
    pub hedges_won: u64,
    /// Worker-process deaths reported by an attached fleet (each one
    /// also counts into the breaker's storm window).
    pub worker_deaths: u64,
    /// Breaker counters.
    pub breaker: BreakerStats,
    /// Breaker state at snapshot time.
    pub breaker_state: BreakerState,
    /// Shared-pool counters (`None` when no pool is configured).
    pub pool: Option<SharedGovernorStats>,
}

/// Wait states of a queued execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaitState {
    Pending,
    Admitted,
    Shed,
}

/// One queued execution waiting for a concurrency slot.
struct Waiter {
    /// WFQ virtual finish tag; smallest tag is admitted first.
    tag: f64,
    /// FIFO tie-break for equal tags.
    seq: u64,
    deadline: Option<Instant>,
    state: Mutex<WaitState>,
    admitted: Condvar,
}

/// Per-tenant live accounting (under the scheduler lock).
struct TenantState {
    config: TenantConfig,
    inflight: usize,
    /// WFQ virtual finish time of the tenant's most recent arrival.
    vfinish: f64,
    requests: u64,
    ok: u64,
    quota_rejects: u64,
    shed: u64,
    errors: u64,
    batched: u64,
    latency_us: Histogram,
}

impl TenantState {
    fn new(config: TenantConfig) -> Self {
        TenantState {
            config,
            inflight: 0,
            vfinish: 0.0,
            requests: 0,
            ok: 0,
            quota_rejects: 0,
            shed: 0,
            errors: 0,
            batched: 0,
            latency_us: Histogram::default(),
        }
    }
}

/// Scheduler state: tenants, the WFQ wait queue, and the running
/// count, all under one lock (decisions are quick; the work they gate
/// runs outside it).
struct Sched {
    running: usize,
    vclock: f64,
    next_seq: u64,
    draining: bool,
    queue: Vec<Arc<Waiter>>,
    tenants: HashMap<String, TenantState>,
}

/// What a batched flight publishes: the shared outcome and the plan
/// that produced it.
type FlightResult = Result<(Arc<ExecOutcome>, Planned), ServeError>;

/// One in-flight batched execution: followers with the same
/// (fingerprint, input key) park here and share the leader's outcome.
struct ExecFlight {
    result: Mutex<Option<FlightResult>>,
    done: Condvar,
}

/// The multi-tenant front door. See the module docs.
pub struct FrontDoor {
    service: Arc<PlanService>,
    config: FrontDoorConfig,
    breaker: CircuitBreaker,
    shared: Option<Arc<SharedGovernor>>,
    sched: Mutex<Sched>,
    flights: Mutex<HashMap<(Fingerprint, u64), Arc<ExecFlight>>>,
    /// Serializes degraded (breaker-open) executions.
    serial: Mutex<()>,
    exec_requests: AtomicU64,
    exec_ok: AtomicU64,
    exec_errors: AtomicU64,
    batched: AtomicU64,
    flights_led: AtomicU64,
    quota_rejects: AtomicU64,
    overloaded: AtomicU64,
    shed: AtomicU64,
    queued_waits: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    /// Remote vertex-execution backend for admitted runs (`None` =
    /// in-process kernels). Attached after construction because the
    /// fleet usually wants a death observer pointing back at this very
    /// front door.
    remote: Mutex<Option<Arc<dyn RemoteVertexExec>>>,
    worker_deaths: AtomicU64,
}

impl FrontDoor {
    /// Builds a front door over `service`.
    #[must_use]
    pub fn new(service: Arc<PlanService>, config: FrontDoorConfig) -> Self {
        let shared = config.shared_pool_bytes.map(SharedGovernor::new);
        let breaker = CircuitBreaker::new(config.breaker);
        FrontDoor {
            service,
            breaker,
            shared,
            sched: Mutex::new(Sched {
                running: 0,
                vclock: 0.0,
                next_seq: 0,
                draining: false,
                queue: Vec::new(),
                tenants: HashMap::new(),
            }),
            flights: Mutex::new(HashMap::new()),
            serial: Mutex::new(()),
            config,
            exec_requests: AtomicU64::new(0),
            exec_ok: AtomicU64::new(0),
            exec_errors: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            flights_led: AtomicU64::new(0),
            quota_rejects: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queued_waits: AtomicU64::new(0),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            remote: Mutex::new(None),
            worker_deaths: AtomicU64::new(0),
        }
    }

    /// Routes every subsequent execution's kernels through `backend`
    /// (the worker fleet). Planned work in flight keeps whatever
    /// backend it started with.
    pub fn attach_remote(&self, backend: Arc<dyn RemoteVertexExec>) {
        *self.remote.lock().expect("front remote") = Some(backend);
    }

    /// Records one worker-process death. Deaths feed the breaker's
    /// storm window exactly like fault-recovery storms: a worker-death
    /// storm (crash-looping fleet) trips the breaker into degraded
    /// serial execution rather than letting every request ride a dying
    /// fleet.
    pub fn record_worker_death(&self) {
        self.worker_deaths.fetch_add(1, Ordering::Relaxed);
        self.breaker.record_storm_event();
    }

    /// The wrapped plan service.
    #[must_use]
    pub fn service(&self) -> &Arc<PlanService> {
        &self.service
    }

    /// The front door's configuration.
    #[must_use]
    pub fn config(&self) -> &FrontDoorConfig {
        &self.config
    }

    /// The circuit breaker (state inspection; the bench asserts trips).
    #[must_use]
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The shared execution memory pool, when configured.
    #[must_use]
    pub fn shared_governor(&self) -> Option<&Arc<SharedGovernor>> {
        self.shared.as_ref()
    }

    /// Stops admitting new work: every subsequent [`FrontDoor::plan`]
    /// or [`FrontDoor::execute`] is rejected with
    /// [`ServeError::Draining`]. Work already admitted finishes
    /// normally.
    pub fn drain(&self) {
        self.sched.lock().expect("front sched").draining = true;
    }

    /// True once [`FrontDoor::drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.sched.lock().expect("front sched").draining
    }

    /// [`FrontDoor::drain`], then blocks until every admitted
    /// execution — including remote waves running on a worker fleet —
    /// has finished, or `timeout` elapses. Returns `true` when the
    /// door went fully idle; `false` on timeout (work still in
    /// flight). The caller can then shut its fleet down knowing no
    /// wave still depends on the workers.
    pub fn drain_and_wait(&self, timeout: Duration) -> bool {
        self.drain();
        let deadline = Instant::now() + timeout;
        loop {
            let idle = {
                let sched = self.sched.lock().expect("front sched");
                sched.running == 0 && sched.queue.is_empty()
            };
            if idle {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Serves a plan through the tenant's quota: fingerprint → cache →
    /// single-flight, exactly like [`PlanService::plan`], with
    /// admission and per-tenant accounting in front.
    ///
    /// # Errors
    /// [`ServeError::QuotaExceeded`] past the tenant's in-flight cap,
    /// [`ServeError::Draining`] after [`FrontDoor::drain`], plus
    /// everything [`PlanService::plan`] returns.
    pub fn plan(&self, tenant: &str, graph: &ComputeGraph) -> Result<Planned, ServeError> {
        let started = Instant::now();
        let guard = self.admit_tenant(tenant)?;
        let result = self.service.plan(graph);
        self.settle_tenant(
            guard,
            started,
            &result.as_ref().map(|_| ()).map_err(Clone::clone),
        );
        result
    }

    /// Executes `req.graph` on `req.inputs` through the full front
    /// door: quota → breaker → batching → fair queueing → pooled,
    /// hedged execution.
    ///
    /// # Errors
    /// [`ServeError::QuotaExceeded`], [`ServeError::Overloaded`],
    /// [`ServeError::DeadlineExceeded`] (queued past deadline),
    /// [`ServeError::Draining`], [`ServeError::Opt`] from planning, or
    /// [`ServeError::Exec`] from the executor.
    pub fn execute(&self, req: &ExecRequest<'_>) -> Result<ExecResponse, ServeError> {
        self.execute_inner(req, None)
    }

    /// [`FrontDoor::execute`] under seeded fault injection: the run
    /// goes through the fault-tolerant executor, recoveries feed the
    /// circuit breaker, and the response reports how many faults were
    /// recovered. The chaos soak drives storms through this entry
    /// point.
    ///
    /// # Errors
    /// Same contract as [`FrontDoor::execute`].
    pub fn execute_with_faults(
        &self,
        req: &ExecRequest<'_>,
        injector: FaultInjector,
        ft: &FtConfig,
    ) -> Result<ExecResponse, ServeError> {
        self.execute_inner(req, Some((injector, ft)))
    }

    fn execute_inner(
        &self,
        req: &ExecRequest<'_>,
        faults: Option<(FaultInjector, &FtConfig)>,
    ) -> Result<ExecResponse, ServeError> {
        let started = Instant::now();
        self.exec_requests.fetch_add(1, Ordering::Relaxed);
        let guard = self.admit_tenant(req.tenant)?;
        let result = match self.breaker.decision() {
            BreakerDecision::Normal => self.execute_normal(req, started, faults),
            BreakerDecision::Probe => {
                let r = self.execute_normal(req, started, faults);
                self.breaker.probe_result(r.is_ok());
                r
            }
            BreakerDecision::Degraded => self.execute_degraded(req, started),
        };
        match &result {
            Ok(resp) => {
                self.exec_ok.fetch_add(1, Ordering::Relaxed);
                if resp.batched {
                    self.batched.fetch_add(1, Ordering::Relaxed);
                    self.note_batched(req.tenant);
                }
            }
            Err(e) => {
                self.exec_errors.fetch_add(1, Ordering::Relaxed);
                if matches!(e, ServeError::DeadlineExceeded) {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.settle_tenant(
            guard,
            started,
            &result.as_ref().map(|_| ()).map_err(Clone::clone),
        );
        result
    }

    /// The fast path: cached plan, batching, fair queueing, pooled and
    /// hedged execution.
    fn execute_normal(
        &self,
        req: &ExecRequest<'_>,
        started: Instant,
        faults: Option<(FaultInjector, &FtConfig)>,
    ) -> Result<ExecResponse, ServeError> {
        let planned = self.service.plan(req.graph)?;
        let batchable = self.config.batching && planned.fingerprint != Fingerprint(0);
        let key = (planned.fingerprint, req.input_key);

        let flight = if batchable {
            let mut flights = self.flights.lock().expect("front flights");
            if let Some(f) = flights.get(&key) {
                // Follower: the answer is already being computed.
                let f = Arc::clone(f);
                drop(flights);
                let (outcome, planned) = self.wait_for_flight(&f, req.deadline)?;
                return Ok(ExecResponse {
                    outcome,
                    planned,
                    batched: true,
                    degraded: false,
                    recoveries: 0,
                    latency: started.elapsed(),
                });
            }
            let f = Arc::new(ExecFlight {
                result: Mutex::new(None),
                done: Condvar::new(),
            });
            flights.insert(key, Arc::clone(&f));
            Some(f)
        } else {
            None
        };

        // Leader (or unbatched) path: take a concurrency slot under
        // weighted fair queueing, run, publish.
        let outcome = self.admit_slot(req.tenant, req.deadline).and_then(|slot| {
            let r = self.run_leader(req, &planned, faults);
            drop(slot);
            r
        });
        let published = outcome.map(|(out, recoveries)| (out, planned.clone(), recoveries));
        if let Some(f) = flight {
            // Publish, wake the followers, and only then retire the
            // flight (publish-then-remove keeps the window closed).
            *f.result.lock().expect("flight result") = Some(
                published
                    .as_ref()
                    .map(|(out, planned, _)| (Arc::clone(out), planned.clone()))
                    .map_err(Clone::clone),
            );
            f.done.notify_all();
            self.flights.lock().expect("front flights").remove(&key);
        }
        published.map(|(outcome, planned, recoveries)| ExecResponse {
            outcome,
            planned,
            batched: false,
            degraded: false,
            recoveries,
            latency: started.elapsed(),
        })
    }

    /// Runs the plan (holding a concurrency slot), feeds drift and
    /// fault signals to the breaker, and aggregates hedge counters.
    fn run_leader(
        &self,
        req: &ExecRequest<'_>,
        planned: &Planned,
        faults: Option<(FaultInjector, &FtConfig)>,
    ) -> Result<(Arc<ExecOutcome>, u32), ServeError> {
        self.flights_led.fetch_add(1, Ordering::Relaxed);
        let tenant_mem = if self.config.tenancy.enabled {
            self.config.tenancy.for_tenant(req.tenant).mem_bytes
        } else {
            None
        };
        let result: Result<(ExecOutcome, u32), ServeError> = match faults {
            None => {
                let options = ExecOptions {
                    retain_values: false,
                    mem_budget: tenant_mem,
                    scratch_dir: None,
                    hedge: self.hedge_config(),
                    straggler_delays_ms: None,
                    shared_governor: self.shared.clone(),
                    kernel_config: Some(self.service.kernel_config()),
                    remote: self.remote.lock().expect("front remote").clone(),
                };
                execute_plan_with(
                    req.graph,
                    &planned.plan.annotation,
                    req.inputs,
                    self.service.registry(),
                    self.service.obs(),
                    options,
                )
                .map(|out| (out, 0))
                .map_err(|e| ServeError::Exec(e.to_string()))
            }
            Some((injector, ft)) => {
                let mut config = ft.clone();
                config.mem_budget = config.mem_budget.or(tenant_mem);
                if config.hedge.is_none() {
                    config.hedge = self.hedge_config();
                }
                if config.shared_governor.is_none() {
                    config.shared_governor = self.shared.clone();
                }
                self.service
                    .execute_fault_tolerant(req.graph, planned, req.inputs, injector, &config)
                    .map(|ft_out| {
                        let recoveries = ft_out.recoveries + ft_out.retries + ft_out.replans;
                        // Every recovery is a storm signal: this is the
                        // serve-side view of the Subsystem::Faults
                        // counters.
                        for _ in 0..recoveries {
                            self.breaker.record_storm_event();
                        }
                        (ft_to_exec(ft_out), recoveries)
                    })
                    .map_err(|e| ServeError::Exec(e.to_string()))
            }
        };
        match result {
            Ok((outcome, recoveries)) => {
                self.hedges_launched
                    .fetch_add(outcome.governor.hedges_launched, Ordering::Relaxed);
                self.hedges_won
                    .fetch_add(outcome.governor.hedges_won, Ordering::Relaxed);
                if planned.fingerprint != Fingerprint(0) {
                    let drifted = self.service.observe_runtime(
                        planned.fingerprint,
                        planned.plan.cost,
                        outcome.total_seconds,
                    );
                    if drifted {
                        self.breaker.record_storm_event();
                    }
                }
                Ok((Arc::new(outcome), recoveries))
            }
            Err(e) => {
                self.breaker.record_storm_event();
                self.service
                    .obs()
                    .record(Subsystem::Serve, "exec_error", || {
                        vec![
                            ("tenant", req.tenant.to_string().into()),
                            ("error", e.to_string().into()),
                        ]
                    });
                Err(e)
            }
        }
    }

    /// The degraded path: serial, unhedged, cache-bypassing. Slow but
    /// immune to the stale plans and scheduling machinery a storm has
    /// just implicated — the breaker's "fail gracefully, not at all".
    fn execute_degraded(
        &self,
        req: &ExecRequest<'_>,
        started: Instant,
    ) -> Result<ExecResponse, ServeError> {
        let planned = self.service.plan_bypass(req.graph)?;
        let _one_at_a_time = self.serial.lock().expect("front serial");
        let outcome = execute_plan_serial(
            req.graph,
            &planned.plan.annotation,
            req.inputs,
            self.service.registry(),
        )
        .map_err(|e| ServeError::Exec(e.to_string()))?;
        Ok(ExecResponse {
            outcome: Arc::new(outcome),
            planned,
            batched: false,
            degraded: true,
            recoveries: 0,
            latency: started.elapsed(),
        })
    }

    fn hedge_config(&self) -> Option<HedgeConfig> {
        self.config.hedge_factor.map(|factor| HedgeConfig {
            factor,
            predicted_seconds: None,
            min_deadline_ms: 2,
        })
    }

    /// Parks on a batched flight until the leader publishes or the
    /// deadline passes.
    fn wait_for_flight(
        &self,
        flight: &ExecFlight,
        deadline: Option<Instant>,
    ) -> Result<(Arc<ExecOutcome>, Planned), ServeError> {
        let mut slot = flight.result.lock().expect("flight result");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            match deadline {
                None => slot = flight.done.wait(slot).expect("flight result"),
                Some(at) => {
                    let Some(remaining) = at.checked_duration_since(Instant::now()) else {
                        return Err(ServeError::DeadlineExceeded);
                    };
                    let (guard, _timeout) = flight
                        .done
                        .wait_timeout(slot, remaining)
                        .expect("flight result");
                    slot = guard;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Tenant admission
    // ------------------------------------------------------------------

    /// Quota check + in-flight accounting. Returns a guard token the
    /// caller must hand back through [`FrontDoor::settle_tenant`].
    fn admit_tenant<'t>(&self, tenant: &'t str) -> Result<TenantGuard<'t>, ServeError> {
        if !self.config.tenancy.enabled {
            let draining = self.sched.lock().expect("front sched").draining;
            if draining {
                return Err(ServeError::Draining);
            }
            return Ok(TenantGuard {
                tenant,
                tracked: false,
            });
        }
        let mut sched = self.sched.lock().expect("front sched");
        if sched.draining {
            return Err(ServeError::Draining);
        }
        let config = self.config.tenancy.for_tenant(tenant);
        let state = sched
            .tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState::new(config));
        if state.inflight >= state.config.max_inflight {
            state.quota_rejects += 1;
            self.quota_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.to_string(),
            });
        }
        state.inflight += 1;
        state.requests += 1;
        Ok(TenantGuard {
            tenant,
            tracked: true,
        })
    }

    /// Releases the tenant's in-flight slot and records the request's
    /// outcome and latency.
    fn settle_tenant(
        &self,
        guard: TenantGuard<'_>,
        started: Instant,
        result: &Result<(), ServeError>,
    ) {
        if !guard.tracked {
            return;
        }
        let mut sched = self.sched.lock().expect("front sched");
        if let Some(state) = sched.tenants.get_mut(guard.tenant) {
            state.inflight = state.inflight.saturating_sub(1);
            match result {
                Ok(()) => {
                    state.ok += 1;
                    state
                        .latency_us
                        .record(started.elapsed().as_micros() as u64);
                }
                Err(ServeError::DeadlineExceeded) => state.shed += 1,
                Err(_) => state.errors += 1,
            }
        }
    }

    /// Notes that a request was answered by another request's run (for
    /// per-tenant batching counters).
    fn note_batched(&self, tenant: &str) {
        if !self.config.tenancy.enabled {
            return;
        }
        let mut sched = self.sched.lock().expect("front sched");
        if let Some(state) = sched.tenants.get_mut(tenant) {
            state.batched += 1;
        }
    }

    // ------------------------------------------------------------------
    // Weighted-fair-queueing slot admission
    // ------------------------------------------------------------------

    /// Takes a concurrency slot, queueing under WFQ when the cap is
    /// reached. With tenancy disabled this is free: no cap, no queue.
    fn admit_slot(
        &self,
        tenant: &str,
        deadline: Option<Instant>,
    ) -> Result<SlotGuard<'_>, ServeError> {
        if !self.config.tenancy.enabled {
            return Ok(SlotGuard {
                front: self,
                tracked: false,
            });
        }
        let waiter = {
            let mut sched = self.sched.lock().expect("front sched");
            if sched.running < self.config.exec_concurrency && sched.queue.is_empty() {
                sched.running += 1;
                return Ok(SlotGuard {
                    front: self,
                    tracked: true,
                });
            }
            if sched.queue.len() >= self.config.max_queued {
                self.overloaded.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    depth: sched.queue.len(),
                });
            }
            // Shed immediately if the deadline is already gone: queued
            // work past its deadline must never occupy a slot. (Per-
            // tenant and global shed counters move at settlement.)
            if deadline.is_some_and(|at| Instant::now() >= at) {
                return Err(ServeError::DeadlineExceeded);
            }
            let weight = f64::from(self.config.tenancy.for_tenant(tenant).weight.max(1));
            let seq = sched.next_seq;
            sched.next_seq += 1;
            let vclock = sched.vclock;
            let state = sched
                .tenants
                .entry(tenant.to_string())
                .or_insert_with(|| TenantState::new(self.config.tenancy.for_tenant(tenant)));
            let tag = vclock.max(state.vfinish) + 1.0 / weight;
            state.vfinish = tag;
            let waiter = Arc::new(Waiter {
                tag,
                seq,
                deadline,
                state: Mutex::new(WaitState::Pending),
                admitted: Condvar::new(),
            });
            sched.queue.push(Arc::clone(&waiter));
            self.queued_waits.fetch_add(1, Ordering::Relaxed);
            waiter
        };

        // Park until admitted, shed, or past deadline.
        let mut state = waiter.state.lock().expect("waiter state");
        loop {
            match *state {
                WaitState::Admitted => {
                    return Ok(SlotGuard {
                        front: self,
                        tracked: true,
                    });
                }
                WaitState::Shed => return Err(ServeError::DeadlineExceeded),
                WaitState::Pending => {}
            }
            match waiter.deadline {
                None => state = waiter.admitted.wait(state).expect("waiter state"),
                Some(at) => {
                    let Some(remaining) = at.checked_duration_since(Instant::now()) else {
                        // Timed out while queued: remove ourselves
                        // (unless a release admitted us in the race).
                        drop(state);
                        return self.shed_self(&waiter);
                    };
                    let (guard, _timeout) = waiter
                        .admitted
                        .wait_timeout(state, remaining)
                        .expect("waiter state");
                    state = guard;
                }
            }
        }
    }

    /// Removes a timed-out waiter from the queue. If a release raced
    /// us and already granted the slot, the grant wins only if the
    /// deadline still holds — otherwise the slot is handed straight
    /// back.
    fn shed_self(&self, waiter: &Arc<Waiter>) -> Result<SlotGuard<'_>, ServeError> {
        let mut sched = self.sched.lock().expect("front sched");
        let current = *waiter.state.lock().expect("waiter state");
        match current {
            WaitState::Admitted => {
                // Admitted in the race but the deadline has passed:
                // give the slot back and shed anyway.
                drop(sched);
                self.release_slot();
                Err(ServeError::DeadlineExceeded)
            }
            WaitState::Shed => Err(ServeError::DeadlineExceeded),
            WaitState::Pending => {
                sched.queue.retain(|w| !Arc::ptr_eq(w, waiter));
                *waiter.state.lock().expect("waiter state") = WaitState::Shed;
                Err(ServeError::DeadlineExceeded)
            }
        }
    }

    /// Returns a concurrency slot and admits the fairest waiters:
    /// expired waiters are shed, then the smallest virtual-finish tag
    /// wins until the cap is reached.
    fn release_slot(&self) {
        let mut sched = self.sched.lock().expect("front sched");
        sched.running = sched.running.saturating_sub(1);
        let now = Instant::now();
        // Deadline-aware load shedding: drop queued work that is
        // already dead before it can waste a slot.
        let mut idx = 0;
        while idx < sched.queue.len() {
            let expired = sched.queue[idx].deadline.is_some_and(|at| now >= at);
            if expired {
                // The shed waiter wakes, returns DeadlineExceeded, and
                // its settlement moves the shed counters.
                let w = sched.queue.remove(idx);
                *w.state.lock().expect("waiter state") = WaitState::Shed;
                w.admitted.notify_all();
            } else {
                idx += 1;
            }
        }
        while sched.running < self.config.exec_concurrency {
            // Smallest (tag, seq) is the WFQ winner.
            let Some(best) = sched
                .queue
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.tag
                        .partial_cmp(&b.tag)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.seq.cmp(&b.seq))
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let w = sched.queue.remove(best);
            sched.vclock = sched.vclock.max(w.tag);
            sched.running += 1;
            *w.state.lock().expect("waiter state") = WaitState::Admitted;
            w.admitted.notify_all();
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> FrontStats {
        FrontStats {
            exec_requests: self.exec_requests.load(Ordering::Relaxed),
            exec_ok: self.exec_ok.load(Ordering::Relaxed),
            exec_errors: self.exec_errors.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            flights: self.flights_led.load(Ordering::Relaxed),
            quota_rejects: self.quota_rejects.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            queued_waits: self.queued_waits.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            worker_deaths: self.worker_deaths.load(Ordering::Relaxed),
            breaker: self.breaker.stats(),
            breaker_state: self.breaker.state(),
            pool: self.shared.as_ref().map(|p| p.stats()),
        }
    }

    /// Per-tenant accounting, sorted by tenant name.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let sched = self.sched.lock().expect("front sched");
        let mut out: Vec<TenantStats> = sched
            .tenants
            .iter()
            .map(|(name, s)| TenantStats {
                name: name.clone(),
                config: s.config,
                requests: s.requests,
                ok: s.ok,
                quota_rejects: s.quota_rejects,
                shed: s.shed,
                errors: s.errors,
                batched: s.batched,
                inflight: s.inflight,
                latency_us: s.latency_us.snapshot(),
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// Token for a tenant's in-flight slot (returned via `settle_tenant`;
/// not RAII because settling also records the outcome).
struct TenantGuard<'t> {
    tenant: &'t str,
    tracked: bool,
}

/// RAII concurrency slot: returning it admits the fairest waiter.
struct SlotGuard<'f> {
    front: &'f FrontDoor,
    tracked: bool,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if self.tracked {
            self.front.release_slot();
        }
    }
}

/// Repackages a fault-tolerant outcome as a plain execution outcome
/// (the front door's response type is uniform across paths).
fn ft_to_exec(ft: matopt_engine::FtOutcome) -> ExecOutcome {
    ExecOutcome {
        sinks: ft.sinks,
        values: ft.values,
        vertex_seconds: ft.vertex_seconds,
        transform_seconds: ft.transform_seconds,
        vertex_chunks: ft.vertex_chunks,
        vertex_resident_bytes: ft.vertex_resident_bytes,
        parallelism: ft.parallelism,
        max_concurrency: ft.max_concurrency,
        peak_resident_bytes: ft.peak_resident_bytes,
        governor: ft.governor,
        pool: ft.pool,
        total_seconds: ft.total_seconds,
    }
}
