//! The `matopt serve` loop: JSON-lines over any `BufRead`/`Write`
//! pair (stdin/stdout in the CLI; in-memory buffers in tests).
//!
//! One request per line in, one response per line out, in order:
//!
//! ```json
//! {"id": "r1", "status": "ok", "fingerprint": "6b0f…", "source": "hit",
//!  "cost": 12.25, "opt_seconds": 0.004, "exactness": "exact",
//!  "vertices": 11, "latency_us": 180}
//! {"id": "r2", "status": "error", "error": "bad request: …"}
//! ```
//!
//! Errors are *responses*, never process exits: a malformed line, a
//! type-incorrect graph, or an overloaded service answers the client
//! and keeps serving. The output is flushed after every response so
//! piped clients see answers immediately.

use crate::protocol::{json_escape, parse_request, Json};
use crate::PlanService;
use matopt_obs::{HistogramSnapshot, Subsystem};
use std::io::{self, BufRead, Write};

/// What a [`serve_lines`] session handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Non-empty request lines read.
    pub requests: u64,
    /// `"status": "ok"` responses written.
    pub ok: u64,
    /// `"status": "error"` responses written.
    pub errors: u64,
}

/// Serves requests from `input` until EOF, writing one response line
/// each to `output`.
///
/// # Errors
/// Propagates I/O errors from the transport (request-level failures are
/// error *responses*, not `Err`).
pub fn serve_lines<R: BufRead, W: Write>(
    service: &PlanService,
    input: R,
    output: &mut W,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        let response = respond(service, &line);
        let ok = response.contains("\"status\": \"ok\"");
        if ok {
            summary.ok += 1;
        } else {
            summary.errors += 1;
        }
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
    }
    Ok(summary)
}

/// The response line (no trailing newline) for one request line.
///
/// Plan requests go through [`crate::protocol::parse_request`]; a
/// top-level `{"op": "stats"}` line instead answers with the service's
/// live statistics (see [`stats_line`]).
pub fn respond(service: &PlanService, line: &str) -> String {
    if let Ok(doc) = Json::parse(line) {
        if let Some(op) = doc.get("op").and_then(Json::as_str) {
            let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
            return match op {
                "stats" => stats_line(service, id.as_deref()),
                other => error_line(id.as_deref(), &format!("unknown op {other:?}")),
            };
        }
    }
    let cluster = service.cluster();
    match parse_request(line, &cluster) {
        Ok(req) => match service.plan(&req.graph) {
            Ok(planned) => format!(
                "{{\"id\": \"{}\", \"status\": \"ok\", \"fingerprint\": \"{}\", \
                 \"source\": \"{}\", \"cost\": {}, \"opt_seconds\": {}, \
                 \"exactness\": \"{}\", \"vertices\": {}, \"latency_us\": {}}}",
                json_escape(&req.id),
                planned.fingerprint.hex(),
                planned.source.as_str(),
                planned.plan.cost,
                planned.plan.opt_seconds,
                planned.plan.exactness(),
                req.graph.len(),
                planned.latency.as_micros(),
            ),
            Err(err) => error_line(Some(&req.id), &err.to_string()),
        },
        Err(err) => {
            // Best-effort id echo so the client can correlate the
            // failure even though the request didn't parse as a whole.
            let id = Json::parse(line)
                .ok()
                .and_then(|d| d.get("id").and_then(Json::as_str).map(str::to_string));
            error_line(id.as_deref(), &err.to_string())
        }
    }
}

/// The `{"op": "stats"}` response: service counters, cache state, and
/// — when the service carries a metrics registry — latency percentiles
/// computed from the *merged* hit/miss/coalesced request histograms
/// (mergeability is exactly why the histograms are log-linear).
/// Percentiles are `null` when no metrics registry is attached or no
/// request has been timed yet.
pub fn stats_line(service: &PlanService, id: Option<&str>) -> String {
    let stats = service.stats();
    let snap = service.metrics_snapshot();
    let (p50, p95, p99, drift_events) = match &snap {
        Some(s) => {
            let mut merged = HistogramSnapshot::default();
            for name in ["latency_hit_us", "latency_miss_us", "latency_coalesced_us"] {
                if let Some(h) = s.histogram(Subsystem::Serve, name) {
                    merged.merge(h);
                }
            }
            let q = |p: f64| {
                if merged.count() == 0 {
                    "null".to_string()
                } else {
                    merged.quantile(p).to_string()
                }
            };
            let drift = s.counter(Subsystem::CostModel, "drift_events").unwrap_or(0);
            (q(0.50), q(0.95), q(0.99), drift)
        }
        None => ("null".into(), "null".into(), "null".into(), 0),
    };
    let id = match id {
        Some(id) => format!("\"{}\"", json_escape(id)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\": {id}, \"status\": \"ok\", \"op\": \"stats\", \
         \"requests\": {}, \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \
         \"admission_rejects\": {}, \"deadline_expired\": {}, \
         \"optimize_runs\": {}, \"optimize_seconds\": {}, \
         \"cache_entries\": {}, \"cache_bytes\": {}, \"cache_epoch\": {}, \
         \"cache_evictions\": {}, \"drift_events\": {drift_events}, \
         \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}}}",
        stats.requests,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.admission_rejects,
        stats.deadline_expired,
        stats.optimize_runs,
        stats.optimize_seconds,
        stats.cache_entries,
        stats.cache_bytes,
        service.cache().epoch(),
        stats.cache.evicted,
    )
}

fn error_line(id: Option<&str>, message: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"id\": \"{}\", \"status\": \"error\", \"error\": \"{}\"}}",
            json_escape(id),
            json_escape(message)
        ),
        None => format!(
            "{{\"id\": null, \"status\": \"error\", \"error\": \"{}\"}}",
            json_escape(message)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use matopt_core::{Cluster, FormatCatalog, ImplRegistry};
    use matopt_cost::AnalyticalCostModel;

    fn service() -> PlanService {
        PlanService::new(
            ImplRegistry::paper_default(),
            FormatCatalog::paper_default().dense_only(),
            Cluster::simsql_like(4),
            Box::new(AnalyticalCostModel),
            ServeConfig::default(),
        )
    }

    fn metered_service() -> PlanService {
        let registry = matopt_obs::MetricsRegistry::new();
        let obs = matopt_obs::Obs::with_metrics(
            std::sync::Arc::new(matopt_obs::RingSink::new(256)),
            registry,
        );
        PlanService::with_obs(
            ImplRegistry::paper_default(),
            FormatCatalog::paper_default().dense_only(),
            Cluster::simsql_like(4),
            Box::new(AnalyticalCostModel),
            ServeConfig::default(),
            obs,
        )
    }

    #[test]
    fn session_serves_hits_and_errors_in_order() {
        let service = service();
        let input = concat!(
            r#"{"id": "a", "workload": "motivating"}"#,
            "\n\n",
            r#"{"id": "b", "workload": "motivating"}"#,
            "\n",
            "garbage\n",
            r#"{"id": "c", "workload": "nope"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_lines(&service, input.as_bytes(), &mut out).expect("io");
        assert_eq!(
            summary,
            ServeSummary {
                requests: 4,
                ok: 2,
                errors: 2
            }
        );
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"source\": \"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"source\": \"hit\""), "{}", lines[1]);
        assert!(lines[2].contains("\"id\": null"), "{}", lines[2]);
        assert!(lines[3].contains("\"id\": \"c\""), "{}", lines[3]);
        // Responses are themselves valid JSON.
        for line in &lines {
            Json::parse(line).expect("response is valid JSON");
        }
        // And the two identical requests produced identical fingerprints.
        let fp = |l: &str| {
            Json::parse(l)
                .unwrap()
                .get("fingerprint")
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(fp(lines[0]), fp(lines[1]));
    }

    #[test]
    fn stats_op_reports_counters_and_percentiles() {
        let service = metered_service();
        let input = concat!(
            r#"{"id": "a", "workload": "motivating"}"#,
            "\n",
            r#"{"id": "b", "workload": "motivating"}"#,
            "\n",
            r#"{"id": "s", "op": "stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_lines(&service, input.as_bytes(), &mut out).expect("io");
        assert_eq!(summary.ok, 3);
        let text = std::str::from_utf8(&out).expect("utf8");
        let stats = Json::parse(text.lines().nth(2).expect("stats line")).expect("valid JSON");
        let int = |k: &str| {
            stats
                .get(k)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{k} missing: {text}")) as u64
        };
        assert_eq!(int("requests"), 2, "stats op itself is not a plan request");
        assert_eq!(int("hits"), 1);
        assert_eq!(int("misses"), 1);
        assert_eq!(int("cache_entries"), 1);
        // Percentiles come from the merged hit+miss histograms: two
        // timed requests means a nonzero merged count, and p99 bounds
        // p50 from above.
        assert!(int("p99_us") >= int("p50_us"));
        assert!(int("p50_us") > 0);
    }

    #[test]
    fn stats_op_without_metrics_yields_null_percentiles() {
        let service = service();
        let line = respond(&service, r#"{"op": "stats"}"#);
        assert!(line.contains("\"p50_us\": null"), "{line}");
        assert!(line.contains("\"id\": null"), "{line}");
        Json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn unknown_op_is_an_error_response_not_a_parse_failure() {
        let service = service();
        let line = respond(&service, r#"{"id": "x", "op": "flush"}"#);
        assert!(line.contains("\"status\": \"error\""), "{line}");
        assert!(line.contains("unknown op"), "{line}");
        assert!(line.contains("\"id\": \"x\""), "{line}");
    }
}
