//! # matopt-cost
//!
//! Cost models for annotated compute graphs (§7 of the paper):
//!
//! * [`AnalyticalCostModel`] — closed-form mapping from the analytic
//!   feature vector (flops, network bytes, intermediate bytes, tuple
//!   counts, operator count) to seconds, using the [`matopt_core::Cluster`]
//!   rates.
//! * [`LearnedCostModel`] — per-operation linear regressions fitted from
//!   installation-time benchmark measurements, exactly as the paper
//!   describes: "our implementation runs a set of benchmark computations
//!   for which it collects the running time, and then it uses the
//!   ... analytically-computed features along with those running times as
//!   input into a regression that is performed for each operation."
//! * [`plan_cost`] — the §4.3 plan objective `Cost(G') = Σ v.c + Σ e.c`.
//!
//! The regressions are solved with the LU factorization from
//! `matopt-kernels` — the library's own linear algebra.
//!
//! [`DriftMonitor`] closes the predict → measure → recalibrate loop:
//! it tracks per-plan measured/predicted runtime ratios and reports
//! when a deployed model's predictions have drifted out of band.
//!
//! [`TunedCostModel`] consumes the kernel autotuner's measured
//! per-shape-class GFLOP/s ([`matopt_kernels::tune::TuningCatalog`])
//! as a [`ThroughputCurve`], replacing the single-rate CPU term with
//! the real shape-dependent throughput the machine was measured at.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod accuracy;
mod curves;
mod drift;
mod faulty;
mod model;
mod regression;

pub use accuracy::{mean_rel_error, sample_residuals, Residual};
pub use curves::{ThroughputCurve, TunedCostModel};
pub use drift::{DriftConfig, DriftEvent, DriftMonitor};
pub use faulty::{expected_vertex_time, FaultAwareCostModel};
pub use model::{plan_cost, AnalyticalCostModel, CostKey, CostModel, CostSample, LearnedCostModel};
pub use regression::{fit_ridge, LinearModel, N_FEATURES};
