//! `matopt serve` must drain gracefully on SIGTERM: answer everything
//! already read off stdin, print the drain notice, run the epilogue,
//! and exit 0 — even while the reader thread is parked in a blocking
//! stdin read (the pipe stays open for the whole test).

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

#[test]
fn sigterm_drains_answers_and_exits_zero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_matopt"))
        .args(["serve", "--beam", "200"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("matopt serve spawns");

    // One real request, answered before the signal — proves the session
    // was live and that drain preserves already-delivered work.
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(b"{\"id\": 1, \"workload\": \"ffnn-small:16\"}\n")
        .expect("request written");
    stdin.flush().expect("request flushed");

    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut response = String::new();
    stdout.read_line(&mut response).expect("response read");
    assert!(
        response.contains("\"id\": \"1\"") && response.contains("\"status\": \"ok\""),
        "unexpected response line: {response}"
    );

    // stdin stays open: the server is now parked in a blocking read.
    // SIGTERM must still drain and exit 0.
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill runs");
    assert!(kill.success(), "kill -TERM failed");

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "serve did not exit within 30s of SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    drop(stdin);

    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("stderr read");
    assert_eq!(status.code(), Some(0), "exit nonzero; stderr:\n{stderr}");
    assert!(
        stderr.contains("termination signal received; draining"),
        "drain notice missing from stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("drained; 1 requests read, 1 responses written"),
        "drain accounting missing from stderr:\n{stderr}"
    );
}
