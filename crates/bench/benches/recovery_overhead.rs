//! Overhead of the fault-tolerant execution path with injection
//! disabled.
//!
//! The acceptance bar is that [`execute_fault_tolerant`] with a
//! [`FaultInjector::disabled`] injector costs < 2% versus the plain
//! [`execute_plan`] path. With injection off the wrapper adds one
//! injector branch, two `Instant::now` calls, and one bookkeeping
//! update per compute vertex — and crucially *no* checkpoint clones,
//! which are only taken when a live injector makes them worth paying
//! for.
//!
//! * `execute/plain` — the laptop FFNN weight update through the
//!   ordinary executor;
//! * `execute/fault_tolerant_disabled` — the same run through the
//!   fault-tolerant wrapper with injection off, which is what a caller
//!   pays for keeping the recovery machinery permanently in the path;
//! * `execute/fault_tolerant_checkpoint_disabled` — the same, under
//!   the checkpoint policy, pinning that disabled injection skips the
//!   checkpoint clones too.
//!
//! The final `recovery overhead budget` line compares median run times
//! directly and reports OK/OVER against the 2% budget.

use criterion::{criterion_group, Criterion};
use matopt_core::{Cluster, FormatCatalog, ImplRegistry, NodeKind, PlanContext, RecoveryPolicy};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_fault_tolerant, execute_plan, DistRelation, FaultInjector, FtConfig};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_obs::Obs;
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Fixture {
    graph: matopt_core::ComputeGraph,
    annotation: matopt_core::Annotation,
    registry: ImplRegistry,
    catalog: FormatCatalog,
    inputs: HashMap<matopt_core::NodeId, DistRelation>,
}

fn fixture() -> Fixture {
    let registry = ImplRegistry::paper_default();
    let ffnn = ffnn_w2_update_graph(FfnnConfig::laptop(32)).expect("type-correct");
    let cluster = Cluster::simsql_like(10);
    let ctx = PlanContext::new(&registry, cluster);
    let catalog = FormatCatalog::paper_default().dense_only();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &catalog, &model);
    let opt = frontier_dp_beam(&ffnn.graph, &octx, 4000).expect("optimizes");

    let mut rng = seeded_rng(42);
    let mut inputs = HashMap::new();
    for (id, node) in ffnn.graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    Fixture {
        graph: ffnn.graph,
        annotation: opt.annotation,
        registry,
        catalog,
        inputs,
    }
}

fn run_ft(fx: &Fixture, policy: RecoveryPolicy) {
    let cluster = Cluster::simsql_like(10);
    let ctx = PlanContext::new(&fx.registry, cluster);
    let config = FtConfig {
        policy,
        ..FtConfig::default()
    };
    execute_fault_tolerant(
        &fx.graph,
        &fx.annotation,
        &fx.inputs,
        &ctx,
        &fx.catalog,
        &AnalyticalCostModel,
        FaultInjector::disabled(),
        &config,
        &Obs::disabled(),
    )
    .expect("executes");
}

fn bench_execute(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("recovery_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    g.bench_function("execute/plain", |b| {
        b.iter(|| {
            execute_plan(&fx.graph, &fx.annotation, &fx.inputs, &fx.registry).expect("executes")
        })
    });
    g.bench_function("execute/fault_tolerant_disabled", |b| {
        b.iter(|| run_ft(&fx, RecoveryPolicy::Lineage))
    });
    g.bench_function("execute/fault_tolerant_checkpoint_disabled", |b| {
        b.iter(|| run_ft(&fx, RecoveryPolicy::Checkpoint))
    });
    g.finish();
}

/// Direct budget check: best-of-N fault-tolerant-disabled run time
/// against the best-of-N plain run time, with the two paths measured
/// interleaved so machine drift hits both equally. The minimum is the
/// right estimator here: scheduler noise only ever *adds* time, so the
/// floor is the honest cost of each path.
fn overhead_budget_report() {
    let fx = fixture();
    let reps = 40;
    // Warm both paths once so neither pays first-touch costs.
    execute_plan(&fx.graph, &fx.annotation, &fx.inputs, &fx.registry).expect("executes");
    run_ft(&fx, RecoveryPolicy::Lineage);

    let mut plain = f64::INFINITY;
    let mut ft = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        execute_plan(&fx.graph, &fx.annotation, &fx.inputs, &fx.registry).expect("executes");
        plain = plain.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        run_ft(&fx, RecoveryPolicy::Lineage);
        ft = ft.min(t.elapsed().as_secs_f64());
    }

    let overhead = ft / plain - 1.0;
    println!(
        "recovery overhead budget: plain {:.3} ms, fault-tolerant(disabled) {:.3} ms -> {:+.3}% (budget 2%) -> {}",
        plain * 1e3,
        ft * 1e3,
        overhead * 100.0,
        if overhead < 0.02 { "OK" } else { "OVER" }
    );
}

criterion_group!(benches, bench_execute);

fn main() {
    benches();
    overhead_budget_report();
}
