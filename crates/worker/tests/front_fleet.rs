//! Serve-layer integration: a [`FrontDoor`] backed by a real process
//! fleet. A worker SIGKILLed mid-execute must not change the served
//! answer, the death must reach the front door's breaker accounting,
//! and drain must wait for in-flight remote waves.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use matopt_core::{
    BackoffPolicy, Cluster, ComputeGraph, FormatCatalog, ImplRegistry, NodeId, NodeKind,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::DistRelation;
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_serve::{ExecRequest, FrontDoor, FrontDoorConfig, PlanService, ServeConfig};
use matopt_worker::{FleetConfig, WorkerFleet};

fn service() -> Arc<PlanService> {
    Arc::new(PlanService::new(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        Cluster::simsql_like(4),
        Box::new(AnalyticalCostModel),
        ServeConfig::default(),
    ))
}

fn workload(seed: u64) -> (ComputeGraph, HashMap<NodeId, DistRelation>) {
    let graph = matopt_serve::protocol::workload_graph("ffnn-small:16", &Cluster::simsql_like(4))
        .expect("workload builds");
    let mut rng = seeded_rng(seed);
    let mut inputs = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    (graph, inputs)
}

fn fleet_config(workers: u32) -> FleetConfig {
    FleetConfig {
        workers,
        heartbeat_interval: Duration::from_millis(25),
        heartbeat_misses: 8,
        restart: BackoffPolicy {
            base_ms: 5,
            cap_ms: 40,
            max_attempts: 6,
        },
        worker_bin: std::path::PathBuf::from(env!("CARGO_BIN_EXE_matopt-workerd")),
        obs: None,
        on_death: None,
        seed: 0xf207_7d00_2001,
    }
}

#[test]
fn front_door_over_fleet_survives_kill_and_reports_death() {
    let (graph, inputs) = workload(0xBEEF);

    // In-process reference through its own front door.
    let reference = {
        let front = FrontDoor::new(service(), FrontDoorConfig::default());
        let resp = front
            .execute(&ExecRequest {
                tenant: "ref",
                graph: &graph,
                inputs: &inputs,
                input_key: 1,
                deadline: None,
            })
            .expect("reference execute");
        resp.outcome.sinks.clone()
    };

    // Fleet-backed front door with the breaker wired to worker deaths.
    let front = Arc::new(FrontDoor::new(service(), FrontDoorConfig::default()));
    let mut cfg = fleet_config(2);
    let death_front = Arc::clone(&front);
    cfg.on_death = Some(Arc::new(move |_worker| death_front.record_worker_death()));
    let fleet = WorkerFleet::spawn(cfg).expect("fleet spawns");
    front.attach_remote(fleet.clone());

    // SIGKILL worker 0 during its second dispatch, mid-execution.
    fleet.kill_worker_at_dispatch(0, 1);

    let resp = front
        .execute(&ExecRequest {
            tenant: "acme",
            graph: &graph,
            inputs: &inputs,
            input_key: 1,
            deadline: None,
        })
        .expect("fleet-backed execute");

    assert_eq!(
        resp.outcome.sinks.len(),
        reference.len(),
        "sink sets differ"
    );
    for (id, rel) in &reference {
        let got = resp.outcome.sinks.get(id).expect("sink present");
        assert_eq!(
            got.to_dense(),
            rel.to_dense(),
            "sink {id:?} diverged from the in-process reference"
        );
    }

    let stats = front.stats();
    assert!(
        stats.worker_deaths > 0,
        "worker death never reached the front door"
    );
    assert!(fleet.stats().deaths > 0, "fleet recorded no deaths");

    // Drain waits for in-flight remote waves; with the request done it
    // completes promptly and further work is refused.
    assert!(
        front.drain_and_wait(Duration::from_secs(2)),
        "drain timed out"
    );
    assert!(front.is_draining());
    fleet.shutdown();
}
