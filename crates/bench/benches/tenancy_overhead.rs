//! Overhead of the multi-tenant front door when tenancy is disabled.
//!
//! The acceptance bar is that routing an execution through
//! [`FrontDoor::execute`] with [`TenancyConfig::disabled`] costs < 2%
//! versus calling [`PlanService::execute`] directly. With tenancy off
//! the front door skips quota checks, fair queueing, and per-tenant
//! accounting entirely; what remains per request is one draining-flag
//! check, one breaker-state load, and the batching flight map — the
//! machinery must be free when unused.
//!
//! * `execute/service_direct` — the laptop FFNN weight update planned
//!   through the service (a cache hit, exactly like the front door
//!   pays) and executed straight on the engine with the same serving
//!   options the front door uses (`retain_values: false` — a server
//!   only needs the sinks);
//! * `execute/front_door_disabled` — the same request through the
//!   front door with tenancy disabled, which is what single-tenant
//!   deployments pay for the front door existing at all.
//!
//! The final `tenancy overhead budget` line compares best-of-N run
//! times directly and reports OK/OVER against the 2% budget.

use criterion::{criterion_group, Criterion};
use matopt_core::{Cluster, ComputeGraph, FormatCatalog, ImplRegistry, NodeId, NodeKind};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::DistRelation;
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_serve::{
    ExecRequest, FrontDoor, FrontDoorConfig, PlanService, ServeConfig, TenancyConfig,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Fixture {
    service: Arc<PlanService>,
    front: FrontDoor,
    graph: ComputeGraph,
    inputs: HashMap<NodeId, DistRelation>,
}

fn fixture() -> Fixture {
    let service = Arc::new(PlanService::new(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        Cluster::simsql_like(4),
        Box::new(AnalyticalCostModel),
        ServeConfig::default(),
    ));
    let front = FrontDoor::new(
        Arc::clone(&service),
        FrontDoorConfig {
            tenancy: TenancyConfig::disabled(),
            ..FrontDoorConfig::default()
        },
    );
    let graph = ffnn_w2_update_graph(FfnnConfig::laptop(32))
        .expect("type-correct")
        .graph;
    let mut rng = seeded_rng(42);
    let mut inputs = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    Fixture {
        service,
        front,
        graph,
        inputs,
    }
}

fn run_direct(fx: &Fixture) {
    let planned = fx.service.plan(&fx.graph).expect("plan");
    let outcome = matopt_engine::execute_plan_with(
        &fx.graph,
        &planned.plan.annotation,
        &fx.inputs,
        fx.service.registry(),
        fx.service.obs(),
        matopt_engine::ExecOptions {
            retain_values: false,
            ..Default::default()
        },
    )
    .expect("executes");
    fx.service.observe_runtime(
        planned.fingerprint,
        planned.plan.cost,
        outcome.total_seconds,
    );
}

fn run_front(fx: &Fixture) {
    fx.front
        .execute(&ExecRequest {
            tenant: "solo",
            graph: &fx.graph,
            inputs: &fx.inputs,
            input_key: 1,
            deadline: None,
        })
        .expect("executes");
}

fn bench_execute(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("tenancy_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    g.bench_function("execute/service_direct", |b| b.iter(|| run_direct(&fx)));
    g.bench_function("execute/front_door_disabled", |b| b.iter(|| run_front(&fx)));
    g.finish();
}

/// Direct budget check: best-of-N front-door run time against the
/// best-of-N direct run time, interleaved so machine drift hits both
/// equally. The minimum is the right estimator: scheduler noise only
/// ever *adds* time, so the floor is the honest cost of each path.
fn overhead_budget_report() {
    let fx = fixture();
    let reps = 40;
    // Warm both paths once so neither pays first-touch costs (and the
    // plan cache is hot for both).
    run_direct(&fx);
    run_front(&fx);

    let mut direct = f64::INFINITY;
    let mut fronted = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        run_direct(&fx);
        direct = direct.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        run_front(&fx);
        fronted = fronted.min(t.elapsed().as_secs_f64());
    }

    let overhead = fronted / direct - 1.0;
    println!(
        "tenancy overhead budget: direct {:.3} ms, front door(disabled) {:.3} ms -> {:+.3}% (budget 2%) -> {}",
        direct * 1e3,
        fronted * 1e3,
        overhead * 100.0,
        if overhead < 0.02 { "OK" } else { "OVER" }
    );
}

criterion_group!(benches, bench_execute);

fn main() {
    benches();
    overhead_budget_report();
}
