//! Cluster descriptions: the hardware model against which plans are
//! costed, checked for memory feasibility, and simulated.
//!
//! The paper runs SimSQL experiments on EC2 `r5d.2xlarge` machines
//! (8 cores, 68 GB RAM, NVMe SSD) and PlinyCompute/PyTorch/SystemDS
//! experiments on `r5dn.2xlarge` (8 cores, 64 GB, faster networking).
//! The two constructors [`Cluster::simsql_like`] and
//! [`Cluster::plinycompute_like`] encode those two system profiles: the
//! same hardware, but very different software overheads — SimSQL is a
//! Hadoop-based batch engine with large per-operator setup costs, while
//! PlinyCompute is an in-memory engine with millisecond dispatch.

/// The hardware/software profile of the distributed engine a plan will
/// run on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cluster {
    /// Number of worker machines.
    pub workers: usize,
    /// RAM available to the engine on each worker, in bytes.
    pub worker_ram_bytes: f64,
    /// Effective dense floating-point throughput per worker (flop/s)
    /// for parallel, chunk-level kernels.
    pub flops_per_sec: f64,
    /// Throughput of a single-threaded whole-matrix kernel call (one
    /// UDF invocation on one worker), flop/s.
    pub single_thread_flops_per_sec: f64,
    /// Network bandwidth in/out of one worker (bytes/s).
    pub net_bytes_per_sec: f64,
    /// Rate at which intermediate data can be materialized and re-read
    /// (bytes/s) — disk for SimSQL, memory-bus for PlinyCompute.
    pub inter_bytes_per_sec: f64,
    /// Fixed cost of processing one tuple through a relational operator
    /// (seconds) — the paper's feature (4): "each tuple tends to require
    /// a fixed overhead cost".
    pub tuple_overhead_sec: f64,
    /// Fixed startup cost per relational operator (seconds): job launch
    /// for Hadoop-based SimSQL, dispatch for PlinyCompute.
    pub op_setup_sec: f64,
    /// Largest matrix payload the engine will store in a single tuple,
    /// in bytes. The paper notes one "could not typically store a 40GB
    /// matrix in a single tuple".
    pub max_tuple_bytes: f64,
    /// Scratch space per worker for spilled intermediate data (the
    /// 300 GB NVMe SSD of the paper's EC2 instances). Plans whose
    /// intermediate data exceeds this *fail at runtime* — the paper's
    /// "Fail ... typically due to too much intermediate data".
    pub worker_disk_bytes: f64,
    /// Whether scratch space is reclaimed after each operator. Hadoop-
    /// based SimSQL materializes and retains every intermediate relation
    /// until the query finishes (`false`: spill accumulates across the
    /// plan); in-memory engines like PlinyCompute release scratch as
    /// soon as an operator completes (`true`: only the largest single
    /// operator counts).
    pub reclaim_scratch: bool,
}

impl Cluster {
    /// A SimSQL-like (Hadoop-based, disk-oriented) cluster of
    /// `r5d.2xlarge` workers. Used for the §8.2 plan-quality experiments.
    pub fn simsql_like(workers: usize) -> Self {
        Cluster {
            workers,
            worker_ram_bytes: 68e9,
            // 8 cores of JVM-hosted dense kernels backed by BLAS.
            flops_per_sec: 3.2e10,
            // One JVM thread running the matrix UDF.
            single_thread_flops_per_sec: 4.0e9,
            // 10 Gbit/s NIC, ~80% achievable.
            net_bytes_per_sec: 1.0e9,
            // NVMe SSD materialization path.
            inter_bytes_per_sec: 0.8e9,
            tuple_overhead_sec: 5.0e-4,
            // Hadoop job launch amortized per relational operator.
            op_setup_sec: 8.0,
            max_tuple_bytes: 8e9,
            worker_disk_bytes: 300e9,
            reclaim_scratch: false,
        }
    }

    /// A PlinyCompute-like (in-memory, low-latency) cluster of
    /// `r5dn.2xlarge` workers. Used for the §8.3 system comparisons.
    pub fn plinycompute_like(workers: usize) -> Self {
        Cluster {
            workers,
            worker_ram_bytes: 64e9,
            // Effective multi-threaded MKL throughput of the engine's
            // dense kernels (calibrated against Figures 11-12).
            flops_per_sec: 5.0e11,
            single_thread_flops_per_sec: 6.25e10,
            // 25 Gbit/s NIC on r5dn.
            net_bytes_per_sec: 2.5e9,
            // In-memory intermediates.
            inter_bytes_per_sec: 8e9,
            tuple_overhead_sec: 2.0e-5,
            op_setup_sec: 0.35,
            max_tuple_bytes: 8e9,
            worker_disk_bytes: 300e9,
            reclaim_scratch: true,
        }
    }

    /// A tiny deterministic profile for unit tests: one "second" per
    /// unit of every resource so feature values can be read off costs.
    pub fn unit_test(workers: usize) -> Self {
        Cluster {
            workers,
            worker_ram_bytes: 1e12,
            flops_per_sec: 1.0,
            single_thread_flops_per_sec: 1.0,
            net_bytes_per_sec: 1.0,
            inter_bytes_per_sec: 1.0,
            tuple_overhead_sec: 1.0,
            op_setup_sec: 0.0,
            max_tuple_bytes: 1e12,
            worker_disk_bytes: 1e15,
            reclaim_scratch: true,
        }
    }

    /// Number of workers that can productively share `chunks` units of
    /// work (you cannot use more workers than there are chunks).
    pub fn effective_workers(&self, chunks: f64) -> f64 {
        (self.workers as f64).min(chunks.max(1.0))
    }

    /// The same cluster with memory and disk limits lifted. Baseline
    /// planners use this to *construct* plans a real cluster would
    /// reject, so the simulator can then report the runtime failure the
    /// paper observed.
    pub fn with_unlimited_resources(mut self) -> Self {
        self.worker_ram_bytes = f64::INFINITY;
        self.worker_disk_bytes = f64::INFINITY;
        self.max_tuple_bytes = f64::INFINITY;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_workers_caps_at_chunk_count() {
        let c = Cluster::simsql_like(10);
        assert_eq!(c.effective_workers(3.0), 3.0);
        assert_eq!(c.effective_workers(100.0), 10.0);
        assert_eq!(c.effective_workers(0.0), 1.0);
    }

    #[test]
    fn profiles_differ_in_overheads() {
        let sim = Cluster::simsql_like(10);
        let pc = Cluster::plinycompute_like(10);
        assert!(sim.op_setup_sec > 10.0 * pc.op_setup_sec);
        assert!(sim.tuple_overhead_sec > pc.tuple_overhead_sec);
    }
}
