//! The sharded concurrent plan cache: fingerprint → `Arc<Optimized>`
//! with cost-aware eviction and epoch-based invalidation.
//!
//! **Eviction weight.** Every entry remembers the wall-clock seconds
//! its optimizer run took ([`Optimized::opt_seconds`]) — the seconds a
//! future hit *saves*. When a shard exceeds its entry or byte cap, the
//! entry with the lowest `opt_seconds / (1 + age)` is dropped, where
//! `age` is measured on a cache-wide logical clock that ticks once per
//! lookup or insert. An expensive plan must go unused for
//! proportionally longer than a cheap one before it becomes the
//! victim.
//!
//! **Epochs.** Invalidation never walks the shards. The cache keeps a
//! global epoch counter; every entry is stamped with the epoch it was
//! planned under, and a lookup that finds an entry from an older epoch
//! discards it as stale. Calibration updates, cluster reconfiguration
//! ([`matopt_core::Cluster::degraded`]), and any other event that
//! changes what the optimizer would produce simply bump the epoch.
//! Adaptive re-plan feedback is finer-grained: a re-planned suffix
//! proves one specific entry's statistics wrong, so it poisons that
//! fingerprint alone.

use crate::Fingerprint;
use matopt_opt::Optimized;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing and sharding of a [`PlanCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum cached plans (across all shards).
    pub max_entries: usize,
    /// Maximum estimated bytes of cached annotations (across all
    /// shards).
    pub max_bytes: u64,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1024,
            max_bytes: 64 << 20,
            shards: 16,
        }
    }
}

/// Monotonic counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that returned a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries evicted by the entry/byte caps.
    pub evicted: u64,
    /// Entries discarded because their epoch was stale.
    pub stale_evicted: u64,
    /// Entries poisoned by adaptive re-plan feedback.
    pub poisoned: u64,
}

struct Entry {
    plan: Arc<Optimized>,
    bytes: u64,
    epoch: u64,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Fingerprint, Entry>,
    bytes: u64,
}

/// The sharded fingerprint → plan cache.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    config: CacheConfig,
    epoch: AtomicU64,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
    stale_evicted: AtomicU64,
    poisoned: AtomicU64,
}

/// Estimated resident bytes of a cached plan: the annotation dominates
/// (per-vertex impl choice + per-edge transforms); the fixed fields are
/// noise. An estimate is fine — the byte cap bounds memory order, not
/// an allocator ledger.
pub fn plan_bytes(plan: &Optimized) -> u64 {
    let choices = plan.annotation.choices.len() as u64;
    let transforms: u64 = plan
        .annotation
        .choices
        .iter()
        .flatten()
        .map(|c| c.input_transforms.len() as u64)
        .sum();
    96 + choices * 56 + transforms * 24
}

impl PlanCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            config: CacheConfig { shards, ..config },
            epoch: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            stale_evicted: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Starts a new epoch: every entry planned before this call becomes
    /// stale and will be discarded on its next lookup. Returns the new
    /// epoch.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[fp.shard(self.shards.len())]
    }

    /// Looks up a fingerprint, refreshing its recency on a hit. A
    /// stale-epoch entry is removed and reported as a miss.
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<Optimized>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let epoch = self.epoch();
        let mut shard = self.shard(fp).lock().expect("cache shard lock");
        match shard.map.get_mut(&fp) {
            Some(entry) if entry.epoch == epoch => {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.plan))
            }
            Some(_) => {
                let entry = shard.map.remove(&fp).expect("entry present");
                shard.bytes -= entry.bytes;
                self.stale_evicted.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a plan stamped with the epoch it was *planned under* —
    /// pass the epoch observed before the optimizer ran, so an
    /// invalidation racing the optimization leaves the entry already
    /// stale instead of serving a pre-invalidation plan. Returns how
    /// many victims the caps evicted.
    pub fn insert(&self, fp: Fingerprint, plan: Arc<Optimized>, epoch: u64) -> usize {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let bytes = plan_bytes(&plan);
        let per_shard_entries = self.config.max_entries.div_ceil(self.shards.len()).max(1);
        let per_shard_bytes = (self.config.max_bytes / self.shards.len() as u64).max(bytes);
        let mut shard = self.shard(fp).lock().expect("cache shard lock");
        if let Some(old) = shard.map.insert(
            fp,
            Entry {
                plan,
                bytes,
                epoch,
                last_used: now,
            },
        ) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;

        let mut evicted = 0usize;
        while shard.map.len() > per_shard_entries || shard.bytes > per_shard_bytes {
            // Victim: lowest optimizer-seconds-saved × recency. Stale
            // epochs go first — a stale entry saves nothing.
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| **k != fp || shard.map.len() == 1)
                .min_by(|(_, a), (_, b)| {
                    let current = self.epoch();
                    weight(a, now, current)
                        .partial_cmp(&weight(b, now, current))
                        .expect("weights are finite")
                })
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            let entry = shard.map.remove(&victim).expect("victim present");
            shard.bytes -= entry.bytes;
            evicted += 1;
            if victim == fp {
                break; // the new entry itself was the cheapest: stop
            }
        }
        self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Removes one fingerprint (adaptive re-plan feedback proved its
    /// statistics wrong). Returns whether an entry was present.
    pub fn poison(&self, fp: Fingerprint) -> bool {
        let mut shard = self.shard(fp).lock().expect("cache shard lock");
        if let Some(entry) = shard.map.remove(&fp) {
            shard.bytes -= entry.bytes;
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Live entries across all shards.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// Estimated cached bytes across all shards.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").bytes)
            .sum()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            stale_evicted: self.stale_evicted.load(Ordering::Relaxed),
            poisoned: self.poisoned.load(Ordering::Relaxed),
        }
    }

    /// Every live current-epoch entry, for persistence.
    pub fn snapshot(&self) -> Vec<(Fingerprint, Arc<Optimized>)> {
        let epoch = self.epoch();
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard lock");
            for (fp, entry) in &shard.map {
                if entry.epoch == epoch {
                    out.push((*fp, Arc::clone(&entry.plan)));
                }
            }
        }
        out.sort_by_key(|(fp, _)| *fp);
        out
    }
}

/// The eviction weight: optimizer seconds a hit saves, decayed by
/// logical-clock age. Stale-epoch entries weigh nothing.
fn weight(entry: &Entry, now: u64, epoch: u64) -> f64 {
    if entry.epoch != epoch {
        return -1.0;
    }
    let age = now.saturating_sub(entry.last_used) as f64;
    entry.plan.opt_seconds.max(0.0) / (1.0 + age)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_core::Annotation;

    fn plan(opt_seconds: f64) -> Arc<Optimized> {
        Arc::new(Optimized {
            annotation: Annotation::default(),
            cost: 1.0,
            beam_truncated: 0,
            timed_out: false,
            opt_seconds,
        })
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = PlanCache::new(CacheConfig::default());
        assert!(cache.get(fp(1)).is_none());
        cache.insert(fp(1), plan(0.1), cache.epoch());
        assert!(cache.get(fp(1)).is_some());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates_lazily() {
        let cache = PlanCache::new(CacheConfig::default());
        cache.insert(fp(7), plan(0.1), cache.epoch());
        cache.bump_epoch();
        assert!(cache.get(fp(7)).is_none(), "stale epoch must miss");
        assert_eq!(cache.counters().stale_evicted, 1);
        assert_eq!(cache.entries(), 0, "stale entry is dropped, not kept");
    }

    #[test]
    fn entry_planned_before_invalidation_is_already_stale() {
        let cache = PlanCache::new(CacheConfig::default());
        let planned_under = cache.epoch();
        cache.bump_epoch(); // cluster changed while the optimizer ran
        cache.insert(fp(3), plan(0.1), planned_under);
        assert!(cache.get(fp(3)).is_none());
    }

    #[test]
    fn poison_removes_one_entry() {
        let cache = PlanCache::new(CacheConfig::default());
        cache.insert(fp(1), plan(0.1), cache.epoch());
        cache.insert(fp(2), plan(0.1), cache.epoch());
        assert!(cache.poison(fp(1)));
        assert!(!cache.poison(fp(1)));
        assert!(cache.get(fp(1)).is_none());
        assert!(cache.get(fp(2)).is_some());
        assert_eq!(cache.counters().poisoned, 1);
    }

    #[test]
    fn eviction_prefers_cheap_and_cold_plans() {
        // Single shard, 3 entries max: the cheap, old plan loses to the
        // expensive, old plan.
        let cache = PlanCache::new(CacheConfig {
            max_entries: 3,
            max_bytes: u64::MAX,
            shards: 1,
        });
        let e = cache.epoch();
        cache.insert(fp(1), plan(10.0), e); // expensive, oldest
        cache.insert(fp(2), plan(0.001), e); // cheap
        cache.insert(fp(3), plan(5.0), e);
        cache.insert(fp(4), plan(5.0), e); // forces one eviction
        assert_eq!(cache.entries(), 3);
        assert!(cache.get(fp(2)).is_none(), "cheap plan is the victim");
        assert!(cache.get(fp(1)).is_some(), "expensive plan survives");
        assert_eq!(cache.counters().evicted, 1);
    }

    #[test]
    fn recency_can_outweigh_cost() {
        let cache = PlanCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: u64::MAX,
            shards: 1,
        });
        let e = cache.epoch();
        cache.insert(fp(1), plan(1.0), e);
        cache.insert(fp(2), plan(0.9), e);
        // Touch the cheaper plan many times; age the expensive one.
        for _ in 0..2048 {
            cache.get(fp(2));
        }
        cache.insert(fp(3), plan(0.5), e);
        assert!(
            cache.get(fp(2)).is_some(),
            "hot entry survives despite lower optimizer cost"
        );
        assert!(cache.get(fp(1)).is_none(), "cold entry is the victim");
    }

    #[test]
    fn byte_cap_evicts() {
        let p = plan(1.0);
        let sz = plan_bytes(&p);
        let cache = PlanCache::new(CacheConfig {
            max_entries: usize::MAX,
            max_bytes: sz * 2,
            shards: 1,
        });
        let e = cache.epoch();
        cache.insert(fp(1), Arc::clone(&p), e);
        cache.insert(fp(2), Arc::clone(&p), e);
        cache.insert(fp(3), Arc::clone(&p), e);
        assert!(cache.bytes() <= sz * 2);
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn snapshot_lists_only_live_entries() {
        let cache = PlanCache::new(CacheConfig::default());
        cache.insert(fp(1), plan(0.1), cache.epoch());
        cache.bump_epoch();
        cache.insert(fp(2), plan(0.1), cache.epoch());
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, fp(2));
    }
}
