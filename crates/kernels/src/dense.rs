//! Row-major dense matrices and the compute kernels over them.

use std::fmt;

/// A dense, row-major, `f64` matrix.
///
/// This is the workhorse value type of the execution engine: every chunk
/// of every physical layout (tiles, strips, single-tuple matrices)
/// ultimately stores its dense payload as a `DenseMatrix`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseMatrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for r in 0..self.rows {
                write!(f, "  [")?;
                for c in 0..self.cols {
                    if c > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{:.4}", self.get(r, c))?;
                }
                writeln!(f, "]")?;
            }
        }
        Ok(())
    }
}

/// GEMM micro-tile edge: block size used by the cache-blocked
/// reference multiply.
const GEMM_BLOCK: usize = 64;

/// Below this many multiply-adds (`m·k·n`), or when any dimension is
/// thinner than the default register tile, the packing overhead
/// outweighs the microkernel and [`DenseMatrix::matmul`] uses the
/// blocked reference kernel instead. This is the *untuned default*;
/// the live threshold comes from the tuning catalog
/// ([`crate::tune::Thresholds`]).
pub(crate) const DEFAULT_PACK_MIN_FLOPS: u64 = (6 * 8 * 6 * 8) as u64 * 16;

/// With the `parallel` feature, products at least this large
/// (`2·m·k·n` flops, ≈ a 200³ GEMM) fan out over row panels on the
/// shared pool; smaller ones stay on the calling thread, which also
/// keeps chunk-granular products serial inside already-parallel
/// executor batches. Untuned default for
/// [`crate::tune::Thresholds::par_min_flops`].
pub(crate) const DEFAULT_PAR_MIN_FLOPS: u64 = 16_000_000;

/// A packed-GEMM blocking variant: the register microkernel tile
/// (`mr × nr`) plus the cache blocking (`kc`-deep k-slices swept over
/// `mc`-row L2 blocks).
///
/// The autotuner ([`crate::tune`]) searches [`GemmBlocking::CANDIDATES`]
/// per shape class; [`GemmBlocking::DEFAULT`] is the fixed blocking the
/// kernel shipped with and remains the untuned fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Register-tile rows (4, 6 or 8; other values fall back to 6×8).
    pub mr: usize,
    /// Register-tile columns (paired with `mr` as 4×8, 6×8 or 8×6).
    pub nr: usize,
    /// k-dimension block depth: panels are consumed in `kc`-deep slices
    /// so one A slice (`mr·kc` doubles) plus one B slice (`nr·kc`
    /// doubles) stay L1-resident while the microkernel streams them.
    pub kc: usize,
    /// Row-block height (rounded down to a multiple of `mr` at
    /// dispatch): the packed A block a `kc`-slice works over stays
    /// L2-resident while every B panel slice sweeps across it. Without
    /// this blocking each row panel re-streams the whole packed B from
    /// memory, which saturates bandwidth long before the FMA units — at
    /// 1024³ that is ~1.4 GB of B traffic versus ~100 MB blocked.
    pub mc: usize,
}

impl GemmBlocking {
    /// The fixed blocking the packed kernel shipped with
    /// (MR=6/NR=8/KC=256/MC=96): one A slice (12 KB) plus one B slice
    /// (16 KB) fit L1, and the `MC×KC` A block (~192 KB) fits L2.
    pub const DEFAULT: GemmBlocking = GemmBlocking {
        mr: 6,
        nr: 8,
        kc: 256,
        mc: 96,
    };

    /// The candidate grid the autotuner searches: three microkernel
    /// register tiles (4×8, 6×8, 8×6) crossed with shallow/default/deep
    /// cache blockings (KC 128/256/512, MC scaled to keep the A block
    /// roughly L2-sized). Index 0 is [`GemmBlocking::DEFAULT`]. Catalog
    /// entries refer to candidates by index, so the order is part of
    /// the `kernels.tune` on-disk format: append new candidates, never
    /// reorder.
    pub const CANDIDATES: [GemmBlocking; 9] = [
        GemmBlocking::DEFAULT,
        GemmBlocking {
            mr: 4,
            nr: 8,
            kc: 256,
            mc: 96,
        },
        GemmBlocking {
            mr: 8,
            nr: 6,
            kc: 256,
            mc: 96,
        },
        GemmBlocking {
            mr: 6,
            nr: 8,
            kc: 128,
            mc: 60,
        },
        GemmBlocking {
            mr: 6,
            nr: 8,
            kc: 512,
            mc: 192,
        },
        GemmBlocking {
            mr: 4,
            nr: 8,
            kc: 128,
            mc: 64,
        },
        GemmBlocking {
            mr: 4,
            nr: 8,
            kc: 512,
            mc: 192,
        },
        GemmBlocking {
            mr: 8,
            nr: 6,
            kc: 128,
            mc: 64,
        },
        GemmBlocking {
            mr: 8,
            nr: 6,
            kc: 512,
            mc: 192,
        },
    ];

    /// Human-readable form, e.g. `6x8/kc256/mc96`.
    pub fn label(&self) -> String {
        format!("{}x{}/kc{}/mc{}", self.mr, self.nr, self.kc, self.mc)
    }
}

/// Fused multiply-add when the build target has hardware FMA (see
/// `.cargo/config.toml`), plain multiply-add otherwise — without the
/// `fma` target feature `f64::mul_add` lowers to a libm call that is
/// far slower than the multiply it fuses.
#[inline(always)]
fn fmadd(acc: f64, a: f64, b: f64) -> f64 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Which GEMM implementation [`DenseMatrix::matmul`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmMode {
    /// The packed, register-blocked microkernel (default).
    Packed,
    /// The pre-packing cache-blocked i-k-j kernel. Used by benchmarks
    /// to measure the packed kernel's speedup against the historical
    /// baseline in the same process.
    Reference,
}

static GEMM_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Selects the process-wide GEMM implementation. Intended for
/// benchmarks and A/B tests; production code leaves the default
/// ([`GemmMode::Packed`]) in place.
///
/// **Deprecated as a control surface**: concurrent executions that flip
/// this global race each other. New code should thread an explicit
/// [`crate::tune::KernelConfig`] (e.g. via the engine's `ExecOptions`)
/// instead; the global survives only as the default the CLI path reads
/// when no config handle is supplied.
pub fn set_gemm_mode(mode: GemmMode) {
    let v = match mode {
        GemmMode::Packed => 0,
        GemmMode::Reference => 1,
    };
    GEMM_MODE.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The current process-wide GEMM implementation.
pub fn gemm_mode() -> GemmMode {
    match GEMM_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => GemmMode::Packed,
        _ => GemmMode::Reference,
    }
}

/// Packs `b` (row-major `k × n`) into column panels of width `NR`:
/// panel `p` covers columns `p*NR..p*NR+NR` and stores element
/// `(kk, c)` at `p*k*NR + kk*NR + c`. Columns past `n` are zero, so
/// the microkernel can always read full panels.
fn pack_b_panels<const NR: usize>(b: &[f64], k: usize, n: usize) -> Vec<f64> {
    let np = n.div_ceil(NR);
    let mut packed = vec![0.0; np * k * NR];
    for p in 0..np {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let panel = &mut packed[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            let brow = &b[kk * n + j0..kk * n + j0 + w];
            panel[kk * NR..kk * NR + w].copy_from_slice(brow);
        }
    }
    packed
}

/// Packs every `MR`-row panel of `a` (row-major `m × k`) into
/// k-major order: panel `ip` covers rows `ip*MR..ip*MR+MR` and stores
/// element `(kk, r)` at `ip*k*MR + kk*MR + r`. Rows past `m` are
/// zero-padded so the microkernel can always read full panels.
fn pack_a_panels<const MR: usize>(a: &[f64], m: usize, k: usize) -> Vec<f64> {
    let mp = m.div_ceil(MR);
    let mut packed = vec![0.0; mp * k * MR];
    for ip in 0..mp {
        let i0 = ip * MR;
        let h = MR.min(m - i0);
        let panel = &mut packed[ip * k * MR..(ip + 1) * k * MR];
        for r in 0..h {
            let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
            for (kk, v) in arow.iter().enumerate() {
                panel[kk * MR + r] = *v;
            }
        }
    }
    packed
}

/// Register-blocked `MR×NR` microkernel: multiplies a `kc`-deep slice
/// of one packed A row panel with the matching slice of one packed B
/// column panel, accumulating all `MR*NR` partial sums in registers
/// across the `kc` loop. With FMA in the target feature set each
/// update is a single fused multiply-add.
///
/// `inline(never)` is deliberate: compiled standalone (one
/// monomorphization per register tile), LLVM's SLP vectorizer turns
/// the accumulator updates into packed broadcast-FMA instructions;
/// inlined into the panel loop it degrades to scalar FMAs. The call
/// overhead is amortized over the `kc` loop.
#[inline(never)]
fn microkernel<const MR: usize, const NR: usize>(
    acc: &mut [[f64; NR]; MR],
    apack: &[f64],
    bpanel: &[f64],
    kc: usize,
) {
    for (a, b) in apack.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                acc[r][c] = fmadd(acc[r][c], ar, b[c]);
            }
        }
    }
}

/// Computes output rows `i0..i0+mblk` (an `mc` block, `i0` a multiple
/// of `mc`) into `out_rows` (row-major, width `n`, local row 0 =
/// global row `i0`). Loop order is `pc → jr → ir`: one `kc`-deep B
/// panel slice (L1) is reused across every row panel of the block
/// while the block's packed A slice stays L2-resident.
///
/// Partial sums for `pc > 0` round-trip through `out_rows`, which is
/// exact for `f64`; every output element still accumulates its `k`
/// terms in plain ascending order with the same fused multiply-add,
/// so the result is bit-identical however the blocks are swept,
/// whatever the `MR×NR/kc/mc` blocking, and however many threads
/// sweep them.
#[allow(clippy::too_many_arguments)]
fn gemm_mc_block<const MR: usize, const NR: usize>(
    apack: &[f64],
    bpack: &[f64],
    i0: usize,
    mblk: usize,
    k: usize,
    n: usize,
    kc: usize,
    out_rows: &mut [f64],
) {
    let np = n.div_ceil(NR);
    for (pc, kb) in (0..k).step_by(kc).enumerate() {
        let kcur = kc.min(k - kb);
        for p in 0..np {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let bslice = &bpack[p * k * NR + kb * NR..];
            for ir in (0..mblk).step_by(MR) {
                let h = MR.min(mblk - ir);
                let aslice = &apack[(i0 + ir) / MR * (k * MR) + kb * MR..];
                let mut acc = [[0.0f64; NR]; MR];
                if pc > 0 {
                    for r in 0..h {
                        let row = &out_rows[(ir + r) * n + j0..(ir + r) * n + j0 + w];
                        acc[r][..w].copy_from_slice(row);
                    }
                }
                microkernel::<MR, NR>(&mut acc, aslice, bslice, kcur);
                for r in 0..h {
                    out_rows[(ir + r) * n + j0..(ir + r) * n + j0 + w]
                        .copy_from_slice(&acc[r][..w]);
                }
            }
        }
    }
}

/// Packed-GEMM driver for one register-tile monomorphization: packs
/// both operands, then sweeps `mc`-row blocks (fanning out over the
/// shared pool for large products when the `parallel` feature is on).
fn gemm_packed<const MR: usize, const NR: usize>(
    lhs: &DenseMatrix,
    rhs: &DenseMatrix,
    kc: usize,
    mc: usize,
    par_min_flops: u64,
) -> DenseMatrix {
    let (m, k, n) = (lhs.rows, lhs.cols, rhs.cols);
    let mut out = DenseMatrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    let bpack = pack_b_panels::<NR>(&rhs.data, k, n);
    let apack = pack_a_panels::<MR>(&lhs.data, m, k);
    #[cfg(feature = "parallel")]
    {
        let flops = 2u64
            .saturating_mul(m as u64)
            .saturating_mul(k as u64)
            .saturating_mul(n as u64);
        let pool = matopt_pool::Pool::global();
        if pool.parallelism() > 1 && flops >= par_min_flops {
            use std::sync::Arc;
            let blocks = m.div_ceil(mc);
            let apack = Arc::new(apack);
            let bpack = Arc::new(bpack);
            let results = pool.map(blocks, move |blk| {
                let i0 = blk * mc;
                let mblk = mc.min(m - i0);
                let mut rows = vec![0.0; mblk * n];
                gemm_mc_block::<MR, NR>(&apack, &bpack, i0, mblk, k, n, kc, &mut rows);
                rows
            });
            for (blk, rows) in results.into_iter().enumerate() {
                let i0 = blk * mc;
                out.data[i0 * n..i0 * n + rows.len()].copy_from_slice(&rows);
            }
            return out;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = par_min_flops;
    for i0 in (0..m).step_by(mc) {
        let mblk = mc.min(m - i0);
        gemm_mc_block::<MR, NR>(
            &apack,
            &bpack,
            i0,
            mblk,
            k,
            n,
            kc,
            &mut out.data[i0 * n..(i0 + mblk) * n],
        );
    }
    out
}

/// `true` when a product of this shape is worth routing through the
/// packed kernel: no dimension thinner than the default register tile
/// and at least `pack_min_flops` multiply-adds.
pub(crate) fn worth_packing(m: usize, k: usize, n: usize, pack_min_flops: u64) -> bool {
    m >= GemmBlocking::DEFAULT.mr
        && n >= GemmBlocking::DEFAULT.nr
        && k >= GemmBlocking::DEFAULT.mr
        && m.saturating_mul(k).saturating_mul(n) as u64 >= pack_min_flops
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of the given order.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "dense payload length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        DenseMatrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing storage.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the row-major backing storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads the entry at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The fraction of entries that are non-zero (1.0 = fully dense).
    pub fn measured_sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let nnz = self.data.iter().filter(|v| **v != 0.0).count();
        nnz as f64 / self.data.len() as f64
    }

    /// Matrix multiply `self × rhs`.
    ///
    /// Equivalent to [`DenseMatrix::matmul_with`] under the process
    /// default [`crate::tune::KernelConfig::global`]: products worth
    /// packing go through the packed, register-blocked microkernel
    /// ([`DenseMatrix::matmul_packed`]) — with the blocking the global
    /// tuning catalog picked for the shape class, if any — and small or
    /// degenerate shapes (or a [`set_gemm_mode`] pin) fall back to the
    /// cache-blocked reference kernel
    /// ([`DenseMatrix::matmul_reference`]).
    ///
    /// ```
    /// use matopt_kernels::DenseMatrix;
    /// let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
    /// let i = DenseMatrix::identity(2);
    /// assert!(a.matmul(&i).approx_eq(&a, 0.0));
    /// ```
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.matmul_with(rhs, &crate::tune::KernelConfig::global())
    }

    /// The historical cache-blocked i-k-j GEMM: no packing, no fused
    /// multiply-add. Kept as the correctness oracle and the baseline
    /// the packed kernel's speedup is measured against.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul_reference(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        // Blocked i-k-j traversal: the inner j-loop streams a row of rhs
        // and a row of out, which is optimal for row-major storage.
        // (Indexed loops are intentional here: the blocking structure is
        // clearer than nested iterator adapters.)
        #[allow(clippy::needless_range_loop)]
        for ib in (0..m).step_by(GEMM_BLOCK) {
            let imax = (ib + GEMM_BLOCK).min(m);
            for kb in (0..k).step_by(GEMM_BLOCK) {
                let kmax = (kb + GEMM_BLOCK).min(k);
                for jb in (0..n).step_by(GEMM_BLOCK) {
                    let jmax = (jb + GEMM_BLOCK).min(n);
                    for i in ib..imax {
                        let arow = &self.data[i * k..(i + 1) * k];
                        let orow = &mut out.data[i * n..(i + 1) * n];
                        for kk in kb..kmax {
                            let aik = arow[kk];
                            if aik == 0.0 {
                                continue;
                            }
                            let brow = &rhs.data[kk * n..(kk + 1) * n];
                            for j in jb..jmax {
                                orow[j] += aik * brow[j];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Packed GEMM under the default blocking
    /// ([`GemmBlocking::DEFAULT`]): copies B into `NR`-wide column
    /// panels and A into k-major `MR`-row panels, then drives a
    /// register-blocked `MR×NR` fused-multiply-add microkernel over
    /// cache-blocked (`MC×KC`) sweeps. With the `parallel` feature
    /// enabled, row blocks fan out over the shared work-stealing pool
    /// for large products; results are bit-identical to the serial
    /// packed path because every output element accumulates its `k`
    /// terms in the same ascending order regardless of blocking or
    /// thread count.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul_packed(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.matmul_packed_with(rhs, GemmBlocking::DEFAULT)
    }

    /// Packed GEMM under an explicit blocking variant. All variants are
    /// bit-identical to [`DenseMatrix::matmul_packed`] (the ascending-k
    /// accumulation invariant — see [`GemmBlocking`]); they differ only
    /// in throughput, which is exactly what the autotuner measures.
    ///
    /// Unknown register tiles fall back to the default 6×8 tile;
    /// `mc` is rounded down to a non-zero multiple of `mr` and `kc`
    /// clamped to at least 1, so any `GemmBlocking` value is safe.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul_packed_with(&self, rhs: &DenseMatrix, blocking: GemmBlocking) -> DenseMatrix {
        self.matmul_packed_impl(rhs, blocking, DEFAULT_PAR_MIN_FLOPS)
    }

    /// [`DenseMatrix::matmul_packed_with`] with an explicit
    /// parallel-fan-out threshold (from the tuning catalog's
    /// thresholds when called via [`DenseMatrix::matmul_with`]).
    pub(crate) fn matmul_packed_impl(
        &self,
        rhs: &DenseMatrix,
        blocking: GemmBlocking,
        par_min_flops: u64,
    ) -> DenseMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let kc = blocking.kc.max(1);
        match (blocking.mr, blocking.nr) {
            (4, 8) => {
                gemm_packed::<4, 8>(self, rhs, kc, (blocking.mc / 4).max(1) * 4, par_min_flops)
            }
            (8, 6) => {
                gemm_packed::<8, 6>(self, rhs, kc, (blocking.mc / 8).max(1) * 8, par_min_flops)
            }
            (6, 8) => {
                gemm_packed::<6, 8>(self, rhs, kc, (blocking.mc / 6).max(1) * 6, par_min_flops)
            }
            _ => gemm_packed::<6, 8>(
                self,
                rhs,
                GemmBlocking::DEFAULT.kc,
                GemmBlocking::DEFAULT.mc,
                par_min_flops,
            ),
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        // Block the traversal so both source and destination stay cache
        // resident for large matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Elementwise binary combination with another matrix of equal shape.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn zip_with(&self, rhs: &DenseMatrix, f: impl Fn(f64, f64) -> f64) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "elementwise shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| f(*a, *b))
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// In-place elementwise sum: `self += rhs`. Avoids the fresh
    /// allocation [`DenseMatrix::add`] pays, which matters when a
    /// tile-product accumulator is folded over many partials.
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn add_assign(&mut self, rhs: &DenseMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "elementwise shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += *b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, rhs: &DenseMatrix) -> DenseMatrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Multiply every entry by a scalar.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        self.map(|v| v * alpha)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> DenseMatrix {
        self.map(|v| -v)
    }

    /// Rectified linear unit: `max(v, 0)` elementwise.
    pub fn relu(&self) -> DenseMatrix {
        self.map(|v| if v > 0.0 { v } else { 0.0 })
    }

    /// Derivative of relu: `1` where the entry is positive, else `0`.
    pub fn relu_grad(&self) -> DenseMatrix {
        self.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
    }

    /// Logistic sigmoid elementwise.
    pub fn sigmoid(&self) -> DenseMatrix {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> DenseMatrix {
        self.map(|v| v.exp())
    }

    /// Numerically-stable row-wise softmax.
    ///
    /// Each row is shifted by its maximum before exponentiation so very
    /// large activations do not overflow.
    pub fn softmax_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Column vector containing the sum of each row (an `rows × 1` matrix).
    pub fn row_sums(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }

    /// Row vector containing the sum of each column (a `1 × cols` matrix).
    pub fn col_sums(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(1, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, v) in row.iter().enumerate() {
                out.data[c] += *v;
            }
        }
        out
    }

    /// Adds a `1 × cols` row vector to every row (bias addition).
    ///
    /// # Panics
    /// Panics when `bias` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&self, bias: &DenseMatrix) -> DenseMatrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(bias.data.iter()) {
                *v += *b;
            }
        }
        out
    }

    /// Copies the rectangular block starting at `(r0, c0)` of shape
    /// `nr × nc`, clamping at the matrix boundary (edge blocks of a tiling
    /// may therefore be smaller than requested).
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> DenseMatrix {
        let r1 = (r0 + nr).min(self.rows);
        let c1 = (c0 + nc).min(self.cols);
        assert!(r0 <= r1 && c0 <= c1, "block origin out of range");
        let mut out = DenseMatrix::zeros(r1 - r0, c1 - c0);
        for (i, r) in (r0..r1).enumerate() {
            let src = &self.data[r * self.cols + c0..r * self.cols + c1];
            out.data[i * out.cols..(i + 1) * out.cols].copy_from_slice(src);
        }
        out
    }

    /// Writes `block` into this matrix with its top-left corner at
    /// `(r0, c0)`.
    ///
    /// # Panics
    /// Panics when the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &DenseMatrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block does not fit at ({r0},{c0})"
        );
        for r in 0..block.rows {
            let dst_off = (r0 + r) * self.cols + c0;
            self.data[dst_off..dst_off + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Reassembles a matrix of shape `rows × cols` from blocks keyed by
    /// their tile coordinates, where tile `(i, j)` has its top-left corner
    /// at `(i * tile_rows, j * tile_cols)`.
    pub fn from_blocks(
        rows: usize,
        cols: usize,
        tile_rows: usize,
        tile_cols: usize,
        blocks: impl IntoIterator<Item = ((usize, usize), DenseMatrix)>,
    ) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(rows, cols);
        for ((ti, tj), b) in blocks {
            out.set_block(ti * tile_rows, tj * tile_cols, &b);
        }
        out
    }

    /// Frobenius norm of the difference with `rhs`, used by tests to
    /// compare plans executed under different layouts.
    pub fn frobenius_distance(&self, rhs: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// `true` when every entry matches `rhs` within `tol` (relative for
    /// large magnitudes, absolute near zero).
    pub fn approx_eq(&self, rhs: &DenseMatrix, tol: f64) -> bool {
        if (self.rows, self.cols) != (rhs.rows, rhs.cols) {
            return false;
        }
        self.data
            .iter()
            .zip(rhs.data.iter())
            .all(|(a, b)| crate::approx_eq(*a, *b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn matmul_small_known_values() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_on_non_block_multiple_dims() {
        let a = DenseMatrix::from_fn(67, 129, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        let b = DenseMatrix::from_fn(129, 71, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.approx_eq(&slow, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_fn(5, 5, |r, c| (r * 5 + c) as f64);
        let i = DenseMatrix::identity(5);
        assert!(a.matmul(&i).approx_eq(&a, 0.0));
        assert!(i.matmul(&a).approx_eq(&a, 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn packed_matches_reference_on_odd_shapes() {
        // Shapes chosen to exercise every panel-edge case: dimensions
        // that are not multiples of MR/NR, thin edges barely over the
        // register tile, and a square block. Packed uses FMA while the
        // reference kernel rounds each multiply and add separately, so
        // the comparison is approximate.
        for (m, k, n) in [
            (67, 129, 71),
            (4, 257, 4),
            (5, 4, 9),
            (64, 64, 64),
            (33, 7, 130),
        ] {
            let a = DenseMatrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
            let b = DenseMatrix::from_fn(k, n, |r, c| ((r * 17 + c * 3) % 11) as f64 - 5.0);
            let packed = a.matmul_packed(&b);
            let reference = a.matmul_reference(&b);
            assert!(
                packed.approx_eq(&reference, 1e-12),
                "packed vs reference mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_dispatch_respects_gemm_mode_and_size_gate() {
        // Tiny products route to the reference kernel regardless of
        // mode; large ones follow the mode switch. Both kernels are
        // correct, so the observable contract is just that results
        // agree with the naive oracle under either mode.
        let a = DenseMatrix::from_fn(40, 40, |r, c| ((r * 5 + c) % 7) as f64 - 3.0);
        let b = DenseMatrix::from_fn(40, 40, |r, c| ((r * 3 + c * 11) % 5) as f64 - 2.0);
        let slow = naive_matmul(&a, &b);
        assert_eq!(gemm_mode(), GemmMode::Packed);
        assert!(a.matmul(&b).approx_eq(&slow, 1e-12));
        set_gemm_mode(GemmMode::Reference);
        assert_eq!(gemm_mode(), GemmMode::Reference);
        assert!(a.matmul(&b).approx_eq(&slow, 1e-12));
        set_gemm_mode(GemmMode::Packed);
    }

    #[test]
    fn packed_handles_degenerate_and_zero_dims() {
        let a = DenseMatrix::zeros(0, 5);
        let b = DenseMatrix::zeros(5, 4);
        let c = a.matmul_packed(&b);
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let a = DenseMatrix::from_fn(6, 5, |r, c| (r + c) as f64);
        let b = DenseMatrix::zeros(5, 0);
        let c = a.matmul_packed(&b);
        assert_eq!((c.rows(), c.cols()), (6, 0));
    }

    #[test]
    fn add_assign_matches_add() {
        let a = DenseMatrix::from_fn(9, 7, |r, c| (r * 7 + c) as f64);
        let b = DenseMatrix::from_fn(9, 7, |r, c| ((r + c) % 3) as f64 - 1.0);
        let mut acc = a.clone();
        acc.add_assign(&b);
        assert!(acc.approx_eq(&a.add(&b), 0.0));
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(33, 65, |r, c| (r * 65 + c) as f64);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), a.get(1, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = DenseMatrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = DenseMatrix::from_vec(1, 3, vec![4.0, 5.0, -6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 3.0, -3.0]);
        assert_eq!(a.sub(&b).data(), &[-3.0, -7.0, 9.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, -10.0, -18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0, -3.0]);
    }

    #[test]
    fn relu_and_grad() {
        let a = DenseMatrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(a.relu_grad().data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_midpoint_and_saturation() {
        let a = DenseMatrix::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        let s = a.sigmoid();
        assert!(crate::approx_eq(s.get(0, 0), 0.5, 1e-12));
        assert!(s.get(0, 1) > 0.999_999);
        assert!(s.get(0, 2) < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!(crate::approx_eq(sum, 1.0, 1e-12), "row {r} sums to {sum}");
        }
        // The huge-activation row must not produce NaNs.
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!(crate::approx_eq(s.get(1, 0), 1.0 / 3.0, 1e-12));
    }

    #[test]
    fn row_and_col_sums() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row_sums().data(), &[6.0, 15.0]);
        assert_eq!(a.col_sums().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn bias_broadcast() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(1, 2, vec![10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn block_extraction_and_reassembly_round_trip() {
        let a = DenseMatrix::from_fn(10, 14, |r, c| (r * 14 + c) as f64);
        let (tr, tc) = (4, 5);
        let mut blocks = Vec::new();
        for ti in 0..10usize.div_ceil(tr) {
            for tj in 0..14usize.div_ceil(tc) {
                blocks.push(((ti, tj), a.block(ti * tr, tj * tc, tr, tc)));
            }
        }
        // Edge blocks are clamped.
        assert_eq!(blocks.last().unwrap().1.cols(), 14 - 2 * tc);
        let re = DenseMatrix::from_blocks(10, 14, tr, tc, blocks);
        assert!(re.approx_eq(&a, 0.0));
    }

    #[test]
    fn measured_sparsity() {
        let a = DenseMatrix::from_vec(1, 4, vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(a.measured_sparsity(), 0.5);
        assert_eq!(DenseMatrix::zeros(2, 2).measured_sparsity(), 0.0);
    }

    #[test]
    fn exp_matches_scalar_exp() {
        let a = DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]);
        let e = a.exp();
        assert!(crate::approx_eq(e.get(0, 0), 1.0, 1e-15));
        assert!(crate::approx_eq(e.get(0, 1), std::f64::consts::E, 1e-15));
    }
}
