//! Pipelined-scheduler equivalence harness: the pool-driven,
//! out-of-topological-order executor ([`execute_plan`]) must produce
//! sink values **bit-identical** to the strictly serial topological
//! walk ([`execute_plan_serial`]) on every plan — completion order,
//! `Arc`-shared identity edges, and buffer retirement must never leak
//! into the numbers.
//!
//! The harness optimizes and runs 64 seeded random DAGs (square dense
//! matrices; matmuls, elementwise ops, transposes, scalings) plus the
//! two named workloads the rest of the suite leans on, comparing every
//! sink elementwise with exact `f64` equality. The chaos harness in
//! `chaos.rs` covers the fault-injection side of the pipelined path:
//! its fault-free baselines run through this same scheduler.

use matopt_core::{
    Cluster, ComputeGraph, FormatCatalog, ImplRegistry, MatrixType, NodeId, NodeKind, Op,
    PhysFormat, PlanContext,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{
    execute_plan, execute_plan_serial, execute_plan_with, DistRelation, ExecOptions,
};
use matopt_graphs::{ffnn_w2_update_graph, two_level_inverse_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_obs::Obs;
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;

/// SplitMix64, locally: the structural draws must not depend on any
/// library's RNG evolution.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A random DAG over square dense matrices: every vertex is `n`×`n`, so
/// any operand combination type-checks and the structure can be drawn
/// freely. Ops are limited to kernels whose chunk accumulation order is
/// fixed, because the harness demands bit equality, not approximation.
fn random_square_dag(seed: u64, n: u64) -> ComputeGraph {
    let mut rng = Mix(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut g = ComputeGraph::new();
    let mtype = MatrixType::dense(n, n);
    let n_sources = 2 + rng.below(2);
    let mut pool: Vec<NodeId> = (0..n_sources)
        .map(|_| g.add_source(mtype, PhysFormat::Tile { side: 4 }))
        .collect();
    let n_computes = 5 + rng.below(6);
    for _ in 0..n_computes {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let v = match rng.below(8) {
            0 => g.add_op(Op::MatMul, &[a, b]),
            1 => g.add_op(Op::Add, &[a, b]),
            2 => g.add_op(Op::Sub, &[a, b]),
            3 => g.add_op(Op::Hadamard, &[a, b]),
            4 => g.add_op(Op::Transpose, &[a]),
            5 => g.add_op(Op::Relu, &[a]),
            6 => g.add_op(Op::Sigmoid, &[a]),
            _ => g.add_op(Op::ScalarMul(0.5), &[a]),
        }
        .expect("square dense ops are always well-typed");
        pool.push(v);
    }
    g
}

fn dense_inputs(graph: &ComputeGraph, seed: u64) -> HashMap<NodeId, DistRelation> {
    let mut rng = seeded_rng(seed);
    let mut rels = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let mut d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            if node.mtype.is_square() {
                for i in 0..node.mtype.rows as usize {
                    let v = d.get(i, i) + node.mtype.rows as f64 * 2.0;
                    d.set(i, i, v);
                }
            }
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    rels
}

/// Asserts every sink of `graph` is elementwise bit-identical between
/// the pipelined and the serial executor under `annotation`.
fn assert_pipeline_matches_serial(
    tag: &str,
    graph: &ComputeGraph,
    annotation: &matopt_core::Annotation,
    inputs: &HashMap<NodeId, DistRelation>,
    registry: &ImplRegistry,
) {
    let piped = execute_plan(graph, annotation, inputs, registry)
        .unwrap_or_else(|e| panic!("{tag}: pipelined run failed: {e}"));
    let serial = execute_plan_serial(graph, annotation, inputs, registry)
        .unwrap_or_else(|e| panic!("{tag}: serial run failed: {e}"));
    assert_eq!(
        piped.sinks.len(),
        serial.sinks.len(),
        "{tag}: sink sets differ"
    );
    for (sink, rel) in &serial.sinks {
        let s = rel.to_dense();
        let p = piped.sinks[sink].to_dense();
        assert_eq!(
            p.data(),
            s.data(),
            "{tag}: sink {sink} differs between pipelined and serial executor"
        );
    }
    // The pipelined run retains every vertex by default, like the
    // serial walk.
    assert_eq!(piped.values.len(), serial.values.len(), "{tag}: values");
    assert!(piped.max_concurrency >= 1);
    assert!(piped.peak_resident_bytes > 0);
}

fn optimize(
    graph: &ComputeGraph,
    registry: &ImplRegistry,
    catalog: &FormatCatalog,
) -> matopt_core::Annotation {
    let ctx = PlanContext::new(registry, Cluster::simsql_like(4));
    let model = AnalyticalCostModel;
    frontier_dp_beam(graph, &OptContext::new(&ctx, catalog, &model), 400)
        .expect("optimizable")
        .annotation
}

#[test]
fn pipelined_executor_is_bit_identical_on_64_random_dags() {
    let registry = ImplRegistry::paper_default();
    let catalog = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 4 },
        PhysFormat::Tile { side: 8 },
        PhysFormat::RowStrip { height: 4 },
        PhysFormat::ColStrip { width: 4 },
    ]);
    for seed in 0..64u64 {
        let graph = random_square_dag(seed, 12);
        let annotation = optimize(&graph, &registry, &catalog);
        let inputs = dense_inputs(&graph, 0xDA6 ^ seed);
        assert_pipeline_matches_serial(
            &format!("dag#{seed}"),
            &graph,
            &annotation,
            &inputs,
            &registry,
        );
    }
}

#[test]
fn pipelined_executor_matches_serial_on_named_workloads() {
    let registry = ImplRegistry::paper_default();
    let ffnn = ffnn_w2_update_graph(FfnnConfig::laptop(16))
        .expect("well-typed")
        .graph;
    let inverse = two_level_inverse_graph(16, 4).expect("well-typed").graph;
    let dense = FormatCatalog::paper_default().dense_only();
    let small = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 4 },
        PhysFormat::Tile { side: 8 },
        PhysFormat::RowStrip { height: 4 },
        PhysFormat::ColStrip { width: 4 },
    ]);
    for (tag, graph, catalog) in [("ffnn", ffnn, dense), ("inverse", inverse, small)] {
        let annotation = optimize(&graph, &registry, &catalog);
        let inputs = dense_inputs(&graph, 0xC0FFEE);
        assert_pipeline_matches_serial(tag, &graph, &annotation, &inputs, &registry);
    }
}

/// With retention off, non-sink buffers are retired as their consumers
/// finish: the outcome exposes only sink values, the sinks still match
/// the serial run exactly, and peak residency never exceeds the
/// retain-everything run's.
#[test]
fn streaming_retirement_keeps_sinks_exact_and_shrinks_residency() {
    let registry = ImplRegistry::paper_default();
    let catalog = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 4 },
        PhysFormat::RowStrip { height: 4 },
    ]);
    for seed in [3u64, 17, 40] {
        let graph = random_square_dag(seed, 12);
        let annotation = optimize(&graph, &registry, &catalog);
        let inputs = dense_inputs(&graph, 0xBEEF ^ seed);
        let retained = execute_plan(&graph, &annotation, &inputs, &registry).expect("runs");
        let streamed = execute_plan_with(
            &graph,
            &annotation,
            &inputs,
            &registry,
            &Obs::disabled(),
            ExecOptions {
                retain_values: false,
                ..Default::default()
            },
        )
        .expect("runs");
        assert_eq!(streamed.values.len(), streamed.sinks.len());
        for (sink, rel) in &retained.sinks {
            assert_eq!(
                streamed.sinks[sink].to_dense().data(),
                rel.to_dense().data(),
                "seed {seed}: sink {sink} differs under streaming retirement"
            );
        }
        assert!(
            streamed.peak_resident_bytes <= retained.peak_resident_bytes,
            "seed {seed}: streaming peak {} exceeds retained peak {}",
            streamed.peak_resident_bytes,
            retained.peak_resident_bytes
        );
    }
}
