//! Seeded chaos harness for the fault-tolerant executor: random fault
//! schedules (worker crashes, stragglers, transient kernel errors,
//! corrupted chunks) are injected into real runs of the FFNN training
//! step and the two-level blocked inverse, and every run must finish
//! with sink values **bit-identical** to the fault-free execution of
//! the same plan, without ever exceeding the per-vertex retry budget.
//!
//! Degradation (resource exhaustion → shrink the cluster → re-plan the
//! suffix) is tested separately with approximate equality, because the
//! re-planned suffix may pick different implementations whose
//! floating-point rounding differs.

use matopt_core::{
    Annotation, Cluster, ComputeGraph, FormatCatalog, ImplRegistry, NodeId, NodeKind, PhysFormat,
    PlanContext, RecoveryPolicy,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{
    execute_fault_tolerant, execute_plan, execute_plan_with, parse_fault_spec, DistRelation,
    ExecOptions, FaultInjector, FtConfig, FtOutcome, HedgeConfig, RetryConfig,
};
use matopt_graphs::{ffnn_w2_update_graph, two_level_inverse_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};
use matopt_obs::Obs;
use matopt_opt::{frontier_dp_beam, OptContext};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One chaos workload: an optimized plan, its inputs, and the sink
/// values of a fault-free run — the ground truth every chaotic run
/// must reproduce exactly.
struct Workload {
    name: &'static str,
    graph: ComputeGraph,
    annotation: Annotation,
    catalog: FormatCatalog,
    inputs: HashMap<NodeId, DistRelation>,
    baseline: HashMap<NodeId, DenseMatrix>,
}

const WORKERS: usize = 4;

fn make_inputs(graph: &ComputeGraph, seed: u64) -> HashMap<NodeId, DistRelation> {
    let mut rng = seeded_rng(seed);
    let mut rels = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let mut d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            // Keep inverse inputs well conditioned.
            if node.mtype.is_square() {
                for i in 0..node.mtype.rows as usize {
                    let v = d.get(i, i) + node.mtype.rows as f64 * 2.0;
                    d.set(i, i, v);
                }
            }
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    rels
}

fn build_workload(name: &'static str, graph: ComputeGraph, catalog: FormatCatalog) -> Workload {
    let registry = ImplRegistry::paper_default();
    let cluster = Cluster::simsql_like(WORKERS);
    let ctx = PlanContext::new(&registry, cluster);
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &catalog, &model);
    let opt = frontier_dp_beam(&graph, &octx, 2000).expect("optimizable");
    let inputs = make_inputs(&graph, 0xC0FFEE);
    let baseline = execute_plan(&graph, &opt.annotation, &inputs, &registry)
        .expect("fault-free run succeeds")
        .sinks
        .into_iter()
        .map(|(id, rel)| (id, rel.to_dense()))
        .collect();
    Workload {
        name,
        graph,
        annotation: opt.annotation,
        catalog,
        inputs,
        baseline,
    }
}

fn workloads() -> &'static [Workload] {
    static CELL: OnceLock<Vec<Workload>> = OnceLock::new();
    CELL.get_or_init(|| {
        let ffnn = ffnn_w2_update_graph(FfnnConfig::laptop(16))
            .expect("well-typed")
            .graph;
        let inverse = two_level_inverse_graph(16, 4).expect("well-typed").graph;
        let small = FormatCatalog::new(vec![
            PhysFormat::SingleTuple,
            PhysFormat::Tile { side: 4 },
            PhysFormat::Tile { side: 8 },
            PhysFormat::RowStrip { height: 4 },
            PhysFormat::ColStrip { width: 4 },
        ]);
        vec![
            build_workload(
                "ffnn-small",
                ffnn,
                FormatCatalog::paper_default().dense_only(),
            ),
            build_workload("blocked-inverse", inverse, small),
        ]
    })
}

/// A retry budget generous enough that no random schedule (at most
/// three transient failures per event) can exhaust it; the harness
/// asserts the executor never comes close.
fn chaos_config(policy: RecoveryPolicy) -> FtConfig {
    FtConfig {
        policy,
        retry: RetryConfig {
            max_retries: 10,
            base_backoff_ms: 1,
            max_backoff_ms: 4,
        },
        ..FtConfig::default()
    }
}

fn run_chaotic(w: &Workload, injector: FaultInjector, config: &FtConfig) -> FtOutcome {
    let registry = ImplRegistry::paper_default();
    let cluster = Cluster::simsql_like(WORKERS);
    let ctx = PlanContext::new(&registry, cluster);
    execute_fault_tolerant(
        &w.graph,
        &w.annotation,
        &w.inputs,
        &ctx,
        &w.catalog,
        &AnalyticalCostModel,
        injector,
        config,
        &Obs::disabled(),
    )
    .expect("fault-tolerant run succeeds")
}

/// Asserts the chaotic run reproduced the fault-free sinks bit for bit
/// and stayed inside the retry budget.
fn assert_recovered_exactly(w: &Workload, out: &FtOutcome, config: &FtConfig, seed: u64) {
    assert_eq!(
        out.sinks.len(),
        w.baseline.len(),
        "{} seed {seed}: sink set changed",
        w.name
    );
    for (sink, rel) in &out.sinks {
        assert!(
            rel.to_dense() == w.baseline[sink],
            "{} seed {seed}: sink {sink} diverged from the fault-free run",
            w.name
        );
    }
    for (i, vr) in out.per_vertex.iter().enumerate() {
        assert!(
            vr.retries <= config.retry.max_retries,
            "{} seed {seed}: vertex {i} spent {} retries against a budget of {}",
            w.name,
            vr.retries,
            config.retry.max_retries
        );
    }
    assert_eq!(out.replans, 0, "{} seed {seed}: unexpected re-plan", w.name);
}

/// The capstone: 64 seeded random fault schedules per workload (128
/// total), rotating through all three recovery policies. Every run
/// must end with exactly the fault-free sink values.
#[test]
fn random_fault_schedules_recover_to_exact_sink_values() {
    let policies = [
        RecoveryPolicy::Restart,
        RecoveryPolicy::Checkpoint,
        RecoveryPolicy::Lineage,
    ];
    for w in workloads() {
        for seed in 0..64u64 {
            let policy = policies[(seed % 3) as usize];
            let config = chaos_config(policy);
            let n_faults = 1 + (seed as usize % 3);
            let injector = FaultInjector::random(seed, w.graph.compute_count(), n_faults, 2);
            let out = run_chaotic(w, injector, &config);
            assert_recovered_exactly(w, &out, &config, seed);
        }
    }
}

/// The same seed must produce the same fault sequence and the same
/// retry/recovery counts — chaos is reproducible by construction.
#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let w = &workloads()[0];
    let config = chaos_config(RecoveryPolicy::Lineage);
    let steps = w.graph.compute_count();
    let a = run_chaotic(w, FaultInjector::random(7, steps, 3, 2), &config);
    let b = run_chaotic(w, FaultInjector::random(7, steps, 3, 2), &config);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.recoveries, b.recoveries);
    assert!(!a.faults.is_empty(), "seed 7 must fire at least one fault");
}

/// A disabled injector is a strict no-op: identical sinks, zero
/// faults, zero retries, zero recoveries.
#[test]
fn disabled_injector_changes_nothing() {
    for w in workloads() {
        let config = chaos_config(RecoveryPolicy::Checkpoint);
        let out = run_chaotic(w, FaultInjector::disabled(), &config);
        for (sink, rel) in &out.sinks {
            assert!(rel.to_dense() == w.baseline[sink]);
        }
        assert!(out.faults.is_empty());
        assert_eq!(out.retries, 0);
        assert_eq!(out.recoveries, 0);
        assert_eq!(out.checkpoint_seconds, 0.0, "no checkpoints without faults");
    }
}

/// Explicit crash schedules under every recovery policy, parsed from
/// the CLI's spec grammar.
#[test]
fn parsed_crash_specs_recover_under_every_policy() {
    for w in workloads() {
        for policy in [
            RecoveryPolicy::Restart,
            RecoveryPolicy::Checkpoint,
            RecoveryPolicy::Lineage,
        ] {
            let injector = parse_fault_spec(
                "crash@1,flaky@2x2,corrupt@3,slow@0x2",
                11,
                w.graph.compute_count(),
            )
            .expect("spec parses");
            let config = chaos_config(policy);
            let out = run_chaotic(w, injector, &config);
            assert_recovered_exactly(w, &out, &config, 11);
            assert_eq!(out.faults.len(), 4, "all four scheduled faults fire");
            assert!(out.recoveries >= 1, "the crash must trigger a recovery");
            assert!(out.retries >= 2, "the transient fault must retry");
        }
    }
}

/// Resource exhaustion degrades the cluster and re-plans the suffix;
/// the re-planned run still computes the right answer (approximately —
/// different implementations round differently).
#[test]
fn resource_exhaustion_degrades_and_replans() {
    let w = &workloads()[0];
    let injector = parse_fault_spec("oom@4x2", 3, w.graph.compute_count()).expect("spec parses");
    let config = chaos_config(RecoveryPolicy::Lineage);
    let out = run_chaotic(w, injector, &config);
    assert!(out.replans >= 1, "degradation must re-plan the suffix");
    assert_eq!(out.sinks.len(), w.baseline.len());
    for (sink, rel) in &out.sinks {
        let got = rel.to_dense();
        let want = &w.baseline[sink];
        assert!(
            got.approx_eq(want, 1e-6),
            "sink {sink} diverged after degradation; err {}",
            got.frobenius_distance(want)
        );
    }
}

/// An exhausted retry budget surfaces as `RetryBudgetExhausted` naming
/// the vertex, instead of looping forever or panicking.
#[test]
fn retry_budget_exhaustion_is_a_clean_error() {
    let w = &workloads()[0];
    let injector = parse_fault_spec("flaky@2x9", 5, w.graph.compute_count()).expect("spec parses");
    let config = FtConfig {
        policy: RecoveryPolicy::Lineage,
        retry: RetryConfig {
            max_retries: 3,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
        },
        ..FtConfig::default()
    };
    let registry = ImplRegistry::paper_default();
    let cluster = Cluster::simsql_like(WORKERS);
    let ctx = PlanContext::new(&registry, cluster);
    let err = execute_fault_tolerant(
        &w.graph,
        &w.annotation,
        &w.inputs,
        &ctx,
        &w.catalog,
        &AnalyticalCostModel,
        injector,
        &config,
        &Obs::disabled(),
    )
    .expect_err("nine consecutive failures must exhaust a budget of three");
    let msg = err.to_string();
    assert!(
        msg.contains("retry budget exhausted"),
        "unexpected error: {msg}"
    );
}

/// SplitMix64 for drawing straggler schedules without depending on any
/// library RNG's evolution.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded straggler schedule: one or two compute vertices delayed by
/// 2–17ms (primary attempt only).
fn straggler_schedule(graph: &ComputeGraph, seed: u64) -> Arc<Vec<u64>> {
    let mut s = seed.wrapping_mul(0x51AC).wrapping_add(7);
    let computes: Vec<usize> = graph
        .iter()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Compute { .. }))
        .map(|(id, _)| id.index())
        .collect();
    let mut delays = vec![0u64; graph.len()];
    let hits = 1 + (splitmix(&mut s) % 2) as usize;
    for _ in 0..hits {
        let v = computes[(splitmix(&mut s) % computes.len() as u64) as usize];
        delays[v] = 2 + splitmix(&mut s) % 16;
    }
    Arc::new(delays)
}

fn run_with_options(w: &Workload, options: ExecOptions) -> matopt_engine::ExecOutcome {
    let registry = ImplRegistry::paper_default();
    execute_plan_with(
        &w.graph,
        &w.annotation,
        &w.inputs,
        &registry,
        &Obs::disabled(),
        options,
    )
    .expect("governed run succeeds")
}

fn assert_sinks_bit_exact(w: &Workload, out: &matopt_engine::ExecOutcome, tag: &str) {
    assert_eq!(out.sinks.len(), w.baseline.len(), "{tag}: sink set changed");
    for (sink, rel) in &out.sinks {
        assert!(
            rel.to_dense() == w.baseline[sink],
            "{tag}: sink {sink} diverged from the fault-free run"
        );
    }
}

/// 128 seeded straggler schedules (64 per workload) through the
/// pipelined scheduler with hedging armed: first-completion-wins must
/// never change a sink bit, and aggressive deadlines must actually
/// launch duplicates somewhere in the sweep.
#[test]
fn hedged_straggler_schedules_keep_sinks_bit_exact() {
    let mut launched = 0u64;
    for w in workloads() {
        for seed in 0..64u64 {
            let hedge = HedgeConfig {
                factor: 2.0,
                predicted_seconds: Some(Arc::new(vec![0.001; w.graph.len()])),
                min_deadline_ms: 1,
            };
            let out = run_with_options(
                w,
                ExecOptions {
                    straggler_delays_ms: Some(straggler_schedule(&w.graph, seed)),
                    hedge: Some(hedge),
                    ..Default::default()
                },
            );
            assert_sinks_bit_exact(w, &out, &format!("{} straggler seed {seed}", w.name));
            launched += out.governor.hedges_launched;
        }
    }
    assert!(
        launched > 0,
        "no duplicate launched across 128 straggler schedules"
    );
}

/// The memory-pressure matrix: budget ∈ {unbounded, 75%, 50% of the
/// measured unbounded peak} × seeded straggler schedules, all with
/// hedging armed. Every cell must reproduce the fault-free sinks bit
/// for bit, and the 50% column must provably engage the spill path.
#[test]
fn memory_pressure_matrix_with_stragglers_is_bit_exact() {
    for w in workloads() {
        let peak = run_with_options(w, ExecOptions::default()).peak_resident_bytes;
        let mut tight_spills = 0u64;
        for (col, budget) in [
            ("unbounded", None),
            ("75%", Some((peak as f64 * 0.75) as u64)),
            ("50%", Some((peak as f64 * 0.5) as u64)),
        ] {
            for seed in 0..4u64 {
                let out = run_with_options(
                    w,
                    ExecOptions {
                        mem_budget: budget,
                        straggler_delays_ms: Some(straggler_schedule(&w.graph, 0xA11 ^ seed)),
                        hedge: Some(HedgeConfig::with_factor(3.0)),
                        ..Default::default()
                    },
                );
                assert_sinks_bit_exact(w, &out, &format!("{} {col} seed {seed}", w.name));
                if col == "50%" {
                    tight_spills += out.governor.spills;
                } else if col == "unbounded" {
                    assert_eq!(
                        out.governor.spills, 0,
                        "{}: spilled without a budget",
                        w.name
                    );
                }
            }
        }
        assert!(
            tight_spills > 0,
            "{}: the 50% budget column never spilled",
            w.name
        );
    }
}

/// Hedging composes with transient-fault retries in the fault-tolerant
/// driver: a straggler gets hedged (bounding its delay) while a flaky
/// vertex retries, and the sinks still match exactly.
#[test]
fn hedging_composes_with_retries_under_faults() {
    for w in workloads() {
        let injector =
            parse_fault_spec("slow@1x8,flaky@2x2", 13, w.graph.compute_count()).expect("parses");
        let config = FtConfig {
            hedge: Some(HedgeConfig::with_factor(4.0)),
            ..chaos_config(RecoveryPolicy::Lineage)
        };
        let out = run_chaotic(w, injector, &config);
        assert_recovered_exactly(w, &out, &config, 13);
        assert!(
            out.governor.hedges_launched >= 1,
            "{}: the 8x straggler must trip the 4x hedge deadline",
            w.name
        );
        assert!(out.retries >= 2, "{}: the flaky vertex must retry", w.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property form of the capstone: any seed, fault count, and
    /// policy still recovers to bit-identical sinks within budget.
    #[test]
    fn any_random_schedule_recovers_exactly(
        seed in 0u64..1_000_000,
        n_faults in 1usize..4,
        policy_ix in 0usize..3,
    ) {
        let policies = [
            RecoveryPolicy::Restart,
            RecoveryPolicy::Checkpoint,
            RecoveryPolicy::Lineage,
        ];
        let w = &workloads()[(seed % 2) as usize];
        let config = chaos_config(policies[policy_ix]);
        let injector = FaultInjector::random(seed, w.graph.compute_count(), n_faults, 3);
        let out = run_chaotic(w, injector, &config);
        for (sink, rel) in &out.sinks {
            prop_assert!(
                rel.to_dense() == w.baseline[sink],
                "{} seed {seed}: sink {sink} diverged",
                w.name
            );
        }
        for vr in &out.per_vertex {
            prop_assert!(vr.retries <= config.retry.max_retries);
        }
    }
}
