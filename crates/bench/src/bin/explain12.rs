//! Per-step breakdown for the Figure 12 sparse-input configuration.
use matopt_bench::Env;
use matopt_core::{Cluster, FormatCatalog, NodeKind};
use matopt_engine::simulate_plan;
use matopt_graphs::{ffnn_train_step_graph, FfnnConfig};

fn main() {
    let env = Env::new();
    let cluster = Cluster::plinycompute_like(2);
    let cfg = FfnnConfig::amazoncat(10_000, 4000, true);
    let g = ffnn_train_step_graph(cfg).unwrap().graph;
    let cat = FormatCatalog::paper_default();
    let auto = env.auto_plan(&g, cluster, &cat).unwrap();
    let ctx = env.ctx(cluster);
    let report = simulate_plan(&g, &auto.annotation, &ctx, &env.model).unwrap();
    println!("total: {}", report.outcome);
    for step in &report.steps {
        let node = g.node(step.vertex);
        let NodeKind::Compute { op } = &node.kind else {
            continue;
        };
        let choice = auto.annotation.choice(step.vertex).unwrap();
        if step.impl_seconds + step.transform_seconds < 2.0 {
            continue;
        }
        println!(
            "{:>5} {:24} impl {:7.1}s trans {:7.1}s out={} {} [{} x {}]",
            step.vertex.to_string(),
            format!("{:?}", op),
            step.impl_seconds,
            step.transform_seconds,
            choice.output_format,
            env.registry.get(choice.impl_id).name,
            g.node(node.inputs[0]).mtype,
            node.inputs
                .get(1)
                .map(|i| g.node(*i).mtype.to_string())
                .unwrap_or_default(),
        );
    }
}
