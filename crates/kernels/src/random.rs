//! Deterministic random matrix generation for workloads and calibration.
//!
//! The paper generates dense inputs "by sampling double-precision
//! floating point numbers from a Normal(0, 1) distribution" (§8.2) and
//! evaluates sparse workloads on the one-hot-encoded AmazonCat-14K batch
//! matrices (§8.3). [`random_dense_normal`] and [`random_sparse_csr`]
//! are the synthetic equivalents.

use crate::{CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded RNG so every experiment is reproducible bit-for-bit.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard-normal value via the Box–Muller transform.
///
/// `rand` ships no normal distribution offline, so we implement the
/// transform directly; quality is more than sufficient for benchmark
/// payloads.
fn sample_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Dense `rows × cols` matrix with i.i.d. Normal(0, 1) entries.
pub fn random_dense_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> DenseMatrix {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(sample_normal(rng));
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Sparse CSR matrix where each entry is non-zero with probability
/// `density`, with Normal(0, 1) values — models a one-hot/sparse feature
/// batch like AmazonCat-14K.
///
/// # Panics
/// Panics when `density` is outside `[0, 1]`.
pub fn random_sparse_csr(rows: usize, cols: usize, density: f64, rng: &mut impl Rng) -> CsrMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut indptr = Vec::with_capacity(rows + 1);
    let mut indices = Vec::new();
    let mut values = Vec::new();
    indptr.push(0);
    // Geometric skipping: expected work is O(nnz), not O(rows*cols),
    // which matters when generating 600K-wide batches at 1e-5 density.
    if density > 0.0 {
        let total = (rows as u128) * (cols as u128);
        let mut pos: u128 = 0;
        loop {
            // Sample the gap to the next non-zero from Geometric(density).
            let u: f64 = 1.0 - rng.random::<f64>();
            let gap = if density >= 1.0 {
                0
            } else {
                (u.ln() / (1.0 - density).ln()).floor() as u128
            };
            pos = pos.saturating_add(gap);
            if pos >= total {
                break;
            }
            let r = (pos / cols as u128) as usize;
            let c = (pos % cols as u128) as usize;
            while indptr.len() <= r {
                indptr.push(indices.len());
            }
            indices.push(c);
            values.push(sample_normal(rng));
            pos += 1;
        }
    }
    while indptr.len() <= rows {
        indptr.push(indices.len());
    }
    CsrMatrix::from_parts(rows, cols, indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = random_dense_normal(8, 8, &mut seeded_rng(42));
        let b = random_dense_normal(8, 8, &mut seeded_rng(42));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = random_dense_normal(200, 200, &mut seeded_rng(7));
        let n = (m.rows() * m.cols()) as f64;
        let mean: f64 = m.data().iter().sum::<f64>() / n;
        let var: f64 = m
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn sparse_density_is_close_to_requested() {
        let s = random_sparse_csr(500, 500, 0.01, &mut seeded_rng(3));
        let d = s.measured_sparsity();
        assert!((d - 0.01).abs() < 0.003, "density {d} too far from 0.01");
    }

    #[test]
    fn sparse_zero_density_is_empty() {
        let s = random_sparse_csr(10, 10, 0.0, &mut seeded_rng(1));
        assert_eq!(s.nnz(), 0);
    }

    #[test]
    fn sparse_full_density_is_dense() {
        let s = random_sparse_csr(10, 10, 1.0, &mut seeded_rng(1));
        assert_eq!(s.nnz(), 100);
    }

    #[test]
    fn sparse_generation_is_cheap_for_tiny_density() {
        // 50K × 50K at 1e-6 density must not iterate all 2.5e9 cells.
        let s = random_sparse_csr(50_000, 50_000, 1e-6, &mut seeded_rng(9));
        let expected = 2_500.0;
        assert!(
            (s.nnz() as f64) > expected * 0.5 && (s.nnz() as f64) < expected * 1.5,
            "nnz {} implausible for density 1e-6",
            s.nnz()
        );
    }

    #[test]
    #[should_panic(expected = "density must be in [0, 1]")]
    fn sparse_rejects_bad_density() {
        let _ = random_sparse_csr(2, 2, 1.5, &mut seeded_rng(0));
    }
}
