//! # matopt-core
//!
//! The formal model of *Automatic Optimization of Matrix Implementations
//! for Distributed Machine Learning and Linear Algebra* (Luo, Jankov,
//! Yuan, Jermaine — SIGMOD 2021):
//!
//! * [`MatrixType`] — the set `M` of matrix types (§3);
//! * [`PhysFormat`] / [`FormatCatalog`] — the set `P` of physical matrix
//!   implementations: single-tuple, strips, square tiles, relational
//!   triples, and CSR layouts (19 in the default catalog, §8.1);
//! * [`Op`] / [`OpKind`] — the set `A` of 16 atomic computations;
//! * [`OpImplDef`] / [`ImplRegistry`] — the set `I` of 38 atomic
//!   computation implementations, each with a type specification
//!   function over `(M × P)ⁿ` and analytic cost features (§7);
//! * [`Transform`] / [`TransformCatalog`] — the set `T` of 20 physical
//!   matrix transformations;
//! * [`ComputeGraph`] / [`Annotation`] — compute graphs and the
//!   annotation problem (§4);
//! * [`plan_features`] / [`validate`] — type-correctness checking and
//!   the per-plan feature decomposition that cost models consume.
//!
//! The optimizers live in `matopt-opt`, the cost models in
//! `matopt-cost`, and the executing/simulating engine in
//! `matopt-engine`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod annotate;
mod backoff;
mod canon;
mod cluster;
mod dot;
mod features;
mod format;
mod graph;
mod impls;
mod ops;
mod resource;
mod transforms;
mod types;
mod wire;

pub use annotate::{plan_features, validate, PlanContext, PlanError, PlanFeatures};
pub use backoff::{mix_jitter, BackoffPolicy};
pub use canon::{
    canonical_form, canonical_form_with, fnv1a_128, fnv1a_64, format_from_words, format_words,
    op_from_words, op_to_words, CanonicalForm,
};
pub use cluster::{Cluster, RecoveryPolicy};
pub use dot::{annotated_to_dot, graph_to_dot, training_to_dot, DiffRole};
pub use features::CostFeatures;
pub use format::{
    FormatCatalog, PhysFormat, DEFAULT_STRIP_SIZES, DEFAULT_TILE_SIDES, SPARSE_FORMAT_THRESHOLD,
};
pub use graph::{Annotation, BitSet, ComputeGraph, Node, NodeId, NodeKind, VertexChoice};
pub use impls::{ImplEval, ImplId, ImplRegistry, OpImplDef, Strategy};
pub use ops::{Op, OpKind, TypeError, ALL_OP_KINDS, PAPER_OP_KINDS};
pub use resource::{default_scratch_dir, parse_byte_size};
pub use transforms::{Transform, TransformCatalog, TransformKind, ALL_TRANSFORM_KINDS};
pub use types::{MatrixType, DENSE_ENTRY_BYTES, SPARSE_ENTRY_BYTES, TRIPLE_ENTRY_BYTES};
pub use wire::{
    frame_bytes, wire_fnv1a, write_frame, Frame, FrameReader, WireError, WIRE_MAGIC,
    WIRE_MAX_BODY_WORDS,
};
