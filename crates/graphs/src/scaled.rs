//! The scale-`n` optimizer-runtime benchmarks of §8.4 (Figure 13):
//! Tree, DAG1, and DAG2 multiplication chains over 20K×20K single-tuple
//! inputs.

use matopt_core::{ComputeGraph, MatrixType, NodeId, Op, PhysFormat, TypeError};

/// Which of the three §8.4 computation shapes to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaledShape {
    /// `T1 = A×B; T2 = C×D; O1 = (T1×T2)×E; O2 = O1×F`, linked between
    /// scales by `A ← O2`. Every vertex has one consumer.
    Tree,
    /// `T1 = A×B; T2 = C×D; O1 = (T1×T2)×E; O2 = (T1×T2)×O1`, linked by
    /// `A ← O2` — one cross-scale link, with the shared `T1×T2`.
    Dag1,
    /// As DAG1, but linked by both `A ← O2` and `C ← O1` — two
    /// cross-scale links, "creating a more complicated dependency".
    Dag2,
}

/// Edge length of every input matrix (the paper uses 20,000).
pub const SCALED_DIM: u64 = 20_000;

fn mt() -> MatrixType {
    MatrixType::dense(SCALED_DIM, SCALED_DIM)
}

/// Builds a scale-`n` computation of the given shape. Inputs are
/// 20K×20K matrices stored as single tuples (§8.4).
///
/// # Errors
/// Propagates [`TypeError`] (cannot occur for these square chains).
pub fn scaled_graph(shape: ScaledShape, scale: usize) -> Result<ComputeGraph, TypeError> {
    assert!(scale >= 1, "scale starts at 1");
    let mut g = ComputeGraph::new();
    let src = |g: &mut ComputeGraph, name: String| {
        g.add_source_named(mt(), PhysFormat::SingleTuple, Some(&name))
    };

    // Handles carried between scales.
    let mut prev_o1: Option<NodeId> = None;
    let mut prev_o2: Option<NodeId> = None;
    for s in 0..scale {
        let a = match prev_o2 {
            Some(o2) => o2,
            None => src(&mut g, format!("A{s}")),
        };
        let c = match (shape, prev_o1) {
            (ScaledShape::Dag2, Some(o1)) => o1,
            _ => src(&mut g, format!("C{s}")),
        };
        let b = src(&mut g, format!("B{s}"));
        let d = src(&mut g, format!("D{s}"));
        let e = src(&mut g, format!("E{s}"));
        let t1 = g.add_op(Op::MatMul, &[a, b])?;
        let t2 = g.add_op(Op::MatMul, &[c, d])?;
        let (o1, o2) = match shape {
            ScaledShape::Tree => {
                let t1t2 = g.add_op(Op::MatMul, &[t1, t2])?;
                let o1 = g.add_op(Op::MatMul, &[t1t2, e])?;
                let f = src(&mut g, format!("F{s}"));
                let o2 = g.add_op(Op::MatMul, &[o1, f])?;
                (o1, o2)
            }
            ScaledShape::Dag1 | ScaledShape::Dag2 => {
                let t1t2 = g.add_op(Op::MatMul, &[t1, t2])?;
                let o1 = g.add_op(Op::MatMul, &[t1t2, e])?;
                let o2 = g.add_op(Op::MatMul, &[t1t2, o1])?;
                (o1, o2)
            }
        };
        prev_o1 = Some(o1);
        prev_o2 = Some(o2);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_is_tree_shaped_at_every_scale() {
        for scale in 1..=4 {
            let g = scaled_graph(ScaledShape::Tree, scale).unwrap();
            assert!(g.is_tree_shaped(), "scale {scale}");
        }
    }

    #[test]
    fn dags_are_not_tree_shaped() {
        assert!(!scaled_graph(ScaledShape::Dag1, 1).unwrap().is_tree_shaped());
        assert!(!scaled_graph(ScaledShape::Dag2, 2).unwrap().is_tree_shaped());
    }

    #[test]
    fn dag2_reuses_o1_across_scales() {
        let g1 = scaled_graph(ScaledShape::Dag2, 2).unwrap();
        let g2 = scaled_graph(ScaledShape::Dag1, 2).unwrap();
        // DAG2 replaces the C source of the second scale, so it has one
        // fewer source than DAG1 at the same scale.
        assert_eq!(g1.sources().len() + 1, g2.sources().len());
    }

    #[test]
    fn scaling_adds_vertices_linearly() {
        let v1 = scaled_graph(ScaledShape::Dag2, 1).unwrap().len();
        let v2 = scaled_graph(ScaledShape::Dag2, 2).unwrap().len();
        let v3 = scaled_graph(ScaledShape::Dag2, 3).unwrap().len();
        assert_eq!(v3 - v2, v2 - v1);
    }

    #[test]
    fn single_sink_at_every_scale() {
        for shape in [ScaledShape::Tree, ScaledShape::Dag1, ScaledShape::Dag2] {
            // DAG chains leave O1 of the last scale consumed only by O2
            // ... except in Tree/DAG1 where prev O1 is unused by later
            // scales; count sinks accordingly.
            let g = scaled_graph(shape, 3).unwrap();
            assert!(!g.sinks().is_empty());
        }
    }
}
