//! Cost models (§7): mapping analytic feature vectors to running time.

use crate::regression::{fit_ridge, LinearModel, N_FEATURES};
use matopt_core::{
    plan_features, Annotation, Cluster, ComputeGraph, CostFeatures, NodeKind, OpKind, PlanContext,
    PlanError, TransformKind,
};
use std::collections::HashMap;

/// What a cost sample or prediction is about: one atomic computation
/// kind or one transformation kind. The paper performs "a regression
/// ... for each operation"; this key is the per-operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostKey {
    /// An atomic computation implementation of this kind.
    Op(OpKind),
    /// A physical matrix transformation of this kind.
    Transform(TransformKind),
}

/// A cost model: returns the estimated seconds an implementation or
/// transformation with the given features takes on the given cluster.
pub trait CostModel {
    /// Estimated seconds for an atomic computation implementation.
    fn impl_time(&self, op: OpKind, features: &CostFeatures, cluster: &Cluster) -> f64;
    /// Estimated seconds for a physical matrix transformation.
    fn transform_time(
        &self,
        kind: TransformKind,
        features: &CostFeatures,
        cluster: &Cluster,
    ) -> f64;
}

/// The closed-form cost model: each feature is divided by the matching
/// cluster rate and the per-operator setup cost is added.
///
/// * CPU: critical-path flops at the per-worker flop rate;
/// * network: busiest-NIC bytes at NIC bandwidth;
/// * intermediates: total bytes at the aggregate materialization rate;
/// * tuples: total count at the per-tuple overhead, spread over workers;
/// * ops: fixed setup each.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalCostModel;

impl AnalyticalCostModel {
    fn time(&self, f: &CostFeatures, cluster: &Cluster) -> f64 {
        let w = cluster.workers as f64;
        f.cpu_flops / cluster.flops_per_sec
            + f.local_flops / cluster.single_thread_flops_per_sec
            + f.net_bytes / cluster.net_bytes_per_sec
            + f.inter_bytes / (cluster.inter_bytes_per_sec * w)
            + f.tuples * cluster.tuple_overhead_sec / w
            + f.ops * cluster.op_setup_sec
    }
}

impl CostModel for AnalyticalCostModel {
    fn impl_time(&self, _op: OpKind, features: &CostFeatures, cluster: &Cluster) -> f64 {
        self.time(features, cluster)
    }
    fn transform_time(
        &self,
        _kind: TransformKind,
        features: &CostFeatures,
        cluster: &Cluster,
    ) -> f64 {
        self.time(features, cluster)
    }
}

/// One calibration observation: the features of a benchmark run and its
/// measured wall-clock seconds.
#[derive(Debug, Clone, Copy)]
pub struct CostSample {
    /// What ran.
    pub key: CostKey,
    /// Its analytic features.
    pub features: CostFeatures,
    /// Measured seconds.
    pub seconds: f64,
}

/// The learned cost model of §7: per-operation linear regressions over
/// the analytic features, fitted from installation-time benchmark runs,
/// with a global fallback model for operations that were never measured.
#[derive(Debug, Clone)]
pub struct LearnedCostModel {
    per_key: HashMap<CostKey, LinearModel>,
    fallback: LinearModel,
}

/// Minimum samples required before a per-operation regression is
/// trusted over the global fallback.
const MIN_SAMPLES_PER_KEY: usize = 4;

impl LearnedCostModel {
    /// Fits the model from calibration samples.
    ///
    /// # Panics
    /// Panics when `samples` is empty.
    pub fn fit(samples: &[CostSample]) -> Self {
        assert!(!samples.is_empty(), "need calibration samples");
        let rows = |subset: &[&CostSample]| -> (Vec<[f64; N_FEATURES]>, Vec<f64>) {
            (
                subset
                    .iter()
                    .map(|s| s.features.as_regression_row())
                    .collect(),
                subset.iter().map(|s| s.seconds).collect(),
            )
        };
        let all: Vec<&CostSample> = samples.iter().collect();
        let (xs, ys) = rows(&all);
        let fallback = fit_ridge(&xs, &ys, 1e-6);

        let mut by_key: HashMap<CostKey, Vec<&CostSample>> = HashMap::new();
        for s in samples {
            by_key.entry(s.key).or_default().push(s);
        }
        let per_key = by_key
            .into_iter()
            .filter(|(_, v)| v.len() >= MIN_SAMPLES_PER_KEY)
            .map(|(k, v)| {
                let (xs, ys) = rows(&v);
                (k, fit_ridge(&xs, &ys, 1e-6))
            })
            .collect();
        LearnedCostModel { per_key, fallback }
    }

    fn predict(&self, key: CostKey, features: &CostFeatures) -> f64 {
        let row = features.as_regression_row();
        let model = self.per_key.get(&key).unwrap_or(&self.fallback);
        // Negative predictions can arise from extrapolation; clamp to a
        // nonnegative time.
        model.predict(&row).max(0.0)
    }

    /// Number of per-operation regressions fitted.
    pub fn specialized_models(&self) -> usize {
        self.per_key.len()
    }
}

impl CostModel for LearnedCostModel {
    fn impl_time(&self, op: OpKind, features: &CostFeatures, _cluster: &Cluster) -> f64 {
        self.predict(CostKey::Op(op), features)
    }
    fn transform_time(
        &self,
        kind: TransformKind,
        features: &CostFeatures,
        _cluster: &Cluster,
    ) -> f64 {
        self.predict(CostKey::Transform(kind), features)
    }
}

/// Total estimated cost of an annotated plan: the sum over vertex and
/// edge costs of §4.3, `Cost(G') = Σ v.c + Σ e.c`.
///
/// ```
/// use matopt_core::*;
/// use matopt_cost::{plan_cost, AnalyticalCostModel};
///
/// let registry = ImplRegistry::paper_default();
/// let mut g = ComputeGraph::new();
/// let a = g.add_source(MatrixType::dense(1000, 1000), PhysFormat::SingleTuple);
/// let r = g.add_op(Op::Relu, &[a]).unwrap();
/// let mut ann = Annotation::empty(&g);
/// ann.set(r, VertexChoice {
///     impl_id: registry.by_name("relu_map").unwrap().id,
///     input_transforms: vec![Transform::identity(PhysFormat::SingleTuple)],
///     output_format: PhysFormat::SingleTuple,
/// });
/// let ctx = PlanContext::new(&registry, Cluster::simsql_like(4));
/// let cost = plan_cost(&g, &ann, &ctx, &AnalyticalCostModel).unwrap();
/// assert!(cost > 0.0);
/// ```
///
/// # Errors
/// Returns a [`PlanError`] when the annotation is not type-correct.
pub fn plan_cost(
    graph: &ComputeGraph,
    annotation: &Annotation,
    ctx: &PlanContext<'_>,
    model: &dyn CostModel,
) -> Result<f64, PlanError> {
    let breakdown = plan_features(graph, annotation, ctx)?;
    let mut total = 0.0;
    for (id, node) in graph.iter() {
        let NodeKind::Compute { op } = &node.kind else {
            continue;
        };
        if let Some(f) = &breakdown.impl_features[id.index()] {
            total += model.impl_time(op.kind(), f, &ctx.cluster);
        }
        let choice = annotation.choice(id).expect("validated");
        for (t, f) in choice
            .input_transforms
            .iter()
            .zip(breakdown.transform_features[id.index()].iter())
        {
            total += model.transform_time(t.kind, f, &ctx.cluster);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(flops: f64, net: f64, inter: f64, tuples: f64, ops: f64) -> CostFeatures {
        CostFeatures {
            cpu_flops: flops,
            local_flops: 0.0,
            net_bytes: net,
            inter_bytes: inter,
            tuples,
            ops,
        }
    }

    #[test]
    fn analytical_model_reads_off_unit_cluster() {
        let m = AnalyticalCostModel;
        let c = Cluster::unit_test(1);
        let f = feat(2.0, 3.0, 5.0, 7.0, 0.0);
        // flops + net + inter + tuples with all rates 1 and 1 worker.
        assert_eq!(m.impl_time(OpKind::MatMul, &f, &c), 2.0 + 3.0 + 5.0 + 7.0);
    }

    #[test]
    fn analytical_model_spreads_tuples_and_inter_over_workers() {
        let m = AnalyticalCostModel;
        let c = Cluster::unit_test(10);
        let f = feat(0.0, 0.0, 10.0, 20.0, 0.0);
        assert_eq!(m.impl_time(OpKind::Add, &f, &c), 1.0 + 2.0);
    }

    #[test]
    fn op_setup_is_per_operator() {
        let m = AnalyticalCostModel;
        let mut c = Cluster::unit_test(1);
        c.op_setup_sec = 8.0;
        let f = feat(0.0, 0.0, 0.0, 0.0, 3.0);
        assert_eq!(m.impl_time(OpKind::MatMul, &f, &c), 24.0);
    }

    #[test]
    fn learned_model_recovers_synthetic_rates() {
        // Generate samples from a ground-truth linear law and check the
        // fitted model ranks plans like the truth does.
        let truth = |f: &CostFeatures| f.cpu_flops / 1e10 + f.net_bytes / 1e9 + f.ops * 2.0;
        let mut samples = Vec::new();
        for i in 1..40u32 {
            let f = feat(
                i as f64 * 1e11,
                i as f64 * 7e8 % 5e9,
                0.0,
                i as f64 * 100.0,
                (i % 3) as f64 + 1.0,
            );
            samples.push(CostSample {
                key: CostKey::Op(OpKind::MatMul),
                features: f,
                seconds: truth(&f),
            });
        }
        let model = LearnedCostModel::fit(&samples);
        assert_eq!(model.specialized_models(), 1);
        let c = Cluster::unit_test(1);
        let cheap = feat(1e11, 1e8, 0.0, 100.0, 1.0);
        let pricey = feat(9e11, 4e9, 0.0, 900.0, 3.0);
        let p_cheap = model.impl_time(OpKind::MatMul, &cheap, &c);
        let p_pricey = model.impl_time(OpKind::MatMul, &pricey, &c);
        assert!(p_cheap < p_pricey);
        assert!((p_cheap - truth(&cheap)).abs() / truth(&cheap) < 0.05);
    }

    #[test]
    fn learned_model_falls_back_for_unmeasured_ops() {
        let samples: Vec<CostSample> = (1..10)
            .map(|i| CostSample {
                key: CostKey::Op(OpKind::MatMul),
                features: feat(i as f64 * 1e9, 0.0, 0.0, 0.0, 1.0),
                seconds: i as f64,
            })
            .collect();
        let model = LearnedCostModel::fit(&samples);
        let c = Cluster::unit_test(1);
        // Relu was never measured: prediction must come from the global
        // fallback, not panic.
        let t = model.impl_time(OpKind::Relu, &feat(5e9, 0.0, 0.0, 0.0, 1.0), &c);
        assert!(t > 0.0);
    }

    #[test]
    fn predictions_are_clamped_nonnegative() {
        let samples: Vec<CostSample> = (1..8)
            .map(|i| CostSample {
                key: CostKey::Op(OpKind::Add),
                features: feat(i as f64, 0.0, 0.0, 0.0, 1.0),
                seconds: 1.0,
            })
            .collect();
        let model = LearnedCostModel::fit(&samples);
        let c = Cluster::unit_test(1);
        let t = model.impl_time(OpKind::Add, &feat(0.0, 0.0, 0.0, 0.0, 0.0), &c);
        assert!(t >= 0.0);
    }
}
