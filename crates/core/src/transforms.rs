//! Physical matrix transformations — the set `T` of the paper (§3):
//! algorithms that move a matrix from one physical implementation to
//! another so that implementations of consecutive atomic computations
//! can be chained.

use crate::features::CostFeatures;
use crate::format::PhysFormat;
use crate::types::MatrixType;
use crate::Cluster;

/// The algorithm class of a transformation. The paper's prototype
/// includes 20 physical matrix transformations; these are ours
/// ([`ALL_TRANSFORM_KINDS`] pins the count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// No-op: the formats already match.
    Identity,
    /// Chunked dense → single tuple, via the two-phase `ROWMATRIX` /
    /// `COLMATRIX` aggregation of §2.1.
    GatherToSingle,
    /// Single tuple → square tiles (`get_tile` fan-out).
    SingleToTile,
    /// Single tuple → row strips.
    SingleToRowStrip,
    /// Single tuple → column strips.
    SingleToColStrip,
    /// Tiles → tiles of a different edge length.
    Retile,
    /// Tiles → row strips (aggregate along tile columns).
    TileToRowStrip,
    /// Tiles → column strips (aggregate along tile rows).
    TileToColStrip,
    /// Row strips → tiles (chunk each strip).
    RowStripToTile,
    /// Column strips → tiles.
    ColStripToTile,
    /// Row strips → row strips of a different height.
    RowStripRechunk,
    /// Column strips → column strips of a different width.
    ColStripRechunk,
    /// Row strips → column strips (full shuffle).
    RowStripToColStrip,
    /// Column strips → row strips (full shuffle).
    ColStripToRowStrip,
    /// Any dense layout → relational triples.
    DenseToCoo,
    /// Relational triples → dense tiles (group-by tile id + assemble).
    CooToTile,
    /// Any dense layout → a single CSR tuple.
    DenseToCsrSingle,
    /// Single CSR tuple → single dense tuple.
    CsrSingleToSingle,
    /// Any dense layout → CSR tiles.
    TileToCsrTile,
    /// CSR tiles → dense tiles.
    CsrTileToTile,
}

/// All 20 transformation kinds of the prototype.
pub const ALL_TRANSFORM_KINDS: [TransformKind; 20] = [
    TransformKind::Identity,
    TransformKind::GatherToSingle,
    TransformKind::SingleToTile,
    TransformKind::SingleToRowStrip,
    TransformKind::SingleToColStrip,
    TransformKind::Retile,
    TransformKind::TileToRowStrip,
    TransformKind::TileToColStrip,
    TransformKind::RowStripToTile,
    TransformKind::ColStripToTile,
    TransformKind::RowStripRechunk,
    TransformKind::ColStripRechunk,
    TransformKind::RowStripToColStrip,
    TransformKind::ColStripToRowStrip,
    TransformKind::DenseToCoo,
    TransformKind::CooToTile,
    TransformKind::DenseToCsrSingle,
    TransformKind::CsrSingleToSingle,
    TransformKind::TileToCsrTile,
    TransformKind::CsrTileToTile,
];

/// A concrete transformation: an algorithm plus its target format.
///
/// `Transform { kind, to }` realizes the type specification function
/// `t.f(m, p_in) = to` of §3 for the `(m, p_in)` pairs the kind supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform {
    /// Algorithm class.
    pub kind: TransformKind,
    /// Output physical implementation.
    pub to: PhysFormat,
}

impl Transform {
    /// The identity transformation at a format.
    pub fn identity(at: PhysFormat) -> Self {
        Transform {
            kind: TransformKind::Identity,
            to: at,
        }
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}=>{}", self.kind, self.to)
    }
}

/// The transformation catalog: classifies which algorithm (if any)
/// moves a matrix of type `m` from one physical implementation to
/// another, and computes its cost features.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformCatalog;

impl TransformCatalog {
    /// Finds the transformation that moves `m` from `from` to `to`, or
    /// `None` (the paper's `⊥`) when no single transformation does.
    ///
    /// ```
    /// use matopt_core::{MatrixType, PhysFormat, TransformCatalog, TransformKind};
    /// let cat = TransformCatalog;
    /// let m = MatrixType::dense(10_000, 10_000);
    /// let t = cat
    ///     .find(&m, PhysFormat::Tile { side: 1000 }, PhysFormat::SingleTuple)
    ///     .unwrap();
    /// assert_eq!(t.kind, TransformKind::GatherToSingle);
    /// ```
    ///
    /// Feasibility of `to` for `m` is the caller's concern (the dynamic
    /// programs only enumerate feasible candidate formats).
    pub fn find(&self, _m: &MatrixType, from: PhysFormat, to: PhysFormat) -> Option<Transform> {
        use PhysFormat as F;
        use TransformKind as K;
        if from == to {
            return Some(Transform::identity(to));
        }
        let kind = match (from, to) {
            (F::RowStrip { .. } | F::ColStrip { .. } | F::Tile { .. }, F::SingleTuple) => {
                K::GatherToSingle
            }
            (F::SingleTuple, F::Tile { .. }) => K::SingleToTile,
            (F::SingleTuple, F::RowStrip { .. }) => K::SingleToRowStrip,
            (F::SingleTuple, F::ColStrip { .. }) => K::SingleToColStrip,
            (F::Tile { .. }, F::Tile { .. }) => K::Retile,
            (F::Tile { .. }, F::RowStrip { .. }) => K::TileToRowStrip,
            (F::Tile { .. }, F::ColStrip { .. }) => K::TileToColStrip,
            (F::RowStrip { .. }, F::Tile { .. }) => K::RowStripToTile,
            (F::ColStrip { .. }, F::Tile { .. }) => K::ColStripToTile,
            (F::RowStrip { .. }, F::RowStrip { .. }) => K::RowStripRechunk,
            (F::ColStrip { .. }, F::ColStrip { .. }) => K::ColStripRechunk,
            (F::RowStrip { .. }, F::ColStrip { .. }) => K::RowStripToColStrip,
            (F::ColStrip { .. }, F::RowStrip { .. }) => K::ColStripToRowStrip,
            (f, F::Coo) if f.is_dense() => K::DenseToCoo,
            (F::Coo, F::Tile { .. }) => K::CooToTile,
            (f, F::CsrSingle) if f.is_dense() => K::DenseToCsrSingle,
            (F::CsrSingle, F::SingleTuple) => K::CsrSingleToSingle,
            (f, F::CsrTile { .. }) if f.is_dense() => K::TileToCsrTile,
            (F::CsrTile { .. }, F::Tile { .. }) => K::CsrTileToTile,
            _ => return None,
        };
        Some(Transform { kind, to })
    }

    /// Cost features of moving `m` from `from` through `t` (§7). The
    /// formulas account for where the data starts and ends:
    ///
    /// * gathers funnel every byte through one NIC;
    /// * scatters push every byte out of the single holder's NIC;
    /// * chunked-to-chunked moves shuffle in parallel across workers;
    /// * dense↔sparse conversions additionally scan every entry.
    pub fn features(
        &self,
        m: &MatrixType,
        from: PhysFormat,
        t: Transform,
        cluster: &Cluster,
    ) -> CostFeatures {
        use TransformKind as K;
        if t.kind == K::Identity {
            return CostFeatures::zero();
        }
        let bytes_in = from.total_bytes(m);
        let bytes_out = t.to.total_bytes(m);
        let tuples_in = from.num_tuples(m);
        let tuples_out = t.to.num_tuples(m);
        let moved = bytes_in.max(bytes_out);
        let par = cluster.effective_workers(tuples_in.max(tuples_out));

        let (net_bytes, ops, conv_flops) = match t.kind {
            K::Identity => (0.0, 0.0, 0.0),
            // Two aggregate operators; all data lands on one node.
            K::GatherToSingle => (bytes_in, 2.0, 0.0),
            // One node fans all data out.
            K::SingleToTile | K::SingleToRowStrip | K::SingleToColStrip => (bytes_out, 1.0, 0.0),
            // Parallel shuffles between chunked layouts.
            K::Retile
            | K::TileToRowStrip
            | K::TileToColStrip
            | K::RowStripToTile
            | K::ColStripToTile
            | K::RowStripRechunk
            | K::ColStripRechunk
            | K::RowStripToColStrip
            | K::ColStripToRowStrip => (moved / par, 1.0, 0.0),
            // Dense→sparse scans every dense entry; sparse→dense writes
            // every dense entry.
            K::DenseToCoo | K::DenseToCsrSingle => (bytes_out / par, 1.0, m.entries() / par),
            K::CooToTile => (moved / par, 2.0, m.nnz() / par),
            K::CsrSingleToSingle => (0.0, 1.0, m.entries()),
            K::TileToCsrTile => (0.0, 1.0, m.entries() / par),
            K::CsrTileToTile => (0.0, 1.0, m.entries() / par),
        };

        CostFeatures {
            cpu_flops: conv_flops,
            local_flops: 0.0,
            net_bytes,
            inter_bytes: moved,
            tuples: tuples_in + tuples_out,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: MatrixType = MatrixType {
        rows: 10_000,
        cols: 10_000,
        sparsity: 1.0,
    };

    #[test]
    fn there_are_twenty_transformations() {
        assert_eq!(ALL_TRANSFORM_KINDS.len(), 20);
    }

    #[test]
    fn identity_when_formats_match() {
        let cat = TransformCatalog;
        let f = PhysFormat::Tile { side: 1000 };
        let t = cat.find(&M, f, f).unwrap();
        assert_eq!(t.kind, TransformKind::Identity);
        assert_eq!(
            cat.features(&M, f, t, &Cluster::simsql_like(10)),
            CostFeatures::zero()
        );
    }

    #[test]
    fn distinct_tile_sides_are_not_identity() {
        let cat = TransformCatalog;
        let t = cat
            .find(
                &M,
                PhysFormat::Tile { side: 1000 },
                PhysFormat::Tile { side: 2500 },
            )
            .unwrap();
        assert_eq!(t.kind, TransformKind::Retile);
    }

    #[test]
    fn gather_classification() {
        let cat = TransformCatalog;
        for from in [
            PhysFormat::Tile { side: 1000 },
            PhysFormat::RowStrip { height: 100 },
            PhysFormat::ColStrip { width: 100 },
        ] {
            let t = cat.find(&M, from, PhysFormat::SingleTuple).unwrap();
            assert_eq!(t.kind, TransformKind::GatherToSingle);
        }
    }

    #[test]
    fn strip_conversions() {
        let cat = TransformCatalog;
        let rs = PhysFormat::RowStrip { height: 100 };
        let cs = PhysFormat::ColStrip { width: 1000 };
        assert_eq!(
            cat.find(&M, rs, cs).unwrap().kind,
            TransformKind::RowStripToColStrip
        );
        assert_eq!(
            cat.find(&M, cs, rs).unwrap().kind,
            TransformKind::ColStripToRowStrip
        );
        assert_eq!(
            cat.find(&M, rs, PhysFormat::RowStrip { height: 1000 })
                .unwrap()
                .kind,
            TransformKind::RowStripRechunk
        );
    }

    #[test]
    fn sparse_conversions_and_gaps() {
        let cat = TransformCatalog;
        let sparse = MatrixType::sparse(10_000, 10_000, 1e-3);
        let tile = PhysFormat::Tile { side: 1000 };
        let csr_tile = PhysFormat::CsrTile { side: 1000 };
        assert_eq!(
            cat.find(&sparse, tile, csr_tile).unwrap().kind,
            TransformKind::TileToCsrTile
        );
        assert_eq!(
            cat.find(&sparse, csr_tile, tile).unwrap().kind,
            TransformKind::CsrTileToTile
        );
        // Any dense layout can be compressed into CSR tiles directly.
        assert_eq!(
            cat.find(&sparse, PhysFormat::ColStrip { width: 100 }, csr_tile)
                .unwrap()
                .kind,
            TransformKind::TileToCsrTile
        );
        // COO cannot turn directly into strips.
        assert!(cat
            .find(
                &sparse,
                PhysFormat::Coo,
                PhysFormat::RowStrip { height: 100 }
            )
            .is_none());
    }

    #[test]
    fn gather_funnels_through_one_nic() {
        let cat = TransformCatalog;
        let cl = Cluster::simsql_like(10);
        let from = PhysFormat::Tile { side: 1000 };
        let t = cat.find(&M, from, PhysFormat::SingleTuple).unwrap();
        let f = cat.features(&M, from, t, &cl);
        // 10K×10K dense = 800 MB, all of which reaches the single target.
        assert_eq!(f.net_bytes, 8e8);
        assert_eq!(f.ops, 2.0);
    }

    #[test]
    fn parallel_shuffle_divides_by_workers() {
        let cat = TransformCatalog;
        let cl = Cluster::simsql_like(10);
        let from = PhysFormat::Tile { side: 1000 };
        let to = PhysFormat::Tile { side: 2500 };
        let t = cat.find(&M, from, to).unwrap();
        let f = cat.features(&M, from, t, &cl);
        assert_eq!(f.net_bytes, 8e8 / 10.0);
        assert_eq!(f.tuples, 100.0 + 16.0);
    }

    #[test]
    fn every_non_identity_kind_is_reachable_via_find() {
        // Closure check: each of the 20 kinds is produced by `find` for
        // some (m, from, to) triple.
        let cat = TransformCatalog;
        let sparse = MatrixType::sparse(10_000, 10_000, 1e-3);
        let tile1k = PhysFormat::Tile { side: 1000 };
        let cases: Vec<(MatrixType, PhysFormat, PhysFormat)> = vec![
            (M, tile1k, tile1k),
            (M, tile1k, PhysFormat::SingleTuple),
            (M, PhysFormat::SingleTuple, tile1k),
            (
                M,
                PhysFormat::SingleTuple,
                PhysFormat::RowStrip { height: 100 },
            ),
            (
                M,
                PhysFormat::SingleTuple,
                PhysFormat::ColStrip { width: 100 },
            ),
            (M, tile1k, PhysFormat::Tile { side: 100 }),
            (M, tile1k, PhysFormat::RowStrip { height: 100 }),
            (M, tile1k, PhysFormat::ColStrip { width: 100 }),
            (M, PhysFormat::RowStrip { height: 100 }, tile1k),
            (M, PhysFormat::ColStrip { width: 100 }, tile1k),
            (
                M,
                PhysFormat::RowStrip { height: 100 },
                PhysFormat::RowStrip { height: 1000 },
            ),
            (
                M,
                PhysFormat::ColStrip { width: 100 },
                PhysFormat::ColStrip { width: 1000 },
            ),
            (
                M,
                PhysFormat::RowStrip { height: 100 },
                PhysFormat::ColStrip { width: 100 },
            ),
            (
                M,
                PhysFormat::ColStrip { width: 100 },
                PhysFormat::RowStrip { height: 100 },
            ),
            (sparse, tile1k, PhysFormat::Coo),
            (sparse, PhysFormat::Coo, tile1k),
            (sparse, tile1k, PhysFormat::CsrSingle),
            (sparse, PhysFormat::CsrSingle, PhysFormat::SingleTuple),
            (sparse, tile1k, PhysFormat::CsrTile { side: 1000 }),
            (sparse, PhysFormat::CsrTile { side: 1000 }, tile1k),
        ];
        let mut seen = std::collections::HashSet::new();
        for (m, from, to) in cases {
            let t = cat
                .find(&m, from, to)
                .unwrap_or_else(|| panic!("no transform {from} -> {to}"));
            seen.insert(t.kind);
        }
        assert_eq!(seen.len(), 20, "kinds covered: {seen:?}");
    }
}
