//! Greedy per-vertex planners: the family of "choose locally, never
//! globally" strategies that the paper's baselines — hand-written
//! plans, the all-tile heuristic, the recruited experts (Experiment 4),
//! and SystemDS-style per-operator optimization (§9) — all instantiate.
//!
//! Unlike the dynamic programs, a greedy planner fixes each vertex's
//! implementation given only the already-fixed formats of its
//! producers. Its knobs control what each baseline persona knows:
//! which formats it considers, whether it accounts for transformation
//! costs, and whether it respects memory limits while planning.

use matopt_core::{
    Annotation, ComputeGraph, FormatCatalog, NodeKind, PhysFormat, PlanContext, Strategy,
    VertexChoice,
};
use matopt_cost::CostModel;
use matopt_opt::{transform_cost, vertex_options, OptError};

/// How a greedy persona scores and restricts its per-vertex choices.
pub struct GreedyConfig {
    /// Formats the persona considers for intermediates.
    pub catalog: FormatCatalog,
    /// Whether transformation costs enter the per-vertex score. The key
    /// behavioural difference from the paper's optimizer — SystemDS
    /// "does not integrate the costs of transformations between the
    /// various layouts into the optimization problem" (§9).
    pub count_transform_cost: bool,
    /// Whether the persona checks memory feasibility while planning
    /// (`false` models programmers whose first attempt crashes).
    pub respect_memory: bool,
    /// Implementation strategies the persona refuses to use (e.g. a
    /// programmer who does not know about broadcast joins).
    pub forbidden: Vec<Strategy>,
    /// When set, the persona does not score at all: it walks this
    /// preference list and takes the first feasible option whose output
    /// format matches (naive planning).
    pub format_preference: Option<Vec<PhysFormat>>,
}

/// Builds a greedy plan over `graph`.
///
/// # Errors
/// [`OptError::NoFeasiblePlan`] when a vertex has no acceptable option
/// under the persona's restrictions.
pub fn greedy_plan(
    graph: &ComputeGraph,
    ctx: &PlanContext<'_>,
    model: &dyn CostModel,
    cfg: &GreedyConfig,
) -> Result<Annotation, OptError> {
    let plan_cluster = if cfg.respect_memory {
        ctx.cluster
    } else {
        ctx.cluster.with_unlimited_resources()
    };
    let plan_ctx = PlanContext {
        registry: ctx.registry,
        transforms: ctx.transforms,
        cluster: plan_cluster,
    };
    let mut ann = Annotation::empty(graph);
    let mut formats: Vec<Option<PhysFormat>> =
        graph.iter().map(|(_, n)| n.source_format()).collect();
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Source { .. }) {
            continue;
        }
        let extra: Vec<Vec<PhysFormat>> = node
            .inputs
            .iter()
            .map(|i| formats[i.index()].into_iter().collect())
            .collect();
        let options = vertex_options(graph, id, &cfg.catalog, &plan_ctx, model, &extra);
        // Attach transforms from the fixed producer formats; drop
        // unreachable or forbidden options.
        let mut scored = Vec::new();
        for o in options {
            if cfg
                .forbidden
                .contains(&plan_ctx.registry.get(o.impl_id).strategy)
            {
                continue;
            }
            let mut ts = Vec::with_capacity(node.inputs.len());
            let mut tcost = 0.0;
            let mut ok = true;
            for (j, input) in node.inputs.iter().enumerate() {
                let Some(from) = formats[input.index()] else {
                    ok = false;
                    break;
                };
                let m = graph.node(*input).mtype;
                match transform_cost(&m, from, o.pin[j], &plan_ctx, model) {
                    Some((t, c)) => {
                        ts.push(t);
                        tcost += c;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let score = if cfg.count_transform_cost {
                o.impl_cost + tcost
            } else {
                o.impl_cost
            };
            scored.push((o, ts, score));
        }
        if scored.is_empty() {
            return Err(OptError::NoFeasiblePlan(id));
        }
        let (o, ts, _) = match &cfg.format_preference {
            Some(prefs) => prefs
                .iter()
                .find_map(|p| scored.iter().find(|(o, _, _)| o.out_format == *p))
                .unwrap_or(&scored[0]),
            None => scored
                .iter()
                .min_by(|a, b| a.2.total_cmp(&b.2))
                .expect("non-empty"),
        };
        formats[id.index()] = Some(o.out_format);
        ann.set(
            id,
            VertexChoice {
                impl_id: o.impl_id,
                input_transforms: ts.clone(),
                output_format: o.out_format,
            },
        );
    }
    Ok(ann)
}

/// A catalog restricted to 1000-tiles plus single-tuple fallback — what
/// the all-tile heuristic works with.
pub fn tile_only_catalog() -> FormatCatalog {
    FormatCatalog::new(vec![
        PhysFormat::Tile { side: 1000 },
        PhysFormat::SingleTuple,
    ])
}

/// The SystemDS-like catalog (§9): "two layouts for dense matrices:
/// block matrix (stored as 1000 × 1000 blocks), and single-tuple
/// matrix", plus its sparse layouts (triples and CSR blocks).
pub fn systemds_catalog() -> FormatCatalog {
    FormatCatalog::new(vec![
        PhysFormat::Tile { side: 1000 },
        PhysFormat::SingleTuple,
        PhysFormat::Coo,
        PhysFormat::CsrTile { side: 1000 },
        PhysFormat::CsrSingle,
    ])
}

/// `true` for the broadcast-style matmul strategies an expert without
/// distributed-systems depth would not reach for.
pub fn broadcast_strategies() -> Vec<Strategy> {
    vec![
        Strategy::MmBcastSingleColstrip,
        Strategy::MmRowstripBcastSingle,
        Strategy::MmTileBcast,
        Strategy::MmColstripRowstripOuter,
    ]
}

/// The strategies a tile-oriented SQL programmer (the paper's published
/// hand-written FFNN code, expressed as tiled relations with shuffle
/// joins and group-by SUM aggregations) does not use: broadcast joins
/// plus the no-aggregation cross join of the paper's "alternative
/// implementation".
pub fn shuffle_only_strategies() -> Vec<Strategy> {
    let mut v = broadcast_strategies();
    v.push(Strategy::MmRowstripColstripCross);
    v
}
