//! Front-door harness: quotas, batching, shedding, and the circuit
//! breaker, exercised end to end against real executions.

use matopt_core::{Cluster, ComputeGraph, FormatCatalog, ImplRegistry, NodeId, NodeKind};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::DistRelation;
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_serve::{
    BreakerConfig, BreakerState, ExecRequest, FrontDoor, FrontDoorConfig, PlanService, ServeConfig,
    ServeError, TenancyConfig, TenantConfig,
};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn service() -> Arc<PlanService> {
    Arc::new(PlanService::new(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        Cluster::simsql_like(4),
        Box::new(AnalyticalCostModel),
        ServeConfig::default(),
    ))
}

fn workload(spec: &str, seed: u64) -> (ComputeGraph, HashMap<NodeId, DistRelation>) {
    let graph = matopt_serve::protocol::workload_graph(spec, &Cluster::simsql_like(4))
        .expect("workload builds");
    let mut rng = seeded_rng(seed);
    let mut inputs = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    (graph, inputs)
}

#[test]
fn batched_executions_share_one_run_and_stay_bit_exact() {
    const CLIENTS: usize = 8;
    let svc = service();
    let front = Arc::new(FrontDoor::new(
        Arc::clone(&svc),
        FrontDoorConfig {
            exec_concurrency: 1,
            ..FrontDoorConfig::default()
        },
    ));
    let (graph, inputs) = workload("ffnn-small:16", 0xBA7C);
    // A deliberately heavier run pins the single exec slot while the
    // batch forms behind it: coalescing then does not depend on how
    // fast the batched workload itself executes.
    let (heavy, heavy_inputs) = workload("ffnn-small:256", 0x41AD);

    // Unbatched reference: plan + execute directly on the service.
    let planned = svc.plan(&graph).expect("plan");
    let reference = svc.execute(&graph, &planned, &inputs).expect("reference");

    let barrier = Barrier::new(CLIENTS);
    let responses: Vec<_> = std::thread::scope(|scope| {
        let holder = {
            let front = Arc::clone(&front);
            let heavy = &heavy;
            let heavy_inputs = &heavy_inputs;
            scope.spawn(move || {
                front.execute(&ExecRequest {
                    tenant: "batch",
                    graph: heavy,
                    inputs: heavy_inputs,
                    input_key: 1,
                    deadline: None,
                })
            })
        };
        // Wait until the heavy run actually holds the slot.
        let t0 = Instant::now();
        while front.stats().flights == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(front.stats().flights > 0, "holder never took the slot");
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let front = Arc::clone(&front);
                let graph = &graph;
                let inputs = &inputs;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    front
                        .execute(&ExecRequest {
                            tenant: "batch",
                            graph,
                            inputs,
                            input_key: 42,
                            deadline: None,
                        })
                        .expect("execute succeeds")
                })
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        holder.join().unwrap().expect("holder finishes");
        responses
    });

    // Every response is bit-identical to the unbatched run.
    for resp in &responses {
        for (sink, rel) in &reference.sinks {
            assert_eq!(&resp.outcome.sinks[sink], rel, "sink {sink} diverged");
        }
        assert!(!resp.degraded);
    }
    let stats = front.stats();
    assert_eq!(stats.exec_requests, CLIENTS as u64 + 1);
    assert_eq!(stats.exec_ok, CLIENTS as u64 + 1);
    assert_eq!(
        stats.batched + stats.flights,
        CLIENTS as u64 + 1,
        "every request is either a flight leader or batched onto one"
    );
    assert!(
        stats.batched >= 1,
        "concurrent identical requests must coalesce at least once"
    );
    // Distinct input keys must NOT batch.
    let other = front
        .execute(&ExecRequest {
            tenant: "batch",
            graph: &graph,
            inputs: &inputs,
            input_key: 43,
            deadline: None,
        })
        .expect("execute succeeds");
    assert!(!other.batched, "different input key must run separately");
}

#[test]
fn quota_exhaustion_rejects_structurally_and_spares_other_tenants() {
    const NOISY: usize = 8;
    let svc = service();
    let tenancy = TenancyConfig::default().tenant(
        "noisy",
        TenantConfig {
            max_inflight: 1,
            ..TenantConfig::default()
        },
    );
    let front = Arc::new(FrontDoor::new(
        Arc::clone(&svc),
        FrontDoorConfig {
            tenancy,
            exec_concurrency: 1,
            batching: false,
            ..FrontDoorConfig::default()
        },
    ));
    // Heavy enough that the 8 concurrent runs genuinely overlap: a
    // sub-millisecond workload can serialize through the quota gate
    // without ever tripping it.
    let (graph, inputs) = workload("ffnn-small:256", 0x900D);

    let barrier = Barrier::new(NOISY);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..NOISY)
            .map(|i| {
                let front = Arc::clone(&front);
                let graph = &graph;
                let inputs = &inputs;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    front.execute(&ExecRequest {
                        tenant: "noisy",
                        graph,
                        inputs,
                        input_key: i as u64,
                        deadline: None,
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::QuotaExceeded { tenant }) if tenant == "noisy"))
        .count();
    assert_eq!(ok + rejected, NOISY, "only ok or QuotaExceeded expected");
    assert!(ok >= 1, "quota of 1 admits at least one");
    assert!(
        rejected >= 1,
        "8 concurrent requests at quota 1 must reject"
    );

    // A well-behaved tenant is untouched by the noisy tenant's quota.
    let polite = front
        .execute(&ExecRequest {
            tenant: "polite",
            graph: &graph,
            inputs: &inputs,
            input_key: 99,
            deadline: None,
        })
        .expect("other tenant unaffected");
    assert!(!polite.degraded);

    let tenants = front.tenant_stats();
    let noisy = tenants.iter().find(|t| t.name == "noisy").expect("noisy");
    assert_eq!(noisy.quota_rejects, rejected as u64);
    assert_eq!(noisy.ok, ok as u64);
    assert_eq!(noisy.inflight, 0, "all in-flight slots returned");
}

#[test]
fn queued_work_past_deadline_is_shed() {
    let svc = service();
    let front = Arc::new(FrontDoor::new(
        Arc::clone(&svc),
        FrontDoorConfig {
            exec_concurrency: 1,
            batching: false,
            ..FrontDoorConfig::default()
        },
    ));
    // Heavy enough that the holder is still running when the expired
    // request arrives behind it.
    let (graph, inputs) = workload("ffnn-small:256", 0xDEAD);

    std::thread::scope(|scope| {
        // Occupy the single slot with a real run.
        let holder = {
            let front = Arc::clone(&front);
            let graph = &graph;
            let inputs = &inputs;
            scope.spawn(move || {
                front.execute(&ExecRequest {
                    tenant: "busy",
                    graph,
                    inputs,
                    input_key: 1,
                    deadline: None,
                })
            })
        };
        // Wait until the slot is actually held.
        let t0 = Instant::now();
        while front.stats().flights == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(front.stats().flights > 0, "holder never took the slot");

        // A request whose deadline has already passed must be shed, not
        // queued behind the holder.
        let err = front
            .execute(&ExecRequest {
                tenant: "late",
                graph: &graph,
                inputs: &inputs,
                input_key: 2,
                deadline: Some(Instant::now() - Duration::from_millis(1)),
            })
            .expect_err("expired work must not run");
        assert_eq!(err, ServeError::DeadlineExceeded);
        holder.join().unwrap().expect("holder finishes");
    });
    let stats = front.stats();
    assert!(stats.shed >= 1, "shed counter must move: {stats:?}");
    let late = front
        .tenant_stats()
        .into_iter()
        .find(|t| t.name == "late")
        .expect("late tenant tracked");
    assert_eq!(late.shed, 1);
}

#[test]
fn breaker_storm_degrades_then_probes_back_to_closed() {
    let svc = service();
    let front = FrontDoor::new(
        Arc::clone(&svc),
        FrontDoorConfig {
            breaker: BreakerConfig {
                enabled: true,
                trip_threshold: 3,
                window: Duration::from_secs(30),
                cooldown: Duration::from_millis(20),
                probe_successes: 1,
            },
            batching: false,
            ..FrontDoorConfig::default()
        },
    );
    let (graph, inputs) = workload("ffnn-small:16", 0x5707);

    // Three failing executions (no inputs) are the storm.
    let empty = HashMap::new();
    for i in 0..3 {
        let err = front
            .execute(&ExecRequest {
                tenant: "storm",
                graph: &graph,
                inputs: &empty,
                input_key: i,
                deadline: None,
            })
            .expect_err("missing inputs must fail");
        assert!(matches!(err, ServeError::Exec(_)), "got {err:?}");
    }
    assert_eq!(front.breaker().state(), BreakerState::Open);
    assert_eq!(front.breaker().stats().trips, 1, "exactly one trip");

    // While open: degraded service still answers correctly.
    let degraded = front
        .execute(&ExecRequest {
            tenant: "storm",
            graph: &graph,
            inputs: &inputs,
            input_key: 10,
            deadline: None,
        })
        .expect("degraded path still serves");
    assert!(degraded.degraded, "breaker open must degrade");

    // After cooldown: one successful probe closes it again.
    std::thread::sleep(Duration::from_millis(25));
    let probe = front
        .execute(&ExecRequest {
            tenant: "storm",
            graph: &graph,
            inputs: &inputs,
            input_key: 11,
            deadline: None,
        })
        .expect("probe succeeds");
    assert!(!probe.degraded, "probe runs the normal path");
    assert_eq!(front.breaker().state(), BreakerState::Closed);
    let stats = front.breaker().stats();
    assert_eq!(stats.trips, 1, "recovery is not a second trip");
    assert!(stats.degraded >= 1);
    assert!(stats.probes >= 1);
}

#[test]
fn drain_refuses_new_work_with_structured_error() {
    let svc = service();
    let front = FrontDoor::new(Arc::clone(&svc), FrontDoorConfig::default());
    let (graph, inputs) = workload("ffnn-small:16", 0xD0A1);
    front
        .execute(&ExecRequest {
            tenant: "t",
            graph: &graph,
            inputs: &inputs,
            input_key: 0,
            deadline: None,
        })
        .expect("pre-drain work runs");
    assert!(!front.is_draining());
    front.drain();
    assert!(front.is_draining());
    let err = front
        .execute(&ExecRequest {
            tenant: "t",
            graph: &graph,
            inputs: &inputs,
            input_key: 1,
            deadline: None,
        })
        .expect_err("post-drain work refused");
    assert_eq!(err, ServeError::Draining);
    assert_eq!(
        front.plan("t", &graph).expect_err("plan refused"),
        ServeError::Draining
    );
}

#[test]
fn disabled_tenancy_serves_without_bookkeeping() {
    let svc = service();
    let front = FrontDoor::new(
        Arc::clone(&svc),
        FrontDoorConfig {
            tenancy: TenancyConfig::disabled(),
            ..FrontDoorConfig::default()
        },
    );
    let (graph, inputs) = workload("ffnn-small:16", 0x0FF);
    let resp = front
        .execute(&ExecRequest {
            tenant: "anyone",
            graph: &graph,
            inputs: &inputs,
            input_key: 0,
            deadline: None,
        })
        .expect("serves fine");
    assert!(!resp.degraded);
    assert!(
        front.tenant_stats().is_empty(),
        "disabled tenancy keeps no per-tenant state"
    );
    assert_eq!(front.stats().exec_ok, 1);
}
