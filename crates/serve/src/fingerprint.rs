//! Workload fingerprints: an isomorphism-stable 128-bit key over
//! (compute graph, cluster configuration, bucketed sparsity
//! statistics, format catalog).
//!
//! The graph contribution comes from
//! [`matopt_core::canonical_form_with`], so relabeled-but-equal graphs
//! — the same expression built by different `ExprBuilder` call orders —
//! collapse onto one fingerprint. Sparsity statistics are bucketed to
//! the cost model's sensitivity before hashing: the adaptive executor
//! re-plans at a relative sparsity error of ~1.2×, so the fingerprint
//! uses eighth-decade buckets (each spanning a 10^(1/8) ≈ 1.33× density
//! range). Statistics drifting within a bucket keep hitting the cached
//! plan; drifting past a bucket boundary re-plans — exactly the
//! granularity at which the cost model would start choosing different
//! implementations.
//!
//! The cluster and catalog are hashed exactly (every rate, every
//! format): a plan optimized for one machine budget is never served to
//! another.

use matopt_core::{
    canonical_form_with, fnv1a_128, format_words, Cluster, ComputeGraph, FormatCatalog,
};

/// Version word mixed into every fingerprint; bump when the encoding
/// changes so persisted caches from older layouts miss instead of
/// colliding.
const FP_VERSION: u64 = 1;

/// A 128-bit workload fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as 32 lowercase hex digits.
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`Fingerprint::hex`] form back.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }

    /// Which of `n` shards this fingerprint belongs to.
    pub(crate) fn shard(self, n: usize) -> usize {
        // The low bits are well-mixed FNV output; fold in some high
        // bits anyway so shard counts that divide 2^64 stay balanced.
        (((self.0 >> 64) as u64 ^ self.0 as u64) % n as u64) as usize
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Buckets a density to the cost model's sensitivity: eighth-decade
/// log-scale buckets (ratio 10^(1/8) ≈ 1.33 between boundaries, on the
/// order of the 1.2× relative error at which adaptive execution
/// re-plans), with exact endpoints for the two values the optimizer
/// treats specially — fully dense (`1.0`, where dense-only kernels
/// apply) and empty (`0.0`).
pub fn sparsity_bucket(sparsity: f64) -> u64 {
    if sparsity >= 1.0 {
        return u64::MAX;
    }
    if sparsity <= 0.0 || !sparsity.is_finite() {
        return 0;
    }
    // log10 of the smallest positive f64 is ≈ −323.6, so the bucket
    // index is ≥ −2590 and the +10_000 bias keeps it positive.
    let bucket = (sparsity.log10() * 8.0).floor() as i64;
    (10_000 + bucket).max(1) as u64
}

/// Words describing the cluster exactly — every rate bit-for-bit, so
/// any reconfiguration (including [`Cluster::degraded`]) changes the
/// fingerprint.
fn cluster_words(c: &Cluster) -> Vec<u64> {
    vec![
        c.workers as u64,
        c.worker_ram_bytes.to_bits(),
        c.flops_per_sec.to_bits(),
        c.single_thread_flops_per_sec.to_bits(),
        c.net_bytes_per_sec.to_bits(),
        c.inter_bytes_per_sec.to_bits(),
        c.tuple_overhead_sec.to_bits(),
        c.op_setup_sec.to_bits(),
        c.max_tuple_bytes.to_bits(),
        c.worker_disk_bytes.to_bits(),
        u64::from(c.reclaim_scratch),
        c.crash_rate_per_hour.to_bits(),
        c.straggler_rate.to_bits(),
        c.straggler_slowdown.to_bits(),
    ]
}

/// The fingerprint of planning `graph` on `cluster` over `catalog`.
pub fn fingerprint(
    graph: &ComputeGraph,
    cluster: &Cluster,
    catalog: &FormatCatalog,
) -> Fingerprint {
    let form = canonical_form_with(graph, &|m| sparsity_bucket(m.sparsity));
    let mut words = form.words;
    words.push(FP_VERSION);
    let cw = cluster_words(cluster);
    words.push(cw.len() as u64);
    words.extend_from_slice(&cw);
    words.push(catalog.len() as u64);
    for f in catalog.formats() {
        words.extend_from_slice(&format_words(*f));
    }
    Fingerprint(fnv1a_128(&words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_core::{MatrixType, Op, PhysFormat};

    fn graph(sparsity: f64) -> ComputeGraph {
        let mut g = ComputeGraph::new();
        let a = g.add_source(MatrixType::sparse(64, 64, sparsity), PhysFormat::CsrSingle);
        let b = g.add_source(MatrixType::dense(64, 16), PhysFormat::Tile { side: 8 });
        let p = g.add_op(Op::MatMul, &[a, b]).unwrap();
        g.add_op(Op::Relu, &[p]).unwrap();
        g
    }

    #[test]
    fn bucket_is_monotone_and_pins_endpoints() {
        assert_eq!(sparsity_bucket(1.0), u64::MAX);
        assert_eq!(sparsity_bucket(0.0), 0);
        assert_eq!(sparsity_bucket(-0.5), 0);
        let mut prev = 0;
        for s in [1e-300, 1e-9, 1e-4, 0.01, 0.1, 0.5, 0.999] {
            let b = sparsity_bucket(s);
            assert!(b > prev, "bucket({s}) = {b} not above {prev}");
            prev = b;
        }
        assert!(sparsity_bucket(0.999) < u64::MAX);
    }

    #[test]
    fn bucket_width_matches_replan_sensitivity() {
        // Within a 1.33x band the bucket holds; past it, it moves.
        assert_eq!(sparsity_bucket(0.101), sparsity_bucket(0.12));
        assert_ne!(sparsity_bucket(0.09), sparsity_bucket(0.12));
    }

    #[test]
    fn cluster_and_catalog_feed_the_fingerprint() {
        let g = graph(0.05);
        let cat = FormatCatalog::paper_default();
        let base = fingerprint(&g, &Cluster::simsql_like(4), &cat);
        assert_ne!(base, fingerprint(&g, &Cluster::simsql_like(5), &cat));
        assert_ne!(
            base,
            fingerprint(&g, &Cluster::simsql_like(4).degraded(), &cat)
        );
        assert_ne!(
            base,
            fingerprint(&g, &Cluster::simsql_like(4), &cat.clone().dense_only())
        );
        assert_eq!(base, fingerprint(&g, &Cluster::simsql_like(4), &cat));
    }

    #[test]
    fn hex_round_trips() {
        let fp = fingerprint(
            &graph(0.05),
            &Cluster::simsql_like(4),
            &FormatCatalog::paper_default(),
        );
        assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
    }
}
