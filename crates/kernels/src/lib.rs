//! # matopt-kernels
//!
//! Local (single-node) dense and sparse linear-algebra kernels used by the
//! `matopt` distributed-matrix optimizer and its execution engine.
//!
//! The paper's prototype relies on BLAS (Intel MKL) for the innermost
//! compute. This environment has no BLAS available offline, so this crate
//! provides hand-written, cache-aware kernels:
//!
//! * [`DenseMatrix`] — row-major dense matrices with blocked GEMM,
//!   elementwise maps, reductions, row-wise softmax, and LU-based inverse.
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed-sparse-row and coordinate
//!   formats with sparse–dense multiply, conversions, and sparse
//!   elementwise operations.
//! * Tiling helpers ([`DenseMatrix::block`], [`DenseMatrix::from_blocks`])
//!   used to chunk matrices into the physical layouts the optimizer
//!   reasons about.
//! * Deterministic random generation ([`random_dense_normal`],
//!   [`random_sparse_csr`]) for workloads.
//!
//! The kernels are deliberately dependency-light (only `rand` for data
//! generation) so the rest of the workspace can build on them without
//! pulling a numerical stack.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod dense;
mod random;
mod solve;
mod sparse;
pub mod tune;

pub use dense::{gemm_mode, set_gemm_mode, DenseMatrix, GemmBlocking, GemmMode};
pub use random::{random_dense_normal, random_sparse_csr, seeded_rng};
pub use solve::{lu_factor, lu_solve, LuError, LuFactors};
pub use sparse::{CooMatrix, CsrMatrix, CsrVariant};
pub use tune::{KernelChoice, KernelConfig, ShapeClass, Thresholds, TuneOptions, TuningCatalog};

/// Tolerance-based float comparison used throughout the test-suites.
///
/// Returns `true` when `a` and `b` differ by at most `tol` in absolute
/// terms or `tol` in relative terms (whichever is looser), which is
/// appropriate for comparing results of re-associated floating-point
/// computations (e.g. a tiled matrix multiply versus a flat one).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(100.0, 100.0 + 1e-9, 1e-10));
        assert!(!approx_eq(100.0, 101.0, 1e-6));
    }

    #[test]
    fn approx_eq_small_values_use_absolute_floor() {
        // Near zero the `max(1.0)` scale makes the comparison absolute.
        assert!(approx_eq(1e-12, -1e-12, 1e-9));
    }
}
