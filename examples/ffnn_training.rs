//! A feed-forward network training step, optimized and executed.
//!
//! Run with: `cargo run --release -p matopt-bench --example ffnn_training`
//!
//! Builds the paper's FFNN forward+backprop compute graph (§8.2) at
//! laptop scale, optimizes it with the frontier DP, executes the plan
//! on the chunk-level engine, and verifies that the updated weights
//! match a plain single-node evaluation of the same dataflow. Also
//! simulates the same *logical* computation at the paper's scale to
//! show the auto/hand-written/all-tile comparison of Figure 6.

use matopt_baselines::{all_tile_plan, hand_written_plan};
use matopt_core::{Cluster, FormatCatalog, ImplRegistry, NodeKind, PhysFormat, PlanContext};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan, reference_eval, simulate_plan, DistRelation};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;

fn main() {
    let registry = ImplRegistry::paper_default();
    let model = AnalyticalCostModel;

    // --- Laptop-scale training step, executed for real -----------------
    let cfg = FfnnConfig {
        batch: 24,
        features: 60,
        hidden: 16,
        labels: 8,
        input_sparsity: 1.0,
        learning_rate: 0.05,
        input_format: PhysFormat::RowStrip { height: 8 },
        w1_format: PhysFormat::Tile { side: 8 },
        w_format: PhysFormat::Tile { side: 8 },
    };
    let ffnn = ffnn_w2_update_graph(cfg).expect("type-correct network");
    let g = &ffnn.graph;

    let cluster = Cluster::simsql_like(4);
    let ctx = PlanContext::new(&registry, cluster);
    let catalog = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 8 },
        PhysFormat::RowStrip { height: 8 },
        PhysFormat::ColStrip { width: 8 },
    ]);
    let octx = OptContext::new(&ctx, &catalog, &model);
    let plan = frontier_dp_beam(g, &octx, 2000).expect("optimizable");
    println!(
        "optimized the {}-vertex backprop graph (estimated cost {:.3}s)",
        g.len(),
        plan.cost
    );

    let mut rng = seeded_rng(42);
    let mut rels = HashMap::new();
    let mut dense = HashMap::new();
    for (id, node) in g.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
            dense.insert(id, d);
        }
    }
    let out = execute_plan(g, &plan.annotation, &rels, &registry).expect("executes");
    let reference = reference_eval(g, &dense).expect("reference");
    for (sink, rel) in &out.sinks {
        assert!(
            rel.to_dense().approx_eq(&reference[sink], 1e-9),
            "distributed training step diverged from the reference at {sink}"
        );
    }
    println!(
        "updated W2/W3 match the single-node reference ({} sinks verified, {:.1} ms wall)",
        out.sinks.len(),
        out.total_seconds * 1e3
    );

    // --- Paper-scale what-if: Figure 6's 10K row -------------------------
    let paper_cfg = FfnnConfig::simsql_experiment(10_000);
    let paper_g = ffnn_w2_update_graph(paper_cfg).unwrap().graph;
    let paper_cluster = Cluster::simsql_like(10);
    let paper_ctx = PlanContext::new(&registry, paper_cluster);
    let paper_catalog = FormatCatalog::paper_default().dense_only();
    let paper_octx = OptContext::new(&paper_ctx, &paper_catalog, &model);
    let auto = frontier_dp_beam(&paper_g, &paper_octx, 4000).unwrap();
    let auto_sim = simulate_plan(&paper_g, &auto.annotation, &paper_ctx, &model).unwrap();
    let hand = hand_written_plan(&paper_g, &paper_ctx, &model).unwrap();
    let hand_sim = simulate_plan(&paper_g, &hand, &paper_ctx, &model).unwrap();
    let tiles = all_tile_plan(&paper_g, &paper_ctx, &model).unwrap();
    let tile_sim = simulate_plan(&paper_g, &tiles, &paper_ctx, &model).unwrap();
    println!("\nat paper scale (hidden 10K, 10 workers; paper: 6:15 / 10:06 / 9:01):");
    println!("  auto-generated : {}", auto_sim.outcome);
    println!("  hand-written   : {}", hand_sim.outcome);
    println!("  all-tile       : {}", tile_sim.outcome);
}
