//! A small ordered parallel-map over chunk work items, built on
//! `std::thread::scope`. The real executor uses it to spread
//! chunk-local kernels across cores, mimicking the per-worker
//! parallelism of the simulated cluster.

/// Applies `f` to every item, in parallel when the batch is large
/// enough, preserving order.
pub(crate) fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let len = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(len.max(1));
    // Tiny batches are not worth the thread handshake.
    if threads <= 1 || len < 4 {
        return items.iter().map(&f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    std::thread::scope(|s| {
        for (islice, oslice) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(|| {
                for (i, o) in islice.iter().zip(oslice.iter_mut()) {
                    *o = Some(f(i));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i| i * 2);
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_small_batches_serially() {
        assert_eq!(par_map(&[1, 2], |i| i + 1), vec![2, 3]);
        assert_eq!(par_map::<i32, i32, _>(&[], |i| *i), Vec::<i32>::new());
    }
}
