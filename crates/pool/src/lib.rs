//! # matopt-pool
//!
//! A persistent work-stealing thread pool shared by the real executor
//! (`matopt-engine`) and, behind a feature gate, the dense kernels
//! (`matopt-kernels`).
//!
//! The pre-pool executor spread chunk batches over a fresh
//! `std::thread::scope` per call with fixed-size chunking, which pays a
//! thread spawn/join handshake on every batch and serializes the tail
//! behind whichever fixed chunk happens to hold the heavy items. This
//! pool replaces both costs:
//!
//! * **Persistent workers.** Workers are spawned once (lazily, on first
//!   use of [`Pool::global`]) and parked on a condition variable when
//!   idle; a batch costs queue pushes, not thread spawns.
//! * **Per-item stealing.** Every item of a [`Pool::try_map`] batch is
//!   an individually stealable task, distributed round-robin over the
//!   per-worker deques. An idle worker steals single items from its
//!   peers, so a pathologically skewed batch (one heavy item among many
//!   light ones) no longer serializes behind a fixed chunk — see the
//!   `steals_individual_items_under_skew` regression test.
//! * **Help-while-wait.** A thread blocked on a batch or a
//!   [`TaskGroup`] drains queued jobs itself instead of sleeping. This
//!   makes nested parallelism (a parallel kernel inside a pool task)
//!   deadlock-free by construction: every waiter makes progress.
//!
//! The whole crate is `forbid(unsafe_code)`, like the rest of the
//! workspace: jobs are `'static` boxed closures, batches share state
//! through `Arc`, and the deques are mutex-guarded `VecDeque`s rather
//! than lock-free Chase–Lev deques. At chunk granularity (kernels run
//! for micro- to milliseconds) the mutex cost is noise.
//!
//! Worker closures run under [`std::panic::catch_unwind`]: a panic in
//! one item is captured and reported as that item's error instead of
//! poisoning the pool, preserving the executor's panic → recoverable
//! fault contract. [`Pool::map`] re-panics the first captured panic on
//! the caller's thread, for call sites whose closures are known not to
//! panic.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Batches smaller than this run inline on the caller: the queue
/// handshake is not worth it (matches the pre-pool executor's serial
/// cutoff).
const MIN_PARALLEL_ITEMS: usize = 4;

/// How long an idle worker sleeps between queue scans. Wakeups are
/// notified eagerly; the timeout only bounds the cost of a lost wakeup.
const IDLE_WAIT: Duration = Duration::from_millis(10);

/// How long a waiting caller sleeps when there is nothing to help with.
const HELP_WAIT: Duration = Duration::from_micros(500);

static POOL_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, queue index)` when the current thread is a pool
    /// worker — lets nested batches push/pop the worker's own deque.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`)
/// into a human-readable string.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Cumulative pool counters, readable at any time via [`Pool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed (by workers and by helping callers).
    pub tasks: u64,
    /// Jobs taken from a deque owned by another worker.
    pub steals: u64,
    /// Parallel batches submitted through [`Pool::try_map`].
    pub batches: u64,
    /// Nanoseconds spent inside queued jobs, summed across workers and
    /// helping callers. Divided by wall time × workers this is pool
    /// utilization.
    pub busy_ns: u64,
}

impl PoolStats {
    /// Counter-wise difference `self - earlier` (for per-run deltas).
    #[must_use]
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steals: self.steals.saturating_sub(earlier.steals),
            batches: self.batches.saturating_sub(earlier.batches),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
        }
    }

    /// Seconds spent inside queued jobs ([`PoolStats::busy_ns`] as f64).
    #[must_use]
    pub fn busy_seconds(&self) -> f64 {
        self.busy_ns as f64 / 1e9
    }
}

/// Per-worker counters, readable via [`Pool::worker_stats`]. Entry 0
/// accounts work done by *helping callers* (threads blocked in
/// [`Pool::try_map`] or [`TaskGroup::wait`] that drain queues instead
/// of sleeping); entries `1..=workers` are the pool's own threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker (or the helper pseudo-worker) executed.
    pub tasks: u64,
    /// Nanoseconds this worker spent inside jobs.
    pub busy_ns: u64,
}

/// Per-queue task/busy-time counters (`worked[0]` = helping callers,
/// `worked[1..=threads]` = the pool's workers).
#[derive(Default)]
struct QueueCounters {
    tasks: AtomicU64,
    busy_ns: AtomicU64,
}

struct PoolShared {
    /// `queues[0]` is the shared injector; `queues[1..=threads]` are the
    /// per-worker deques (owners pop newest-first, thieves steal
    /// oldest-first).
    queues: Vec<Mutex<VecDeque<Job>>>,
    lock: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
    rr: AtomicUsize,
    tasks: AtomicU64,
    steals: AtomicU64,
    batches: AtomicU64,
    /// One slot per queue, same indexing as `queues`.
    worked: Vec<QueueCounters>,
    threads: usize,
    id: u64,
}

impl PoolShared {
    fn notify_all(&self) {
        // Lock/unlock pairs the notification with waiters' rechecks.
        drop(self.lock.lock().unwrap());
        self.cv.notify_all();
    }

    /// Pops one job: the caller's own deque first (newest-first, for
    /// locality), then the injector, then steals oldest-first from the
    /// other workers.
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(me) = me {
            if let Some(job) = self.queues[me].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.queues[0].lock().unwrap().pop_front() {
            return Some(job);
        }
        let start = me.unwrap_or(0);
        for off in 1..self.queues.len() {
            let q = 1 + (start + off - 1) % (self.queues.len() - 1);
            if Some(q) == me {
                continue;
            }
            if let Some(job) = self.queues[q].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Runs one job, charging it to `me`'s per-queue counters (`None`
    /// = a helping caller, charged to slot 0).
    fn run(&self, me: Option<usize>, job: Job) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        job();
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let w = &self.worked[me.unwrap_or(0)];
        w.tasks.fetch_add(1, Ordering::Relaxed);
        w.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Pushes one job to the injector.
    fn submit_one(&self, job: Job) {
        self.queues[0].lock().unwrap().push_back(job);
        self.notify_all();
    }

    /// Distributes a batch round-robin over the worker deques so idle
    /// workers start stealing immediately.
    fn submit_many(&self, jobs: Vec<Job>) {
        if self.threads <= 1 {
            let mut q = self.queues[0].lock().unwrap();
            q.extend(jobs);
        } else {
            for job in jobs {
                let w = 1 + self.rr.fetch_add(1, Ordering::Relaxed) % self.threads;
                self.queues[w].lock().unwrap().push_back(job);
            }
        }
        self.notify_all();
    }

    fn has_job(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    fn worker_loop(self: Arc<Self>, me: usize) {
        WORKER.with(|w| w.set(Some((self.id, me))));
        loop {
            if let Some(job) = self.find_job(Some(me)) {
                self.run(Some(me), job);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            let guard = self.lock.lock().unwrap();
            if self.has_job() || self.shutdown.load(Ordering::Acquire) {
                continue;
            }
            let _ = self.cv.wait_timeout(guard, IDLE_WAIT).unwrap();
        }
    }

    /// The current thread's deque index in this pool, if it is one of
    /// this pool's workers.
    fn my_queue(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((id, q)) if id == self.id => Some(q),
            _ => None,
        })
    }

    /// Runs queued jobs until `done()` holds, sleeping briefly only
    /// when there is nothing to help with.
    fn help_until(&self, done: impl Fn() -> bool) {
        let me = self.my_queue();
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.find_job(me) {
                self.run(me, job);
                continue;
            }
            let guard = self.lock.lock().unwrap();
            if done() || self.has_job() {
                continue;
            }
            let _ = self.cv.wait_timeout(guard, HELP_WAIT).unwrap();
        }
    }
}

/// A handle to a work-stealing pool. Cheap to clone; all clones share
/// the same workers. Most callers want [`Pool::global`].
#[derive(Clone)]
pub struct Pool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.shared.threads)
            .finish()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // The last handle (workers hold `Arc<PoolShared>`, not `Pool`)
        // shuts the workers down so short-lived pools in tests don't
        // leak threads. The global pool is never dropped.
        if Arc::strong_count(&self.shared) == 1 + self.shared.threads {
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.notify_all();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// Creates a standalone pool with `threads` workers (`0` and `1`
    /// both mean "no worker threads": batches run inline and spawned
    /// jobs run on whichever thread waits on them).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let workers = if threads <= 1 { 0 } else { threads };
        let shared = Arc::new(PoolShared {
            queues: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            worked: (0..=workers).map(|_| QueueCounters::default()).collect(),
            threads: workers,
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
        });
        for w in 1..=workers {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("matopt-pool-{w}"))
                .spawn(move || s.worker_loop(w))
                .expect("spawn pool worker");
        }
        Pool { shared }
    }

    /// The process-wide pool, created on first use. Sized by the
    /// `MATOPT_POOL_THREADS` environment variable when set (useful for
    /// benchmarks and reproducible tests), otherwise by
    /// [`std::thread::available_parallelism`].
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("MATOPT_POOL_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|n| *n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(4)
                });
            Pool::new(threads)
        })
    }

    /// Worker threads backing this pool (0 ⇒ everything runs inline).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shared.threads
    }

    /// The effective parallelism of a batch: workers plus the helping
    /// caller, at least 1.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.shared.threads.max(1)
    }

    /// Snapshot of the cumulative counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            busy_ns: self
                .shared
                .worked
                .iter()
                .map(|w| w.busy_ns.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Per-worker counters: entry 0 is the helping-caller
    /// pseudo-worker, entries `1..=workers()` the pool threads. A
    /// single-threaded pool reports only entry 0 (and inline batches
    /// bypass the queues entirely, so it often stays zero).
    #[must_use]
    pub fn worker_stats(&self) -> Vec<WorkerStats> {
        self.shared
            .worked
            .iter()
            .map(|w| WorkerStats {
                tasks: w.tasks.load(Ordering::Relaxed),
                busy_ns: w.busy_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Ordered parallel map: applies `f` to `0..n`, each item an
    /// individually stealable task, and returns the results in index
    /// order. Panics inside `f` are caught per item; the first
    /// panicking index (in item order) is reported as `Err(detail)`.
    ///
    /// Small batches (and every batch on a single-threaded pool) run
    /// inline on the caller, short-circuiting at the first panic —
    /// exactly the pre-pool serial contract.
    ///
    /// # Errors
    /// `Err(detail)` with the first panicking item's rendered payload.
    pub fn try_map<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, String>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        if self.shared.threads <= 1 || n < MIN_PARALLEL_ITEMS {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(catch_unwind(AssertUnwindSafe(|| f(i))).map_err(panic_detail)?);
            }
            return Ok(out);
        }

        struct Batch<R, F> {
            f: F,
            slots: Vec<Mutex<Option<Result<R, String>>>>,
            remaining: AtomicUsize,
        }
        let batch = Arc::new(Batch {
            f,
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
        });
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let mut jobs: Vec<Job> = Vec::with_capacity(n);
        for i in 0..n {
            let b = Arc::clone(&batch);
            let ps = Arc::clone(&self.shared);
            jobs.push(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(|| (b.f)(i))).map_err(panic_detail);
                *b.slots[i].lock().unwrap() = Some(r);
                if b.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    ps.notify_all();
                }
            }));
        }
        self.shared.submit_many(jobs);
        self.shared
            .help_until(|| batch.remaining.load(Ordering::Acquire) == 0);

        let mut out = Vec::with_capacity(n);
        for slot in &batch.slots {
            out.push(slot.lock().unwrap().take().expect("batch slot filled")?);
        }
        Ok(out)
    }

    /// Infallible [`Pool::try_map`] for closures known not to panic:
    /// re-panics the first captured panic on the caller's thread
    /// (unwinding normally rather than aborting the process).
    pub fn map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        match self.try_map(n, f) {
            Ok(out) => out,
            Err(detail) => panic!("pool worker closure panicked: {detail}"),
        }
    }

    /// Creates a task group for dynamically spawned jobs (the DAG
    /// scheduler's unit of orchestration).
    #[must_use]
    pub fn group(&self) -> TaskGroup {
        TaskGroup {
            pool: self.clone(),
            shared: Arc::new(GroupShared {
                active: AtomicUsize::new(0),
                failure: Mutex::new(None),
            }),
        }
    }
}

struct GroupShared {
    active: AtomicUsize,
    failure: Mutex<Option<String>>,
}

/// A set of dynamically spawned jobs that can be awaited together.
/// Clones share the group, so a job can spawn follow-on jobs into its
/// own group (how the pipelined scheduler releases ready vertices).
#[derive(Clone)]
pub struct TaskGroup {
    pool: Pool,
    shared: Arc<GroupShared>,
}

impl TaskGroup {
    /// Spawns one job into the group. Panics are captured (first one
    /// wins) and surfaced by [`TaskGroup::wait`].
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.active.fetch_add(1, Ordering::AcqRel);
        let g = Arc::clone(&self.shared);
        let ps = Arc::clone(&self.pool.shared);
        self.pool.shared.submit_one(Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                let mut f = g.failure.lock().unwrap();
                if f.is_none() {
                    *f = Some(panic_detail(p));
                }
            }
            if g.active.fetch_sub(1, Ordering::AcqRel) == 1 {
                ps.notify_all();
            }
        }));
    }

    /// Helps run queued jobs until every job of this group (including
    /// jobs spawned by jobs) has finished.
    ///
    /// # Errors
    /// `Err(detail)` when any job panicked (first panic wins).
    pub fn wait(&self) -> Result<(), String> {
        self.pool
            .shared
            .help_until(|| self.shared.active.load(Ordering::Acquire) == 0);
        match self.shared.failure.lock().unwrap().take() {
            Some(detail) => Err(detail),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Instant;

    #[test]
    fn preserves_order() {
        let pool = Pool::new(4);
        let out = pool.try_map(1000, |i| i * 2).unwrap();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn small_batches_and_single_thread_run_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 0);
        assert_eq!(pool.try_map(2, |i| i + 1).unwrap(), vec![1, 2]);
        assert_eq!(pool.try_map(0, |i| i).unwrap(), Vec::<usize>::new());
        let before = pool.stats();
        assert_eq!(pool.try_map(100, |i| i).unwrap().len(), 100);
        // Inline batches never touch the queues.
        assert_eq!(pool.stats().since(&before).tasks, 0);
    }

    #[test]
    fn catches_panics_instead_of_aborting() {
        let pool = Pool::new(4);
        let err = pool
            .try_map(100, |i| {
                if i == 57 {
                    panic!("bad chunk {i}");
                }
                i * 2
            })
            .unwrap_err();
        assert!(err.contains("bad chunk 57"), "got {err:?}");
        // The serial path catches too.
        let err = pool
            .try_map(2, |_| -> usize { panic!("small") })
            .unwrap_err();
        assert!(err.contains("small"));
    }

    #[test]
    fn reports_first_panicking_index_in_item_order() {
        let pool = Pool::new(4);
        let err = pool
            .try_map(64, |i| {
                if i % 20 == 7 {
                    panic!("boom at {i}");
                }
                i
            })
            .unwrap_err();
        assert!(err.contains("boom at 7"), "got {err:?}");
    }

    #[test]
    fn map_re_panics_on_worker_panic() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(50, |i| {
                if i == 3 {
                    panic!("expected");
                }
                i
            })
        }));
        let detail = panic_detail(caught.unwrap_err());
        assert!(detail.contains("expected"), "got {detail:?}");
    }

    /// Regression test for the fixed-chunk load imbalance the pool
    /// replaces: with `try_par_map`'s old fixed chunking (16 items, 4
    /// threads ⇒ 4-item chunks), the four heavy items below land in one
    /// chunk and serialize: ≥ 4 × 60 ms = 240 ms wall. With per-item
    /// stealing they spread across workers: ≈ 60–90 ms wall. Sleeps
    /// overlap regardless of core count, so this holds on any machine.
    #[test]
    fn steals_individual_items_under_skew() {
        let pool = Pool::new(4);
        let t0 = Instant::now();
        let out = pool
            .try_map(16, |i| {
                let ms = if i < 4 { 60 } else { 1 };
                std::thread::sleep(Duration::from_millis(ms));
                i
            })
            .unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert!(
            elapsed < Duration::from_millis(200),
            "skewed batch serialized: {elapsed:?}"
        );
        let stats = pool.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.tasks, 16, "every item must be its own task");
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let pool = Pool::new(2);
        let inner = pool.clone();
        let out = pool
            .try_map(8, move |i| inner.try_map(8, move |j| i * 8 + j).unwrap())
            .unwrap();
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn task_group_runs_dynamically_spawned_jobs() {
        let pool = Pool::new(2);
        let group = pool.group();
        let count = Arc::new(AtomicU32::new(0));
        for _ in 0..4 {
            let g = group.clone();
            let c = Arc::clone(&count);
            group.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
                // Jobs spawn follow-on jobs into their own group.
                let c2 = Arc::clone(&c);
                g.spawn(move || {
                    c2.fetch_add(10, Ordering::Relaxed);
                });
            });
        }
        group.wait().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 44);
    }

    #[test]
    fn task_group_runs_inline_on_single_threaded_pool() {
        let pool = Pool::new(1);
        let group = pool.group();
        let count = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&count);
        group.spawn(move || {
            c.fetch_add(7, Ordering::Relaxed);
        });
        group.wait().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn task_group_surfaces_panics() {
        let pool = Pool::new(2);
        let group = pool.group();
        group.spawn(|| panic!("group job failed"));
        let err = group.wait().unwrap_err();
        assert!(err.contains("group job failed"), "got {err:?}");
    }

    #[test]
    fn worker_stats_account_all_tasks_and_busy_time() {
        let pool = Pool::new(3);
        let before = pool.stats();
        pool.map(64, |_| std::thread::sleep(Duration::from_millis(2)));
        assert_eq!(pool.stats().since(&before).tasks, 64);
        // A worker publishes a job's result before charging its busy
        // time, so `map` returning does not mean the accounting has
        // landed — poll briefly until it quiesces, then require the
        // per-worker totals to equal the global ones and the 64 × 2 ms
        // of sleep to register as busy time (with 50% slack).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let per_worker = pool.worker_stats();
            assert_eq!(per_worker.len(), 1 + pool.workers());
            let total_tasks: u64 = per_worker.iter().map(|w| w.tasks).sum();
            let total_ns: u64 = per_worker.iter().map(|w| w.busy_ns).sum();
            let stats = pool.stats();
            let delta = stats.since(&before);
            if total_tasks == stats.tasks
                && total_ns == stats.busy_ns
                && delta.busy_seconds() >= 0.064
            {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "accounting did not quiesce: per-worker ({total_tasks} tasks, {total_ns} ns) \
                 vs global ({} tasks, {} ns, busy {} s)",
                stats.tasks,
                stats.busy_ns,
                delta.busy_seconds()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let p1 = Pool::global();
        let p2 = Pool::global();
        assert_eq!(p1.shared.id, p2.shared.id);
        assert!(p1.parallelism() >= 1);
    }
}
