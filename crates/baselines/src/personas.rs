//! The concrete baseline personas of §8.2: the hand-written plans
//! "derived from the code used for the FFNN experiments for a published
//! paper \[23\]", the all-tile heuristic, and the three recruited experts
//! of Experiment 4 (Figure 8).

use crate::greedy::{
    greedy_plan, shuffle_only_strategies, systemds_catalog, tile_only_catalog, GreedyConfig,
};
use matopt_core::{Annotation, ComputeGraph, FormatCatalog, PhysFormat, PlanContext};
use matopt_cost::CostModel;
use matopt_opt::OptError;

/// The all-tile heuristic: "simply tile everything with 1K × 1K
/// matrices". Plans without memory checks (it happily builds plans
/// whose intermediate data later crashes the run, as in Figures 6–7).
///
/// # Errors
/// [`OptError::NoFeasiblePlan`] when even tiles cannot express a
/// vertex.
pub fn all_tile_plan(
    graph: &ComputeGraph,
    ctx: &PlanContext<'_>,
    model: &dyn CostModel,
) -> Result<Annotation, OptError> {
    greedy_plan(
        graph,
        ctx,
        model,
        &GreedyConfig {
            catalog: tile_only_catalog(),
            count_transform_cost: false,
            respect_memory: false,
            forbidden: shuffle_only_strategies(),
            // Prefer tiles; fall back to single-tuple only when a
            // matrix cannot be tiled at all (e.g. tiny bias vectors).
            format_preference: Some(vec![
                PhysFormat::Tile { side: 1000 },
                PhysFormat::SingleTuple,
            ]),
        },
    )
}

/// The hand-written expert plan: a competent programmer choosing the
/// locally-cheapest implementation per operation — broadcast-aware, but
/// with no global view of downstream transformation costs and no
/// memory model of the target cluster. The paper's hand-written FFNN
/// code (derived from \[23\]) behaves exactly like this: excellent at 10
/// workers, dead at 5 (Figure 7).
///
/// # Errors
/// [`OptError::NoFeasiblePlan`] when the graph cannot be planned.
pub fn hand_written_plan(
    graph: &ComputeGraph,
    ctx: &PlanContext<'_>,
    model: &dyn CostModel,
) -> Result<Annotation, OptError> {
    greedy_plan(
        graph,
        ctx,
        model,
        &GreedyConfig {
            catalog: FormatCatalog::paper_default().dense_only(),
            count_transform_cost: false,
            respect_memory: false,
            forbidden: shuffle_only_strategies(),
            format_preference: None,
        },
    )
}

/// Distributed-ML expertise of a recruited programmer (Experiment 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expertise {
    /// "works in ML applications": plans naively — single tuples and
    /// simple strips, no cost awareness; first attempt crashes.
    Low,
    /// "works in federated learning": cost-aware but only for the
    /// operation at hand; avoids broadcast joins; first attempt
    /// crashes.
    Medium,
    /// "works in high-performance distributed ML": locally optimal,
    /// broadcast-aware and memory-aware — nearly matches the
    /// auto-generated plan.
    High,
}

/// An expert's submission: the plan that ultimately ran, plus whether
/// the first attempt had to be re-designed after crashing (the `*`
/// annotations of Figure 8).
#[derive(Debug, Clone)]
pub struct ExpertPlan {
    /// The final, runnable annotation.
    pub annotation: Annotation,
    /// `true` when the expert's first labeling produced a plan that
    /// failed and had to be revised.
    pub first_attempt_failed: bool,
}

/// Produces the plan a recruited expert of the given level submits
/// (Experiment 4, Figure 8).
///
/// Low/medium personas first plan without memory awareness; when that
/// plan is infeasible on the actual cluster, they "update the labeling"
/// — re-plan with memory checks — and the failure is reported.
///
/// # Errors
/// [`OptError::NoFeasiblePlan`] when even the revised plan is
/// impossible.
pub fn expert_plan(
    graph: &ComputeGraph,
    ctx: &PlanContext<'_>,
    model: &dyn CostModel,
    level: Expertise,
) -> Result<ExpertPlan, OptError> {
    let cfg = |respect_memory: bool| match level {
        Expertise::Low => GreedyConfig {
            catalog: FormatCatalog::new(vec![
                PhysFormat::SingleTuple,
                PhysFormat::RowStrip { height: 1000 },
                PhysFormat::Tile { side: 1000 },
            ]),
            count_transform_cost: false,
            respect_memory,
            forbidden: shuffle_only_strategies(),
            format_preference: Some(vec![
                PhysFormat::SingleTuple,
                PhysFormat::RowStrip { height: 1000 },
                PhysFormat::Tile { side: 1000 },
            ]),
        },
        Expertise::Medium => GreedyConfig {
            catalog: FormatCatalog::paper_default().dense_only(),
            count_transform_cost: false,
            respect_memory,
            forbidden: shuffle_only_strategies(),
            format_preference: None,
        },
        Expertise::High => GreedyConfig {
            catalog: FormatCatalog::paper_default().dense_only(),
            count_transform_cost: true,
            respect_memory,
            forbidden: Vec::new(),
            format_preference: None,
        },
    };

    if level == Expertise::High {
        let annotation = greedy_plan(graph, ctx, model, &cfg(true))?;
        return Ok(ExpertPlan {
            annotation,
            first_attempt_failed: false,
        });
    }
    // Lower expertise: the first labeling ignores memory limits. If it
    // is infeasible on the real cluster, the expert revises it.
    let first = greedy_plan(graph, ctx, model, &cfg(false))?;
    let feasible = matopt_core::validate(graph, &first, ctx).is_ok();
    if feasible {
        Ok(ExpertPlan {
            annotation: first,
            first_attempt_failed: false,
        })
    } else {
        let revised = greedy_plan(graph, ctx, model, &cfg(true))?;
        Ok(ExpertPlan {
            annotation: revised,
            first_attempt_failed: true,
        })
    }
}

/// The SystemDS-like planner (§9): independent per-operator choice over
/// SystemDS's layouts (1000-blocks, single-tuple, triples, CSR blocks),
/// sparsity-aware, but with *no* transformation-cost integration and no
/// global layout optimization.
///
/// # Errors
/// [`OptError::NoFeasiblePlan`] when the graph cannot be planned.
pub fn systemds_plan(
    graph: &ComputeGraph,
    ctx: &PlanContext<'_>,
    model: &dyn CostModel,
) -> Result<Annotation, OptError> {
    greedy_plan(
        graph,
        ctx,
        model,
        &GreedyConfig {
            catalog: systemds_catalog(),
            count_transform_cost: false,
            respect_memory: true,
            forbidden: Vec::new(),
            format_preference: None,
        },
    )
}
