//! Sparse matrix formats: compressed sparse row (CSR) and coordinate
//! (COO) triples.
//!
//! These back the paper's sparse physical implementations: the relational
//! `(rowIndex, colIndex, value)` triple layout maps to [`CooMatrix`] and
//! the CSR single/blocked layouts map to [`CsrMatrix`].

use crate::DenseMatrix;

/// Which CSR×dense traversal a sparse multiply uses.
///
/// Both variants accumulate every output element's terms in ascending
/// stored-entry order with the same multiply-add, so they are
/// **bit-identical**; they differ only in memory-access pattern, and
/// the autotuner ([`crate::tune`]) picks per shape class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrVariant {
    /// Row-major sweep (the shipped kernel,
    /// [`CsrMatrix::matmul_dense`]): each output row is finished before
    /// the next starts, streaming the full `rhs` width per stored
    /// entry. Best when `rhs` is narrow enough that its rows stay
    /// cache-resident.
    RowBlocked,
    /// Column-blocked sweep ([`CsrMatrix::matmul_dense_colblocked`]):
    /// the `rhs` width is tiled into strips and the whole CSR pattern
    /// is replayed per strip, keeping the active output and `rhs`
    /// segments L1/L2-resident when `rhs` is wide.
    ColBlocked,
}

/// Column-strip width (in `f64` entries, 4 KB strips) used by
/// [`CsrMatrix::matmul_dense_colblocked`].
const CSR_COL_BLOCK: usize = 512;

/// A compressed-sparse-row matrix over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column index of every stored entry, row by row.
    indices: Vec<usize>,
    /// Stored values aligned with `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    /// Panics when the arrays are inconsistent (wrong `indptr` length,
    /// non-monotone pointers, misaligned values, out-of-range columns).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length must be rows + 1");
        assert_eq!(indices.len(), values.len(), "indices/values misaligned");
        assert_eq!(*indptr.last().unwrap(), indices.len());
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr must be monotone"
        );
        assert!(
            indices.iter().all(|c| *c < cols),
            "column index out of range"
        );
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty (all-zero) sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Converts a dense matrix, dropping exact zeros.
    ///
    /// ```
    /// use matopt_kernels::{CsrMatrix, DenseMatrix};
    /// let d = DenseMatrix::from_vec(2, 2, vec![0.0, 3.0, 0.0, 0.0]);
    /// let s = CsrMatrix::from_dense(&d);
    /// assert_eq!(s.nnz(), 1);
    /// assert!(s.to_dense().approx_eq(&d, 0.0));
    /// ```
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut indptr = Vec::with_capacity(m.rows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in 0..m.rows() {
            for (c, v) in m.row(r).iter().enumerate() {
                if *v != 0.0 {
                    indices.push(c);
                    values.push(*v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: m.rows(),
            cols: m.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored (0.0 for an empty matrix shape).
    pub fn measured_sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Iterates over `(row, col, value)` of stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            self.indices[lo..hi]
                .iter()
                .zip(self.values[lo..hi].iter())
                .map(move |(c, v)| (r, *c, *v))
        })
    }

    /// Expands to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Sparse × dense multiply producing a dense matrix.
    ///
    /// This is the kernel behind the engine's sparse matmul
    /// implementations: with a one-hot-style sparse input batch the FLOP
    /// count is proportional to `nnz × rhs.cols()` rather than
    /// `rows × cols × rhs.cols()`.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_dense(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm dimension mismatch: {}x{} × {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        for r in 0..self.rows {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let orow = &mut out.data_mut()[r * n..(r + 1) * n];
            for idx in lo..hi {
                let k = self.indices[idx];
                let v = self.values[idx];
                let brow = rhs.row(k);
                for (o, b) in orow.iter_mut().zip(brow.iter()) {
                    *o += v * *b;
                }
            }
        }
        out
    }

    /// Sparse × dense multiply with the `rhs` width tiled into
    /// [`CSR_COL_BLOCK`]-wide strips: the CSR pattern is replayed once
    /// per strip, so the active output-row segment and the touched
    /// `rhs` row segments stay cache-resident however wide `rhs` is.
    ///
    /// Bit-identical to [`CsrMatrix::matmul_dense`]: within a strip
    /// every output element still accumulates its terms in ascending
    /// stored-entry order with the same multiply-add, and strips do not
    /// overlap.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_dense_colblocked(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols,
            rhs.rows(),
            "spmm dimension mismatch: {}x{} × {}x{}",
            self.rows,
            self.cols,
            rhs.rows(),
            rhs.cols()
        );
        let n = rhs.cols();
        let mut out = DenseMatrix::zeros(self.rows, n);
        for jb in (0..n).step_by(CSR_COL_BLOCK) {
            let jw = CSR_COL_BLOCK.min(n - jb);
            for r in 0..self.rows {
                let lo = self.indptr[r];
                let hi = self.indptr[r + 1];
                let orow = &mut out.data_mut()[r * n + jb..r * n + jb + jw];
                for idx in lo..hi {
                    let k = self.indices[idx];
                    let v = self.values[idx];
                    let bseg = &rhs.row(k)[jb..jb + jw];
                    for (o, b) in orow.iter_mut().zip(bseg.iter()) {
                        *o += v * *b;
                    }
                }
            }
        }
        out
    }

    /// Sparse × dense multiply with an explicit traversal variant; see
    /// [`CsrVariant`]. Both variants produce bit-identical results.
    ///
    /// # Panics
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_dense_variant(&self, rhs: &DenseMatrix, variant: CsrVariant) -> DenseMatrix {
        match variant {
            CsrVariant::RowBlocked => self.matmul_dense(rhs),
            CsrVariant::ColBlocked => self.matmul_dense_colblocked(rhs),
        }
    }

    /// Transpose (returns the CSR of the transposed matrix; internally a
    /// CSR→CSC re-bucketing pass).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for (r, c, v) in self.iter() {
            let pos = cursor[c];
            indices[pos] = r;
            values[pos] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Elementwise map over the *stored* entries (correct for functions
    /// with `f(0) = 0`, e.g. relu, negation, scaling).
    pub fn map_stored(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Hadamard product with a dense matrix, producing a sparse result
    /// with the same pattern as `self`.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn hadamard_dense(&self, rhs: &DenseMatrix) -> CsrMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows(), rhs.cols()));
        let mut out = self.clone();
        let mut idx = 0usize;
        for r in 0..self.rows {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for i in lo..hi {
                out.values[idx] = self.values[i] * rhs.get(r, self.indices[i]);
                idx += 1;
            }
        }
        out
    }

    /// Extracts the rectangular block at `(r0, c0)` of shape `nr × nc`
    /// (clamped at the boundary) as a CSR matrix.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> CsrMatrix {
        let r1 = (r0 + nr).min(self.rows);
        let c1 = (c0 + nc).min(self.cols);
        let mut indptr = Vec::with_capacity(r1 - r0 + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for r in r0..r1 {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            for i in lo..hi {
                let c = self.indices[i];
                if c >= c0 && c < c1 {
                    indices.push(c - c0);
                    values.push(self.values[i]);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: r1 - r0,
            cols: c1 - c0,
            indptr,
            indices,
            values,
        }
    }
}

/// A coordinate-format (`(row, col, value)` triples) sparse matrix — the
/// relational triple layout from the paper's introduction.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Builds a COO matrix from triples.
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn from_triples(rows: usize, cols: usize, entries: Vec<(usize, usize, f64)>) -> Self {
        assert!(
            entries.iter().all(|(r, c, _)| *r < rows && *c < cols),
            "triple index out of range"
        );
        CooMatrix {
            rows,
            cols,
            entries,
        }
    }

    /// Converts a dense matrix, dropping exact zeros.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut entries = Vec::new();
        for r in 0..m.rows() {
            for (c, v) in m.row(r).iter().enumerate() {
                if *v != 0.0 {
                    entries.push((r, c, *v));
                }
            }
        }
        CooMatrix {
            rows: m.rows(),
            cols: m.cols(),
            entries,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triples.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Borrow the triples.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Expands to dense, summing duplicate coordinates (relational
    /// semantics: a COO relation is a multiset of triples).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in &self.entries {
            let cur = out.get(*r, *c);
            out.set(*r, *c, cur + *v);
        }
        out
    }

    /// Converts to CSR (duplicates summed).
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_dense(&self.to_dense())
    }

    /// Transpose: swap the row and column of every triple.
    pub fn transpose(&self) -> CooMatrix {
        CooMatrix {
            rows: self.cols,
            cols: self.rows,
            entries: self.entries.iter().map(|(r, c, v)| (*c, *r, *v)).collect(),
        }
    }

    /// Adds a dense matrix, producing a dense result.
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    pub fn add_dense(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows(), rhs.cols()));
        let mut out = rhs.clone();
        for (r, c, v) in &self.entries {
            let cur = out.get(*r, *c);
            out.set(*r, *c, cur + *v);
        }
        out
    }

    /// Row sums as an `rows × 1` dense vector.
    pub fn row_sums(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, 1);
        for (r, _, v) in &self.entries {
            let cur = out.get(*r, 0);
            out.set(*r, 0, cur + *v);
        }
        out
    }

    /// Column sums as a `1 × cols` dense vector.
    pub fn col_sums(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(1, self.cols);
        for (_, c, v) in &self.entries {
            let cur = out.get(0, *c);
            out.set(0, *c, cur + *v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> DenseMatrix {
        DenseMatrix::from_vec(
            3,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 0.0, 0.0, 3.0, //
                4.0, 5.0, 0.0, 0.0,
            ],
        )
    }

    #[test]
    fn csr_round_trip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn coo_round_trip() {
        let d = sample_dense();
        let s = CooMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 5);
        assert!(s.to_dense().approx_eq(&d, 0.0));
        assert!(s.to_csr().to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn csr_spmm_matches_dense_matmul() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let rhs = DenseMatrix::from_fn(4, 3, |r, c| (r + 2 * c) as f64 - 1.5);
        assert!(s.matmul_dense(&rhs).approx_eq(&d.matmul(&rhs), 1e-12));
    }

    #[test]
    fn csr_colblocked_bit_identical_to_rowblocked() {
        // Wide rhs (wider than one column strip) with a ragged tail so
        // the strip loop exercises both full and partial strips. The
        // two traversals must agree bit-for-bit, not just approximately.
        let mut rng = crate::seeded_rng(7);
        let s = crate::random_sparse_csr(37, 53, 0.13, &mut rng);
        let rhs = crate::random_dense_normal(53, 2 * CSR_COL_BLOCK + 19, &mut rng);
        let row = s.matmul_dense(&rhs);
        let col = s.matmul_dense_colblocked(&rhs);
        assert_eq!(row.data(), col.data());
        assert_eq!(
            s.matmul_dense_variant(&rhs, CsrVariant::ColBlocked).data(),
            row.data()
        );
    }

    #[test]
    fn csr_transpose_matches_dense_transpose() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        assert!(s.transpose().to_dense().approx_eq(&d.transpose(), 0.0));
    }

    #[test]
    fn coo_transpose_swaps_indices() {
        let d = sample_dense();
        let s = CooMatrix::from_dense(&d);
        assert!(s.transpose().to_dense().approx_eq(&d.transpose(), 0.0));
    }

    #[test]
    fn csr_map_stored_scales_values() {
        let s = CsrMatrix::from_dense(&sample_dense());
        let doubled = s.map_stored(|v| v * 2.0);
        assert!(doubled
            .to_dense()
            .approx_eq(&sample_dense().scale(2.0), 0.0));
    }

    #[test]
    fn csr_hadamard_dense_keeps_pattern() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let other = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        let h = s.hadamard_dense(&other);
        assert_eq!(h.nnz(), s.nnz());
        assert!(h.to_dense().approx_eq(&d.hadamard(&other), 0.0));
    }

    #[test]
    fn coo_add_dense() {
        let d = sample_dense();
        let s = CooMatrix::from_dense(&d);
        let other = DenseMatrix::from_fn(3, 4, |_, _| 1.0);
        assert!(s.add_dense(&other).approx_eq(&d.add(&other), 0.0));
    }

    #[test]
    fn coo_duplicate_triples_sum() {
        let s = CooMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, 4.0)]);
        let d = s.to_dense();
        assert_eq!(d.get(0, 0), 3.0);
        assert_eq!(d.get(1, 1), 4.0);
    }

    #[test]
    fn coo_row_col_sums() {
        let d = sample_dense();
        let s = CooMatrix::from_dense(&d);
        assert!(s.row_sums().approx_eq(&d.row_sums(), 0.0));
        assert!(s.col_sums().approx_eq(&d.col_sums(), 0.0));
    }

    #[test]
    fn csr_block_matches_dense_block() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let blk = s.block(1, 1, 2, 2);
        assert!(blk.to_dense().approx_eq(&d.block(1, 1, 2, 2), 0.0));
        // clamped edge block
        let edge = s.block(2, 3, 5, 5);
        assert_eq!((edge.rows(), edge.cols()), (1, 1));
        assert_eq!(edge.to_dense().get(0, 0), 0.0);
    }

    #[test]
    fn csr_sparsity_measurement() {
        let s = CsrMatrix::from_dense(&sample_dense());
        assert!(crate::approx_eq(s.measured_sparsity(), 5.0 / 12.0, 1e-15));
        assert_eq!(CsrMatrix::zeros(3, 3).measured_sparsity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "spmm dimension mismatch")]
    fn csr_spmm_shape_mismatch_panics() {
        let s = CsrMatrix::zeros(2, 3);
        let _ = s.matmul_dense(&DenseMatrix::zeros(2, 2));
    }

    #[test]
    #[should_panic(expected = "triple index out of range")]
    fn coo_rejects_out_of_range() {
        let _ = CooMatrix::from_triples(2, 2, vec![(2, 0, 1.0)]);
    }
}
