//! Graphviz (DOT) rendering of compute graphs and annotated plans —
//! the visual counterpart of the paper's Figure 2 (a compute graph and
//! its annotated version side by side).

use crate::graph::{Annotation, ComputeGraph, NodeKind};
use crate::impls::ImplRegistry;
use crate::transforms::TransformKind;

/// Renders the bare (logical) compute graph as DOT: sources as boxes
/// labelled with their type and storage, computations as ellipses.
pub fn graph_to_dot(graph: &ComputeGraph) -> String {
    let mut out = String::from("digraph compute {\n  rankdir=BT;\n");
    for (id, node) in graph.iter() {
        let label = node.name.clone().unwrap_or_else(|| id.to_string());
        match &node.kind {
            NodeKind::Source { format } => {
                out.push_str(&format!(
                    "  n{} [shape=box, label=\"{}\\n{} @ {}\"];\n",
                    id.0, label, node.mtype, format
                ));
            }
            NodeKind::Compute { op } => {
                out.push_str(&format!(
                    "  n{} [label=\"{}\\n{:?} : {}\"];\n",
                    id.0, label, op, node.mtype
                ));
            }
        }
    }
    for (id, node) in graph.iter() {
        for input in &node.inputs {
            out.push_str(&format!("  n{} -> n{};\n", input.0, id.0));
        }
    }
    out.push_str("}\n");
    out
}

/// Which side of a training graph a vertex belongs to, for rendering.
///
/// Produced by the autodiff pass: forward vertices compute the loss,
/// backward vertices are the gradient tape, and shared vertices are
/// forward values the backward pass reuses — exactly the overlap that
/// makes joint forward+backward planning pay off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffRole {
    /// A forward-only vertex (sources included).
    Forward,
    /// A gradient vertex emitted by reverse-mode differentiation.
    Backward,
    /// A forward vertex consumed by at least one gradient vertex.
    Shared,
}

/// Renders a training graph (forward + autodiff backward) as DOT with
/// the three [`DiffRole`] regions visually distinct: forward vertices
/// plain, shared vertices filled light blue, gradient vertices filled
/// light salmon diamonds grouped in a `cluster_backward` subgraph — so
/// `matopt plan --dot` of a training workload stays readable.
///
/// `roles` is indexed by vertex id; vertices past its end default to
/// [`DiffRole::Forward`].
pub fn training_to_dot(graph: &ComputeGraph, roles: &[DiffRole]) -> String {
    let role =
        |id: &crate::graph::NodeId| roles.get(id.index()).copied().unwrap_or(DiffRole::Forward);
    let decl = |id: crate::graph::NodeId, node: &crate::graph::Node| {
        let label = node.name.clone().unwrap_or_else(|| id.to_string());
        match &node.kind {
            NodeKind::Source { format } => format!(
                "    n{} [shape=box, label=\"{}\\n{} @ {}\"];\n",
                id.0, label, node.mtype, format
            ),
            NodeKind::Compute { op } => {
                let style = match role(&id) {
                    DiffRole::Forward => String::new(),
                    DiffRole::Shared => ", style=filled, fillcolor=lightblue".into(),
                    DiffRole::Backward => {
                        ", shape=diamond, style=filled, fillcolor=lightsalmon".into()
                    }
                };
                format!(
                    "    n{} [label=\"{}\\n{:?} : {}\"{}];\n",
                    id.0, label, op, node.mtype, style
                )
            }
        }
    };
    let mut out = String::from("digraph training {\n  rankdir=BT;\n");
    for (tag, want) in [
        ("forward", DiffRole::Forward),
        ("shared", DiffRole::Shared),
        ("backward", DiffRole::Backward),
    ] {
        let members: String = graph
            .iter()
            .filter(|(id, _)| role(id) == want)
            .map(|(id, node)| decl(id, node))
            .collect();
        if members.is_empty() {
            continue;
        }
        out.push_str(&format!(
            "  subgraph cluster_{tag} {{\n    label=\"{tag}\";\n    color=gray;\n{members}  }}\n"
        ));
    }
    for (id, node) in graph.iter() {
        for input in &node.inputs {
            // Edges that cross from the forward/shared region into the
            // gradient tape are dotted so the seam is visible.
            if role(input) != DiffRole::Backward && role(&id) == DiffRole::Backward {
                out.push_str(&format!("  n{} -> n{} [style=dotted];\n", input.0, id.0));
            } else {
                out.push_str(&format!("  n{} -> n{};\n", input.0, id.0));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders an annotated compute graph as DOT: each computation shows its
/// chosen implementation and output format; each edge its
/// transformation (identity edges stay unlabelled). This is the §4.2
/// "annotated compute graph" `G'` as a picture.
pub fn annotated_to_dot(
    graph: &ComputeGraph,
    annotation: &Annotation,
    registry: &ImplRegistry,
) -> String {
    let mut out = String::from("digraph annotated {\n  rankdir=BT;\n");
    for (id, node) in graph.iter() {
        let label = node.name.clone().unwrap_or_else(|| id.to_string());
        match &node.kind {
            NodeKind::Source { format } => {
                out.push_str(&format!(
                    "  n{} [shape=box, label=\"{}\\n{} @ {}\"];\n",
                    id.0, label, node.mtype, format
                ));
            }
            NodeKind::Compute { .. } => match annotation.choice(id) {
                Some(choice) => {
                    out.push_str(&format!(
                        "  n{} [label=\"{}\\n{}\\n-> {}\"];\n",
                        id.0,
                        label,
                        registry.get(choice.impl_id).name,
                        choice.output_format
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "  n{} [style=dashed, label=\"{} (unannotated)\"];\n",
                        id.0, label
                    ));
                }
            },
        }
    }
    for (id, node) in graph.iter() {
        if let Some(choice) = annotation.choice(id) {
            for (input, t) in node.inputs.iter().zip(choice.input_transforms.iter()) {
                if t.kind == TransformKind::Identity {
                    out.push_str(&format!("  n{} -> n{};\n", input.0, id.0));
                } else {
                    out.push_str(&format!(
                        "  n{} -> n{} [label=\"{:?}\\n-> {}\", color=red];\n",
                        input.0, id.0, t.kind, t.to
                    ));
                }
            }
        } else {
            for input in &node.inputs {
                out.push_str(&format!("  n{} -> n{};\n", input.0, id.0));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        format::PhysFormat, graph::VertexChoice, ops::Op, transforms::Transform, types::MatrixType,
    };

    fn sample() -> (ComputeGraph, Annotation, ImplRegistry) {
        let reg = ImplRegistry::paper_default();
        let mut g = ComputeGraph::new();
        let a = g.add_source_named(
            MatrixType::dense(1000, 1000),
            PhysFormat::SingleTuple,
            Some("A"),
        );
        let b = g.add_source_named(
            MatrixType::dense(1000, 1000),
            PhysFormat::Tile { side: 100 },
            Some("B"),
        );
        let c = g.add_op_named(Op::MatMul, &[a, b], Some("AB")).unwrap();
        let mut ann = Annotation::empty(&g);
        ann.set(
            c,
            VertexChoice {
                impl_id: reg.by_name("mm_tile_shuffle").unwrap().id,
                input_transforms: vec![
                    Transform {
                        kind: TransformKind::SingleToTile,
                        to: PhysFormat::Tile { side: 100 },
                    },
                    Transform::identity(PhysFormat::Tile { side: 100 }),
                ],
                output_format: PhysFormat::Tile { side: 100 },
            },
        );
        (g, ann, reg)
    }

    #[test]
    fn plain_dot_lists_all_vertices_and_edges() {
        let (g, _, _) = sample();
        let dot = graph_to_dot(&g);
        assert!(dot.starts_with("digraph compute {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("MatMul"));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn annotated_dot_shows_impls_and_transform_edges() {
        let (g, ann, reg) = sample();
        let dot = annotated_to_dot(&g, &ann, &reg);
        assert!(dot.contains("mm_tile_shuffle"));
        // The single→tile move is highlighted; the identity edge is not.
        assert!(dot.contains("SingleToTile"));
        assert_eq!(dot.matches("color=red").count(), 1);
    }

    /// Golden test: the exact rendering of a one-layer training graph
    /// (x·w summed to a loss, with the gradient dw = xᵀ·dy). Catches
    /// any drift in the role styling that `matopt plan --dot` relies on.
    #[test]
    fn training_dot_golden() {
        let mut g = ComputeGraph::new();
        let x = g.add_source_named(MatrixType::dense(4, 4), PhysFormat::SingleTuple, Some("x"));
        let w = g.add_source_named(MatrixType::dense(4, 4), PhysFormat::SingleTuple, Some("w"));
        let y = g.add_op_named(Op::MatMul, &[x, w], Some("y")).unwrap();
        let loss = g.add_op_named(Op::SumAll, &[y], Some("loss")).unwrap();
        let xt = g.add_op_named(Op::Transpose, &[x], Some("xT")).unwrap();
        let dw = g.add_op_named(Op::MatMul, &[xt, y], Some("dw")).unwrap();
        let mut roles = vec![DiffRole::Forward; g.len()];
        roles[y.index()] = DiffRole::Shared;
        roles[xt.index()] = DiffRole::Backward;
        roles[dw.index()] = DiffRole::Backward;
        let _ = loss;
        let dot = training_to_dot(&g, &roles);
        let expected = "digraph training {\n\
                        \x20 rankdir=BT;\n\
                        \x20 subgraph cluster_forward {\n\
                        \x20   label=\"forward\";\n\
                        \x20   color=gray;\n\
                        \x20   n0 [shape=box, label=\"x\\n4x4 @ single\"];\n\
                        \x20   n1 [shape=box, label=\"w\\n4x4 @ single\"];\n\
                        \x20   n3 [label=\"loss\\nSumAll : 1x1\"];\n\
                        \x20 }\n\
                        \x20 subgraph cluster_shared {\n\
                        \x20   label=\"shared\";\n\
                        \x20   color=gray;\n\
                        \x20   n2 [label=\"y\\nMatMul : 4x4\", style=filled, fillcolor=lightblue];\n\
                        \x20 }\n\
                        \x20 subgraph cluster_backward {\n\
                        \x20   label=\"backward\";\n\
                        \x20   color=gray;\n\
                        \x20   n4 [label=\"xT\\nTranspose : 4x4\", shape=diamond, style=filled, fillcolor=lightsalmon];\n\
                        \x20   n5 [label=\"dw\\nMatMul : 4x4\", shape=diamond, style=filled, fillcolor=lightsalmon];\n\
                        \x20 }\n\
                        \x20 n0 -> n2;\n\
                        \x20 n1 -> n2;\n\
                        \x20 n2 -> n3;\n\
                        \x20 n0 -> n4 [style=dotted];\n\
                        \x20 n4 -> n5;\n\
                        \x20 n2 -> n5 [style=dotted];\n\
                        }\n";
        assert_eq!(dot, expected);
    }

    #[test]
    fn unannotated_vertices_render_dashed() {
        let (g, _, reg) = sample();
        let empty = Annotation::empty(&g);
        let dot = annotated_to_dot(&g, &empty, &reg);
        assert!(dot.contains("style=dashed"));
    }
}
