//! Frontier evolution tracing — the machinery behind the paper's
//! Figure 3, which depicts "moving the frontier as vertices are moved
//! from the un-optimized set to the optimized set" with "the set of
//! equivalence classes along the current frontier" shaded.
//!
//! [`frontier_classes`] replays the frontier movement of Algorithm 4
//! *without* the cost tables: it reports, after each vertex is
//! optimized, the equivalence classes along the frontier. Useful for
//! visualization and for understanding why a particular DAG is
//! expensive to optimize (the `|P|^c` term of §6.3 grows with the class
//! sizes reported here).

use matopt_core::{ComputeGraph, NodeId, NodeKind};

/// The frontier state after one vertex was moved across.
#[derive(Debug, Clone)]
pub struct FrontierSnapshot {
    /// The vertex just optimized.
    pub moved: NodeId,
    /// The equivalence classes along the new frontier (only vertices
    /// with un-optimized consumers, plus the moved vertex).
    pub classes: Vec<Vec<NodeId>>,
}

impl FrontierSnapshot {
    /// Size of the largest class — the `c` of the §6.3 complexity bound
    /// at this step.
    pub fn max_class_size(&self) -> usize {
        self.classes.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Replays Algorithm 4's frontier movement over `graph`, yielding one
/// snapshot per compute vertex in topological order.
pub fn frontier_classes(graph: &ComputeGraph) -> Vec<FrontierSnapshot> {
    let consumers = graph.consumers();
    let mut visited = vec![false; graph.len()];
    // Each frontier class is a set of vertices; `class_of[v]` indexes
    // into `classes` for vertices currently on the frontier.
    let mut classes: Vec<Option<Vec<NodeId>>> = Vec::new();
    let mut class_of: Vec<usize> = vec![usize::MAX; graph.len()];
    let mut snapshots = Vec::new();

    for (id, node) in graph.iter() {
        match &node.kind {
            NodeKind::Source { .. } => {
                visited[id.index()] = true;
                class_of[id.index()] = classes.len();
                classes.push(Some(vec![id]));
            }
            NodeKind::Compute { .. } => {
                visited[id.index()] = true;
                // Merge the classes containing this vertex's producers.
                let mut merged_idx: Vec<usize> = Vec::new();
                for input in &node.inputs {
                    let ci = class_of[input.index()];
                    if !merged_idx.contains(&ci) {
                        merged_idx.push(ci);
                    }
                }
                let mut merged: Vec<NodeId> = Vec::new();
                for ci in &merged_idx {
                    merged.extend(classes[*ci].take().expect("live class"));
                }
                // Drop vertices with no un-optimized consumers; keep the
                // moved vertex.
                merged.retain(|u| consumers[u.index()].iter().any(|c| !visited[c.index()]));
                merged.push(id);
                let new_idx = classes.len();
                for u in &merged {
                    class_of[u.index()] = new_idx;
                }
                classes.push(Some(merged));

                snapshots.push(FrontierSnapshot {
                    moved: id,
                    classes: classes.iter().flatten().cloned().collect(),
                });
            }
        }
    }
    snapshots
}

/// The largest equivalence class observed anywhere during optimization —
/// the `c` that §6.3's `O(n · |P|^c · |I| · |V|)` bound depends on.
pub fn max_class_size(graph: &ComputeGraph) -> usize {
    frontier_classes(graph)
        .iter()
        .map(FrontierSnapshot::max_class_size)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_core::{MatrixType, Op, PhysFormat};

    fn mt() -> MatrixType {
        MatrixType::dense(64, 64)
    }

    #[test]
    fn chains_keep_singleton_classes() {
        let mut g = ComputeGraph::new();
        let mut cur = g.add_source(mt(), PhysFormat::SingleTuple);
        for _ in 0..5 {
            cur = g.add_op(Op::Relu, &[cur]).unwrap();
        }
        assert_eq!(max_class_size(&g), 1);
    }

    #[test]
    fn sharing_grows_classes() {
        // t is consumed twice: while only one consumer is optimized, t
        // and that consumer share a class.
        let mut g = ComputeGraph::new();
        let a = g.add_source(mt(), PhysFormat::SingleTuple);
        let t = g.add_op(Op::Relu, &[a]).unwrap();
        let u = g.add_op(Op::Neg, &[t]).unwrap();
        let v = g.add_op(Op::Exp, &[t]).unwrap();
        let _o = g.add_op(Op::Add, &[u, v]).unwrap();
        let snaps = frontier_classes(&g);
        // After optimizing u, the class {t, u} is live.
        let after_u = snaps.iter().find(|s| s.moved == u).unwrap();
        assert!(after_u
            .classes
            .iter()
            .any(|c| c.contains(&t) && c.contains(&u)));
        assert!(max_class_size(&g) >= 2);
    }

    #[test]
    fn dag2_classes_dominate_dag1_and_tree() {
        use matopt_graphs::{scaled_graph, ScaledShape};
        let c = |s| max_class_size(&scaled_graph(s, 3).unwrap());
        let (tree, dag1, dag2) = (
            c(ScaledShape::Tree),
            c(ScaledShape::Dag1),
            c(ScaledShape::Dag2),
        );
        assert!(dag2 >= dag1, "dag2 {dag2} < dag1 {dag1}");
        assert!(dag1 >= tree, "dag1 {dag1} < tree {tree}");
    }

    #[test]
    fn every_compute_vertex_produces_a_snapshot() {
        use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
        let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(10_000))
            .unwrap()
            .graph;
        let snaps = frontier_classes(&g);
        assert_eq!(snaps.len(), g.compute_count());
        // Backprop's activation reuse produces non-trivial classes — the
        // reason the FFNN graphs are the hard case for Algorithm 4.
        assert!(max_class_size(&g) >= 3);
    }
}
