//! Real-executor benchmarks: the same logical computation run under
//! different physical plans at laptop scale. This is the executable
//! counterpart of the paper's headline claim — the annotation choice,
//! not the math, dominates running time — measured on the chunk-level
//! engine rather than simulated.

use criterion::{criterion_group, criterion_main, Criterion};
use matopt_baselines::all_tile_plan;
use matopt_core::{
    Annotation, Cluster, ComputeGraph, FormatCatalog, ImplRegistry, MatrixType, NodeId, NodeKind,
    Op, PhysFormat, PlanContext,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan, DistRelation};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;
use std::time::Duration;

/// A laptop-sized version of the §2.1 motivating chain.
fn chain() -> ComputeGraph {
    let mut g = ComputeGraph::new();
    let a = g.add_source(
        MatrixType::dense(64, 512),
        PhysFormat::RowStrip { height: 8 },
    );
    let b = g.add_source(
        MatrixType::dense(512, 64),
        PhysFormat::ColStrip { width: 8 },
    );
    let c = g.add_source(
        MatrixType::dense(64, 4096),
        PhysFormat::ColStrip { width: 512 },
    );
    let ab = g.add_op(Op::MatMul, &[a, b]).unwrap();
    let _abc = g.add_op(Op::MatMul, &[ab, c]).unwrap();
    g
}

fn inputs_for(g: &ComputeGraph, seed: u64) -> HashMap<NodeId, DistRelation> {
    let mut rng = seeded_rng(seed);
    let mut out = HashMap::new();
    for (id, node) in g.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            out.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    out
}

fn small_catalog() -> FormatCatalog {
    FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 8 },
        PhysFormat::Tile { side: 16 },
        PhysFormat::RowStrip { height: 8 },
        PhysFormat::ColStrip { width: 8 },
        PhysFormat::ColStrip { width: 512 },
    ])
}

fn plans() -> (ComputeGraph, Annotation, Annotation, ImplRegistry) {
    let g = chain();
    let registry = ImplRegistry::paper_default();
    let cluster = Cluster::simsql_like(4);
    let ctx = PlanContext::new(&registry, cluster);
    let model = AnalyticalCostModel;
    let catalog = small_catalog();
    let octx = OptContext::new(&ctx, &catalog, &model);
    let auto = frontier_dp_beam(&g, &octx, 2000).expect("plan").annotation;
    // All-tile with a *small* tile so the tuple-count overhead is real.
    let tiles = {
        let tile_catalog =
            FormatCatalog::new(vec![PhysFormat::Tile { side: 8 }, PhysFormat::SingleTuple]);
        let cfg = matopt_baselines::GreedyConfig {
            catalog: tile_catalog,
            count_transform_cost: false,
            respect_memory: false,
            forbidden: matopt_baselines::broadcast_strategies(),
            format_preference: Some(vec![PhysFormat::Tile { side: 8 }, PhysFormat::SingleTuple]),
        };
        matopt_baselines::greedy_plan(&g, &ctx, &model, &cfg).expect("plan")
    };
    let _ = all_tile_plan(&g, &ctx, &model); // exercised for parity
    (g, auto, tiles, registry)
}

fn bench_execute_plans(c: &mut Criterion) {
    let (g, auto, tiles, registry) = plans();
    let inputs = inputs_for(&g, 11);
    let mut group = c.benchmark_group("real_execution_chain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    group.bench_function("optimized_plan", |b| {
        b.iter(|| execute_plan(&g, &auto, &inputs, &registry).expect("runs"))
    });
    group.bench_function("all_tile_plan", |b| {
        b.iter(|| execute_plan(&g, &tiles, &inputs, &registry).expect("runs"))
    });
    group.finish();
}

fn bench_reformat(c: &mut Criterion) {
    let mut rng = seeded_rng(12);
    let d = random_dense_normal(512, 512, &mut rng);
    let rel = DistRelation::from_dense(&d, PhysFormat::Tile { side: 32 }).unwrap();
    let mut group = c.benchmark_group("reformat_512");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("tile_to_single", |b| {
        b.iter(|| rel.reformat(PhysFormat::SingleTuple).unwrap())
    });
    group.bench_function("tile_to_rowstrip", |b| {
        b.iter(|| rel.reformat(PhysFormat::RowStrip { height: 32 }).unwrap())
    });
    group.bench_function("tile_to_csrtile", |b| {
        b.iter(|| rel.reformat(PhysFormat::CsrTile { side: 32 }).unwrap())
    });
    group.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    // The simulator itself must be fast: every figure row calls it.
    use matopt_engine::simulate_plan;
    use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
    let registry = ImplRegistry::paper_default();
    let cluster = Cluster::simsql_like(10);
    let ctx = PlanContext::new(&registry, cluster);
    let model = AnalyticalCostModel;
    let catalog = FormatCatalog::paper_default().dense_only();
    let octx = OptContext::new(&ctx, &catalog, &model);
    let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(10_000))
        .unwrap()
        .graph;
    let plan = frontier_dp_beam(&g, &octx, 4000).unwrap().annotation;
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("ffnn_w2_10k", |b| {
        b.iter(|| simulate_plan(&g, &plan, &ctx, &model).expect("simulates"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_execute_plans,
    bench_reformat,
    bench_simulation_throughput
);
criterion_main!(benches);
