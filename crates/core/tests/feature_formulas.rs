//! Point tests of the §7 analytic feature formulas: for each
//! implementation strategy, the computed features must equal the
//! closed-form expressions for hand-picked inputs. These pin the cost
//! model against silent regressions — the optimizer's choices are only
//! as good as these numbers.

use matopt_core::{Cluster, ImplRegistry, MatrixType, Op, PhysFormat};

const GB: f64 = 1e9;

fn cl() -> Cluster {
    Cluster::simsql_like(10)
}

fn eval(name: &str, op: Op, inputs: &[(MatrixType, PhysFormat)]) -> matopt_core::ImplEval {
    let reg = ImplRegistry::paper_default();
    reg.by_name(name)
        .unwrap_or_else(|| panic!("{name} registered"))
        .evaluate(&op, inputs, &cl())
        .unwrap_or_else(|| panic!("{name} accepts the inputs"))
}

fn close(a: f64, b: f64) {
    assert!(
        (a - b).abs() <= 1e-9 * b.abs().max(1.0),
        "expected {b}, got {a}"
    );
}

#[test]
fn mm_single_local_charges_single_thread_flops_and_colocation() {
    let a = MatrixType::dense(2000, 3000);
    let b = MatrixType::dense(3000, 1000);
    let e = eval(
        "mm_single_local",
        Op::MatMul,
        &[(a, PhysFormat::SingleTuple), (b, PhysFormat::SingleTuple)],
    );
    // All flops are single-threaded; the RHS moves to the LHS's worker.
    close(e.features.local_flops, 2.0 * 2000.0 * 3000.0 * 1000.0);
    close(e.features.cpu_flops, 0.0);
    close(e.features.net_bytes, 3000.0 * 1000.0 * 8.0);
    close(e.features.ops, 1.0);
}

#[test]
fn mm_tile_shuffle_partials_follow_the_grid() {
    let a = MatrixType::dense(4000, 6000);
    let b = MatrixType::dense(6000, 2000);
    let t = PhysFormat::Tile { side: 1000 };
    let e = eval("mm_tile_shuffle", Op::MatMul, &[(a, t), (b, t)]);
    // 4 × 2 × 6 partial tiles of 8 MB.
    let partials = 4.0 * 2.0 * 6.0 * 1000.0 * 1000.0 * 8.0;
    close(e.features.inter_bytes, partials);
    // Both inputs plus the partials cross the network once, spread over
    // the 10 workers.
    let a_bytes = 4000.0 * 6000.0 * 8.0;
    let b_bytes = 6000.0 * 2000.0 * 8.0;
    close(e.features.net_bytes, (a_bytes + b_bytes + partials) / 10.0);
    // Tuples: 24 + 12 input tiles, 48 partials, 8 output tiles.
    close(e.features.tuples, 24.0 + 12.0 + 48.0 + 8.0);
    close(e.features.ops, 2.0);
}

#[test]
fn mm_tile_bcast_ships_only_the_smaller_side() {
    let a = MatrixType::dense(20_000, 4000);
    let b = MatrixType::dense(4000, 2000);
    let t = PhysFormat::Tile { side: 1000 };
    let e = eval("mm_tile_bcast", Op::MatMul, &[(a, t), (b, t)]);
    // b (64 MB) is smaller than a (640 MB): net = b's bytes.
    close(e.features.net_bytes, 4000.0 * 2000.0 * 8.0);
    close(e.features.ops, 1.0);
    // No partial-aggregation spill: the intermediate is the output.
    close(e.features.inter_bytes, 20_000.0 * 2000.0 * 8.0);
}

#[test]
fn gather_to_single_funnels_everything() {
    use matopt_core::{TransformCatalog, TransformKind};
    let m = MatrixType::dense(10_000, 10_000);
    let cat = TransformCatalog;
    let t = cat
        .find(&m, PhysFormat::Tile { side: 1000 }, PhysFormat::SingleTuple)
        .unwrap();
    assert_eq!(t.kind, TransformKind::GatherToSingle);
    let f = cat.features(&m, PhysFormat::Tile { side: 1000 }, t, &cl());
    close(f.net_bytes, 0.8 * GB); // all 800 MB through one NIC
    close(f.ops, 2.0); // ROWMATRIX + COLMATRIX
    close(f.tuples, 100.0 + 1.0);
}

#[test]
fn broadcast_add_row_ships_the_vector_once() {
    let a = MatrixType::dense(10_000, 20_000);
    let bias = MatrixType::dense(1, 20_000);
    let e = eval(
        "bias_bcast",
        Op::BroadcastAddRow,
        &[
            (a, PhysFormat::Tile { side: 1000 }),
            (bias, PhysFormat::SingleTuple),
        ],
    );
    close(e.features.net_bytes, 20_000.0 * 8.0);
    // One pass over the data, spread across the 10 workers.
    close(e.features.cpu_flops, 10_000.0 * 20_000.0 / 10.0);
}

#[test]
fn unary_map_is_network_free() {
    let a = MatrixType::dense(10_000, 10_000);
    let e = eval(
        "relu_map",
        Op::Relu,
        &[(a, PhysFormat::Tile { side: 1000 })],
    );
    close(e.features.net_bytes, 0.0);
    close(e.features.inter_bytes, 0.0);
    close(e.features.tuples, 100.0);
    close(e.features.cpu_flops, 1e8 / 10.0);
}

#[test]
fn sparse_matmul_flops_scale_with_nnz() {
    let a = MatrixType::sparse(10_000, 600_000, 1e-4);
    let b = MatrixType::dense(600_000, 4000);
    let e = eval(
        "mm_csrtile_tile",
        Op::MatMul,
        &[
            (a, PhysFormat::CsrTile { side: 1000 }),
            (b, PhysFormat::Tile { side: 1000 }),
        ],
    );
    // 2 · m · k · n · density, spread over 10 workers.
    let flops = 2.0 * 10_000.0 * 600_000.0 * 4000.0 * 1e-4;
    close(e.features.cpu_flops, flops / 10.0);
    // Partials are bounded by nnz × tile side, not by dense tiles.
    let nnz = 10_000.0 * 600_000.0 * 1e-4;
    close(e.features.inter_bytes, nnz * 1000.0 * 8.0);
}

#[test]
fn coo_matmul_pays_one_tuple_per_triple() {
    let a = MatrixType::sparse(10_000, 100_000, 1e-3);
    let b = MatrixType::dense(100_000, 1000);
    let e = eval(
        "mm_coo_dense_shuffle",
        Op::MatMul,
        &[(a, PhysFormat::Coo), (b, PhysFormat::Tile { side: 1000 })],
    );
    assert!(e.features.tuples >= a.nnz());
}

#[test]
fn inverse_gauss_jordan_charges_one_round_per_panel() {
    let a = MatrixType::dense(10_000, 10_000);
    let e = eval(
        "inv_tile_gauss_jordan",
        Op::Inverse,
        &[(a, PhysFormat::Tile { side: 1000 })],
    );
    close(e.features.ops, 10.0); // one relational round per pivot block
    close(e.features.net_bytes, 10.0 * 10_000.0 * 1000.0 * 8.0);
}

#[test]
fn inverse_single_is_single_threaded() {
    let a = MatrixType::dense(10_000, 10_000);
    let e = eval(
        "inv_single_local",
        Op::Inverse,
        &[(a, PhysFormat::SingleTuple)],
    );
    close(e.features.local_flops, 2.0 * 1e12);
    close(e.features.cpu_flops, 0.0);
}

#[test]
fn elementwise_copart_moves_the_smaller_side() {
    let a = MatrixType::dense(10_000, 10_000);
    let e = eval(
        "add_copart",
        Op::Add,
        &[
            (a, PhysFormat::Tile { side: 1000 }),
            (a, PhysFormat::Tile { side: 1000 }),
        ],
    );
    // Worst case: one side re-shuffled to align, in parallel.
    close(e.features.net_bytes, 0.8 * GB / 10.0);
    close(e.features.tuples, 300.0);
}

#[test]
fn softmax_two_round_charges_three_operators() {
    let a = MatrixType::dense(10_000, 20_000);
    let e = eval(
        "softmax_tile_tworound",
        Op::Softmax,
        &[(a, PhysFormat::Tile { side: 1000 })],
    );
    close(e.features.ops, 3.0);
    let aligned = eval(
        "softmax_rowaligned",
        Op::Softmax,
        &[(a, PhysFormat::RowStrip { height: 1000 })],
    );
    close(aligned.features.ops, 1.0);
    assert!(aligned.features.net_bytes < e.features.net_bytes + 1.0);
}

#[test]
fn reduce_tile_shuffle_emits_partial_vectors() {
    let a = MatrixType::dense(10_000, 20_000);
    let e = eval(
        "rowsums_tile_shuffle",
        Op::RowSums,
        &[(a, PhysFormat::Tile { side: 1000 })],
    );
    // 200 tiles each emit a 1000-long partial vector.
    close(e.features.inter_bytes, 200.0 * 1000.0 * 8.0);
    close(e.features.ops, 2.0);
}

#[test]
fn cross_join_avoids_aggregation_entirely() {
    let a = MatrixType::dense(10_000, 50_000);
    let b = MatrixType::dense(50_000, 10_000);
    let e = eval(
        "mm_rowstrip_colstrip_cross",
        Op::MatMul,
        &[
            (a, PhysFormat::RowStrip { height: 1000 }),
            (b, PhysFormat::ColStrip { width: 1000 }),
        ],
    );
    close(e.features.ops, 1.0);
    // Intermediate data = the output itself, no partial products.
    close(e.features.inter_bytes, 10_000.0 * 10_000.0 * 8.0);
    // 10 × 10 output tiles from 10 + 10 strips.
    close(e.features.tuples, 10.0 + 10.0 + 100.0);
}
