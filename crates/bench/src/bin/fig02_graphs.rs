//! Regenerates fig02 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig02(&Env::new()));
}
