//! Regenerates fig01 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig01(&Env::new()));
}
