//! The two-level block-wise matrix inverse of §8.2 (Figure 9).
//!
//! The classic blocked inverse [Graybill 1983]:
//!
//! ```text
//! [A B]⁻¹   [Ā B̄]        Ā = A⁻¹ + A⁻¹·B·S⁻¹·C·A⁻¹
//! [C D]   = [C̄ D̄]  with  B̄ = −A⁻¹·B·S⁻¹
//!                         C̄ = −S⁻¹·C·A⁻¹
//!                         D̄ = S⁻¹,     S = D − C·A⁻¹·B
//! ```
//!
//! applied at two levels: the outer 20K×20K matrix is split into four
//! 10K×10K blocks, and its `A` block is *itself* inverted block-wise
//! from 2K/8K sub-blocks. All arithmetic is expressed at the leaf-block
//! level, so the level-1 inverse (a 2×2 block matrix) flows into the
//! level-2 formula through conformally partitioned block products —
//! exactly how one writes this computation against a relational engine.

use matopt_core::{ComputeGraph, MatrixType, NodeId, Op, PhysFormat, TypeError};

/// A matrix represented as a grid of graph vertices (blocks), with
/// conformal partitions implied by the vertex types.
#[derive(Debug, Clone)]
pub struct BlockMat {
    /// `parts[i][j]` is the block at block-row `i`, block-column `j`.
    pub parts: Vec<Vec<NodeId>>,
}

impl BlockMat {
    /// A 1×1 block matrix.
    pub fn single(n: NodeId) -> Self {
        BlockMat {
            parts: vec![vec![n]],
        }
    }

    fn block_rows(&self) -> usize {
        self.parts.len()
    }

    fn block_cols(&self) -> usize {
        self.parts[0].len()
    }
}

/// Block-matrix product: `Z_ij = Σ_k X_ik · Y_kj`.
///
/// # Errors
/// Propagates [`TypeError`] on non-conformal partitions.
pub fn bmm(g: &mut ComputeGraph, x: &BlockMat, y: &BlockMat) -> Result<BlockMat, TypeError> {
    let mut parts = Vec::new();
    for i in 0..x.block_rows() {
        let mut row = Vec::new();
        for j in 0..y.block_cols() {
            let mut acc: Option<NodeId> = None;
            for k in 0..x.block_cols() {
                let prod = g.add_op(Op::MatMul, &[x.parts[i][k], y.parts[k][j]])?;
                acc = Some(match acc {
                    None => prod,
                    Some(prev) => g.add_op(Op::Add, &[prev, prod])?,
                });
            }
            row.push(acc.expect("non-empty contraction"));
        }
        parts.push(row);
    }
    Ok(BlockMat { parts })
}

/// Cellwise block sum.
///
/// # Errors
/// Propagates [`TypeError`] on shape mismatches.
pub fn badd(g: &mut ComputeGraph, x: &BlockMat, y: &BlockMat) -> Result<BlockMat, TypeError> {
    bzip(g, x, y, Op::Add)
}

/// Cellwise block difference.
///
/// # Errors
/// Propagates [`TypeError`] on shape mismatches.
pub fn bsub(g: &mut ComputeGraph, x: &BlockMat, y: &BlockMat) -> Result<BlockMat, TypeError> {
    bzip(g, x, y, Op::Sub)
}

fn bzip(g: &mut ComputeGraph, x: &BlockMat, y: &BlockMat, op: Op) -> Result<BlockMat, TypeError> {
    let mut parts = Vec::new();
    for (xr, yr) in x.parts.iter().zip(y.parts.iter()) {
        let mut row = Vec::new();
        for (a, b) in xr.iter().zip(yr.iter()) {
            row.push(g.add_op(op, &[*a, *b])?);
        }
        parts.push(row);
    }
    Ok(BlockMat { parts })
}

/// Cellwise negation.
///
/// # Errors
/// Propagates [`TypeError`].
pub fn bneg(g: &mut ComputeGraph, x: &BlockMat) -> Result<BlockMat, TypeError> {
    let mut parts = Vec::new();
    for xr in &x.parts {
        let mut row = Vec::new();
        for a in xr {
            row.push(g.add_op(Op::Neg, &[*a])?);
        }
        parts.push(row);
    }
    Ok(BlockMat { parts })
}

/// One level of the blocked inverse formula over 2×2 *block matrices*
/// (each quadrant may itself be a grid of blocks). The inner inverse
/// `A⁻¹` is supplied by the caller — recursion for the two-level
/// experiment, a plain [`Op::Inverse`] vertex at the leaves.
///
/// Returns the four quadrants `(Ā, B̄, C̄, D̄)` of the inverse.
///
/// # Errors
/// Propagates [`TypeError`].
pub fn block_inverse(
    g: &mut ComputeGraph,
    a_inv: &BlockMat,
    b: &BlockMat,
    c: &BlockMat,
    d: &BlockMat,
) -> Result<(BlockMat, BlockMat, BlockMat, BlockMat), TypeError> {
    // Shared sub-expressions, computed once (the graph is a DAG).
    let a_inv_b = bmm(g, a_inv, b)?; // A⁻¹B
    let c_a_inv = bmm(g, c, a_inv)?; // CA⁻¹
    let c_a_inv_b = bmm(g, c, &a_inv_b)?; // CA⁻¹B
    let s = bsub(g, d, &c_a_inv_b)?; // S = D − CA⁻¹B
                                     // S is a single logical matrix here (both levels partition so that
                                     // the Schur complement is one block).
    assert_eq!(
        (s.block_rows(), s.block_cols()),
        (1, 1),
        "Schur complement must be a single block"
    );
    let s_inv = BlockMat::single(g.add_op_named(Op::Inverse, &[s.parts[0][0]], Some("Sinv"))?);
    let a_inv_b_s_inv = bmm(g, &a_inv_b, &s_inv)?; // A⁻¹BS⁻¹
    let abar_update = bmm(g, &a_inv_b_s_inv, &c_a_inv)?; // A⁻¹BS⁻¹CA⁻¹
    let abar = badd(g, a_inv, &abar_update)?;
    let bbar = bneg(g, &a_inv_b_s_inv)?;
    let cbar_pos = bmm(g, &s_inv, &c_a_inv)?;
    let cbar = bneg(g, &cbar_pos)?;
    Ok((abar, bbar, cbar, s_inv))
}

/// Handles to a built two-level inverse graph.
#[derive(Debug, Clone)]
pub struct TwoLevelInverse {
    /// The compute graph.
    pub graph: ComputeGraph,
    /// The quadrants of the final inverse: Ā (2×2 blocks), B̄ (2×1),
    /// C̄ (1×2), D̄ (1×1).
    pub quadrants: (BlockMat, BlockMat, BlockMat, BlockMat),
}

/// Builds the paper's two-level block-wise inverse: outer blocks `A`,
/// `B`, `C`, `D` of size `half × half` (10K in the paper), with `A`
/// sub-blocked at `a_split` (2K in the paper, giving 2K/8K quadrants).
///
/// Sources default to single-tuple storage when a block fits in one
/// tuple and 1000-tiles otherwise.
///
/// # Errors
/// Propagates [`TypeError`].
pub fn two_level_inverse_graph(half: u64, a_split: u64) -> Result<TwoLevelInverse, TypeError> {
    let mut g = ComputeGraph::new();
    let src = |g: &mut ComputeGraph, r: u64, c: u64, name: &str| {
        let mt = MatrixType::dense(r, c);
        // 10K×10K = 800 MB fits a tuple comfortably.
        g.add_source_named(mt, PhysFormat::SingleTuple, Some(name))
    };
    let rest = half - a_split;
    // Level-1 sources: the quadrants of A.
    let a11 = src(&mut g, a_split, a_split, "A11");
    let a12 = src(&mut g, a_split, rest, "A12");
    let a21 = src(&mut g, rest, a_split, "A21");
    let a22 = src(&mut g, rest, rest, "A22");
    // Level-2 sources, partitioned conformally with A's quadrants where
    // they multiply against the blocked A⁻¹.
    let b1 = src(&mut g, a_split, half, "B1");
    let b2 = src(&mut g, rest, half, "B2");
    let c1 = src(&mut g, half, a_split, "C1");
    let c2 = src(&mut g, half, rest, "C2");
    let d = src(&mut g, half, half, "D");

    // Level 1: invert A from its quadrants; inner inverses are plain
    // vertices (2K and 8K local inversions).
    let a11_inv = BlockMat::single(g.add_op_named(Op::Inverse, &[a11], Some("A11inv"))?);
    let (l1_a, l1_b, l1_c, l1_d) = block_inverse(
        &mut g,
        &a11_inv,
        &BlockMat::single(a12),
        &BlockMat::single(a21),
        &BlockMat::single(a22),
    )?;
    // Assemble A⁻¹ as a 2×2 block matrix.
    let a_inv = BlockMat {
        parts: vec![
            vec![l1_a.parts[0][0], l1_b.parts[0][0]],
            vec![l1_c.parts[0][0], l1_d.parts[0][0]],
        ],
    };

    // Level 2: invert the outer matrix using the blocked A⁻¹.
    let b = BlockMat {
        parts: vec![vec![b1], vec![b2]],
    };
    let c = BlockMat {
        parts: vec![vec![c1, c2]],
    };
    let d = BlockMat::single(d);
    let quadrants = block_inverse(&mut g, &a_inv, &b, &c, &d)?;
    Ok(TwoLevelInverse {
        graph: g,
        quadrants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_graph_builds_and_shares() {
        let t = two_level_inverse_graph(10_000, 2_000).unwrap();
        // A⁻¹ blocks feed many consumers: the graph is a real DAG.
        assert!(!t.graph.is_tree_shaped());
        // Quadrant shapes.
        let (abar, bbar, cbar, dbar) = &t.quadrants;
        assert_eq!(abar.parts.len(), 2);
        assert_eq!(abar.parts[0].len(), 2);
        assert_eq!(bbar.parts.len(), 2);
        assert_eq!(cbar.parts[0].len(), 2);
        let d_t = t.graph.node(dbar.parts[0][0]).mtype;
        assert_eq!((d_t.rows, d_t.cols), (10_000, 10_000));
        let a_t = t.graph.node(abar.parts[1][1]).mtype;
        assert_eq!((a_t.rows, a_t.cols), (8_000, 8_000));
    }

    #[test]
    fn small_scale_graph_type_checks() {
        let t = two_level_inverse_graph(16, 4).unwrap();
        assert!(
            t.graph.len() > 40,
            "rich DAG expected, got {}",
            t.graph.len()
        );
        assert_eq!(t.graph.sources().len(), 9);
    }
}
