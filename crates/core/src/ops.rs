//! Atomic computations — the set `A` of the paper (§3): abstract,
//! implementation-free operations over matrices, with their type
//! specification functions.

use crate::types::MatrixType;

/// An atomic computation, possibly carrying a scalar payload.
///
/// The prototype described in §8.1 supports 16 atomic computations;
/// these are ours. Every experiment in the paper (FFNN backprop,
/// block-wise inverse, multiplication chains) is expressible with this
/// set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Matrix multiplication `A × B`.
    MatMul,
    /// Elementwise sum `A + B`.
    Add,
    /// Elementwise difference `A − B`.
    Sub,
    /// Hadamard (elementwise) product `A ∘ B`.
    Hadamard,
    /// Multiplication by the given scalar constant.
    ScalarMul(f64),
    /// Matrix transpose.
    Transpose,
    /// Rectified linear unit, elementwise.
    Relu,
    /// Derivative of relu (`1` where positive), elementwise.
    ReluGrad,
    /// Row-wise softmax.
    Softmax,
    /// Logistic sigmoid, elementwise.
    Sigmoid,
    /// Elementwise exponential.
    Exp,
    /// Elementwise negation.
    Neg,
    /// Sum of each row, producing an `n × 1` vector.
    RowSums,
    /// Sum of each column, producing a `1 × n` vector.
    ColSums,
    /// Matrix inverse (square inputs only).
    Inverse,
    /// Adds a `1 × c` row vector (second input) to every row of the
    /// first input — bias addition.
    BroadcastAddRow,
    /// Sum of every entry, producing a `1 × 1` scalar. The terminal
    /// reduction of autodiff loss expressions.
    SumAll,
    /// Frobenius norm `√Σaᵢⱼ²`, producing a `1 × 1` scalar. Used for
    /// gradient-norm telemetry; not differentiable in this op set (its
    /// gradient needs a division).
    FrobeniusNorm,
}

/// The payload-free discriminant of an [`Op`], used to match atomic
/// computation implementations against vertices (`i.a = v.a` in §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// See [`Op::MatMul`].
    MatMul,
    /// See [`Op::Add`].
    Add,
    /// See [`Op::Sub`].
    Sub,
    /// See [`Op::Hadamard`].
    Hadamard,
    /// See [`Op::ScalarMul`].
    ScalarMul,
    /// See [`Op::Transpose`].
    Transpose,
    /// See [`Op::Relu`].
    Relu,
    /// See [`Op::ReluGrad`].
    ReluGrad,
    /// See [`Op::Softmax`].
    Softmax,
    /// See [`Op::Sigmoid`].
    Sigmoid,
    /// See [`Op::Exp`].
    Exp,
    /// See [`Op::Neg`].
    Neg,
    /// See [`Op::RowSums`].
    RowSums,
    /// See [`Op::ColSums`].
    ColSums,
    /// See [`Op::Inverse`].
    Inverse,
    /// See [`Op::BroadcastAddRow`].
    BroadcastAddRow,
    /// See [`Op::SumAll`].
    SumAll,
    /// See [`Op::FrobeniusNorm`].
    FrobeniusNorm,
}

/// All atomic computations, in declaration order: the paper's 16
/// ([`PAPER_OP_KINDS`]) followed by the two scalar reductions added for
/// autodiff loss expressions. New kinds are only ever appended so the
/// wire encoding of the prefix never changes.
pub const ALL_OP_KINDS: [OpKind; 18] = [
    OpKind::MatMul,
    OpKind::Add,
    OpKind::Sub,
    OpKind::Hadamard,
    OpKind::ScalarMul,
    OpKind::Transpose,
    OpKind::Relu,
    OpKind::ReluGrad,
    OpKind::Softmax,
    OpKind::Sigmoid,
    OpKind::Exp,
    OpKind::Neg,
    OpKind::RowSums,
    OpKind::ColSums,
    OpKind::Inverse,
    OpKind::BroadcastAddRow,
    OpKind::SumAll,
    OpKind::FrobeniusNorm,
];

/// The prototype's 16 atomic computations (§8.1), exactly as pinned by
/// the paper: [`ALL_OP_KINDS`] without the post-paper scalar
/// reductions.
pub const PAPER_OP_KINDS: [OpKind; 16] = [
    OpKind::MatMul,
    OpKind::Add,
    OpKind::Sub,
    OpKind::Hadamard,
    OpKind::ScalarMul,
    OpKind::Transpose,
    OpKind::Relu,
    OpKind::ReluGrad,
    OpKind::Softmax,
    OpKind::Sigmoid,
    OpKind::Exp,
    OpKind::Neg,
    OpKind::RowSums,
    OpKind::ColSums,
    OpKind::Inverse,
    OpKind::BroadcastAddRow,
];

/// Error returned when an atomic computation cannot accept its input
/// types — the `⊥` of the paper's type specification functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

fn type_err<T>(message: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError {
        message: message.into(),
    })
}

impl Op {
    /// The payload-free discriminant.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::MatMul => OpKind::MatMul,
            Op::Add => OpKind::Add,
            Op::Sub => OpKind::Sub,
            Op::Hadamard => OpKind::Hadamard,
            Op::ScalarMul(_) => OpKind::ScalarMul,
            Op::Transpose => OpKind::Transpose,
            Op::Relu => OpKind::Relu,
            Op::ReluGrad => OpKind::ReluGrad,
            Op::Softmax => OpKind::Softmax,
            Op::Sigmoid => OpKind::Sigmoid,
            Op::Exp => OpKind::Exp,
            Op::Neg => OpKind::Neg,
            Op::RowSums => OpKind::RowSums,
            Op::ColSums => OpKind::ColSums,
            Op::Inverse => OpKind::Inverse,
            Op::BroadcastAddRow => OpKind::BroadcastAddRow,
            Op::SumAll => OpKind::SumAll,
            Op::FrobeniusNorm => OpKind::FrobeniusNorm,
        }
    }

    /// Number of matrix inputs.
    pub fn arity(&self) -> usize {
        self.kind().arity()
    }

    /// The type specification function `a.f : Mⁿ → M ∪ {⊥}` of §3:
    /// computes the output matrix type or a [`TypeError`] if the inputs
    /// are not acceptable.
    ///
    /// ```
    /// use matopt_core::{MatrixType, Op};
    /// let out = Op::MatMul
    ///     .output_type(&[MatrixType::dense(5, 10), MatrixType::dense(10, 7)])
    ///     .unwrap();
    /// assert_eq!((out.rows, out.cols), (5, 7));
    /// assert!(Op::MatMul
    ///     .output_type(&[MatrixType::dense(5, 10), MatrixType::dense(9, 7)])
    ///     .is_err());
    /// ```
    ///
    /// Sparsity propagation follows standard independence estimates
    /// (cf. the discussion of sparsity estimation in §7):
    ///
    /// * `MatMul`: output density `1 − (1 − dₐ·d_b)^k`;
    /// * `Add`/`Sub`/`BroadcastAddRow`: union bound `min(1, dₐ + d_b)`;
    /// * `Hadamard`: intersection `dₐ·d_b`;
    /// * `Relu`/`ReluGrad`: half the positive mass survives, `d/2`... the
    ///   conservative estimate used here keeps `d` for grad and `d/2`
    ///   for relu of a roughly zero-centered input;
    /// * `Softmax`/`Sigmoid`/`Exp`/`Inverse`: dense (`1.0`);
    /// * reductions: `1 − (1 − d)^width` per output entry.
    pub fn output_type(&self, inputs: &[MatrixType]) -> Result<MatrixType, TypeError> {
        if inputs.len() != self.arity() {
            return type_err(format!(
                "{:?} expects {} inputs, got {}",
                self.kind(),
                self.arity(),
                inputs.len()
            ));
        }
        let a = inputs[0];
        match self.kind() {
            OpKind::MatMul => {
                let b = inputs[1];
                if a.cols != b.rows {
                    return type_err(format!("matmul inner dims {} vs {}", a, b));
                }
                let d = combine_matmul_density(a.sparsity, b.sparsity, a.cols);
                Ok(MatrixType {
                    rows: a.rows,
                    cols: b.cols,
                    sparsity: d,
                })
            }
            OpKind::Add | OpKind::Sub => {
                let b = inputs[1];
                if (a.rows, a.cols) != (b.rows, b.cols) {
                    return type_err(format!("elementwise shape mismatch {} vs {}", a, b));
                }
                Ok(MatrixType {
                    rows: a.rows,
                    cols: a.cols,
                    sparsity: (a.sparsity + b.sparsity).min(1.0),
                })
            }
            OpKind::Hadamard => {
                let b = inputs[1];
                if (a.rows, a.cols) != (b.rows, b.cols) {
                    return type_err(format!("hadamard shape mismatch {} vs {}", a, b));
                }
                Ok(MatrixType {
                    rows: a.rows,
                    cols: a.cols,
                    sparsity: a.sparsity * b.sparsity,
                })
            }
            OpKind::BroadcastAddRow => {
                let b = inputs[1];
                if b.rows != 1 || b.cols != a.cols {
                    return type_err(format!("bias must be 1x{}, got {}", a.cols, b));
                }
                Ok(MatrixType {
                    rows: a.rows,
                    cols: a.cols,
                    sparsity: (a.sparsity + b.sparsity).min(1.0),
                })
            }
            OpKind::ScalarMul | OpKind::Neg | OpKind::ReluGrad => Ok(a),
            OpKind::Relu => Ok(MatrixType {
                sparsity: (a.sparsity * 0.5).max(f64::MIN_POSITIVE),
                ..a
            }),
            OpKind::Transpose => Ok(a.transposed()),
            OpKind::Softmax | OpKind::Sigmoid | OpKind::Exp => Ok(MatrixType {
                rows: a.rows,
                cols: a.cols,
                sparsity: 1.0,
            }),
            OpKind::RowSums => Ok(MatrixType {
                rows: a.rows,
                cols: 1,
                sparsity: fill_in(a.sparsity, a.cols),
            }),
            OpKind::ColSums => Ok(MatrixType {
                rows: 1,
                cols: a.cols,
                sparsity: fill_in(a.sparsity, a.rows),
            }),
            OpKind::Inverse => {
                if !a.is_square() {
                    return type_err(format!("inverse of non-square {}", a));
                }
                Ok(MatrixType {
                    rows: a.rows,
                    cols: a.cols,
                    sparsity: 1.0,
                })
            }
            OpKind::SumAll | OpKind::FrobeniusNorm => Ok(MatrixType {
                rows: 1,
                cols: 1,
                sparsity: fill_in(a.sparsity, a.rows.saturating_mul(a.cols)),
            }),
        }
    }

    /// Estimated floating-point operations to compute this op on the
    /// given inputs, exploiting sparsity where the kernel can.
    pub fn flops(&self, inputs: &[MatrixType]) -> f64 {
        let a = inputs[0];
        match self.kind() {
            OpKind::MatMul => {
                let b = inputs[1];
                // A sparse LHS skips its zero entries entirely.
                2.0 * a.rows as f64 * a.cols as f64 * b.cols as f64 * a.sparsity * b.sparsity
            }
            OpKind::Inverse => {
                // LU factorization + solves: ~2n³.
                2.0 * (a.rows as f64).powi(3)
            }
            OpKind::Softmax => 4.0 * a.entries(),
            OpKind::Sigmoid | OpKind::Exp | OpKind::FrobeniusNorm => 2.0 * a.entries(),
            _ => a.entries(),
        }
    }
}

impl OpKind {
    /// Number of matrix inputs of the computation.
    pub fn arity(&self) -> usize {
        match self {
            OpKind::MatMul
            | OpKind::Add
            | OpKind::Sub
            | OpKind::Hadamard
            | OpKind::BroadcastAddRow => 2,
            _ => 1,
        }
    }
}

/// Density of a matmul output: each output entry is a k-term dot
/// product; it is non-zero (estimated) unless every term vanishes.
fn combine_matmul_density(da: f64, db: f64, k: u64) -> f64 {
    let p_term = (da * db).clamp(0.0, 1.0);
    if p_term == 0.0 {
        return 0.0;
    }
    let out = 1.0 - (1.0 - p_term).powf(k as f64);
    out.clamp(p_term, 1.0)
}

/// Density of a width-`w` sum of entries with density `d`.
fn fill_in(d: f64, w: u64) -> f64 {
    if d == 0.0 {
        return 0.0;
    }
    (1.0 - (1.0 - d).powf(w as f64)).clamp(d, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_sixteen_atomic_computations() {
        // The paper's inventory stays pinned at 16; the full op set
        // appends the two autodiff scalar reductions after it, never
        // in the middle (discriminants are wire-visible).
        assert_eq!(PAPER_OP_KINDS.len(), 16);
        assert_eq!(ALL_OP_KINDS.len(), 18);
        assert_eq!(&ALL_OP_KINDS[..16], &PAPER_OP_KINDS[..]);
        assert_eq!(ALL_OP_KINDS[16], OpKind::SumAll);
        assert_eq!(ALL_OP_KINDS[17], OpKind::FrobeniusNorm);
    }

    #[test]
    fn scalar_reductions_produce_scalars() {
        let m = MatrixType::dense(40, 70);
        for op in [Op::SumAll, Op::FrobeniusNorm] {
            let out = op.output_type(&[m]).unwrap();
            assert_eq!((out.rows, out.cols), (1, 1));
            assert_eq!(out.sparsity, 1.0);
            assert_eq!(op.arity(), 1);
            assert!(op.output_type(&[m, m]).is_err());
        }
        // An all-zero input stays (estimated) zero.
        let z = MatrixType::sparse(8, 8, 0.0);
        assert_eq!(Op::SumAll.output_type(&[z]).unwrap().sparsity, 0.0);
    }

    #[test]
    fn matmul_type_inference_matches_paper_example() {
        // §3: multiplying 5×10 and 10×5 gives 5×5.
        let out = Op::MatMul
            .output_type(&[MatrixType::dense(5, 10), MatrixType::dense(10, 5)])
            .unwrap();
        assert_eq!((out.rows, out.cols), (5, 5));
        assert_eq!(out.sparsity, 1.0);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        assert!(Op::MatMul
            .output_type(&[MatrixType::dense(5, 10), MatrixType::dense(5, 10)])
            .is_err());
    }

    #[test]
    fn matmul_sparse_times_dense_becomes_nearly_dense() {
        // §7: "matrix multiplies between sparse data matrices and dense
        // model matrices typically result in dense matrices".
        let sparse = MatrixType::sparse(1000, 600_000, 1e-4);
        let dense = MatrixType::dense(600_000, 5000);
        let out = Op::MatMul.output_type(&[sparse, dense]).unwrap();
        assert!(out.sparsity > 0.99, "got {}", out.sparsity);
    }

    #[test]
    fn hadamard_density_is_product() {
        let a = MatrixType::sparse(10, 10, 0.5);
        let b = MatrixType::sparse(10, 10, 0.5);
        let out = Op::Hadamard.output_type(&[a, b]).unwrap();
        assert_eq!(out.sparsity, 0.25);
    }

    #[test]
    fn add_density_is_union_bound() {
        let a = MatrixType::sparse(10, 10, 0.7);
        let b = MatrixType::sparse(10, 10, 0.7);
        assert_eq!(Op::Add.output_type(&[a, b]).unwrap().sparsity, 1.0);
    }

    #[test]
    fn transpose_swaps_shape() {
        let out = Op::Transpose
            .output_type(&[MatrixType::dense(3, 7)])
            .unwrap();
        assert_eq!((out.rows, out.cols), (7, 3));
    }

    #[test]
    fn reductions_produce_vectors() {
        let m = MatrixType::dense(40, 70);
        let r = Op::RowSums.output_type(&[m]).unwrap();
        assert_eq!((r.rows, r.cols), (40, 1));
        let c = Op::ColSums.output_type(&[m]).unwrap();
        assert_eq!((c.rows, c.cols), (1, 70));
    }

    #[test]
    fn inverse_requires_square() {
        assert!(Op::Inverse.output_type(&[MatrixType::dense(3, 4)]).is_err());
        assert!(Op::Inverse.output_type(&[MatrixType::dense(4, 4)]).is_ok());
    }

    #[test]
    fn bias_add_requires_row_vector() {
        let m = MatrixType::dense(10, 5);
        assert!(Op::BroadcastAddRow
            .output_type(&[m, MatrixType::dense(1, 5)])
            .is_ok());
        assert!(Op::BroadcastAddRow
            .output_type(&[m, MatrixType::dense(5, 1)])
            .is_err());
        assert!(Op::BroadcastAddRow
            .output_type(&[m, MatrixType::dense(1, 4)])
            .is_err());
    }

    #[test]
    fn arity_checks() {
        assert_eq!(Op::MatMul.arity(), 2);
        assert_eq!(Op::Relu.arity(), 1);
        assert!(Op::Relu
            .output_type(&[MatrixType::dense(2, 2), MatrixType::dense(2, 2)])
            .is_err());
    }

    #[test]
    fn matmul_flops_scale_with_sparsity() {
        let dense = [MatrixType::dense(100, 100), MatrixType::dense(100, 100)];
        let sparse = [
            MatrixType::sparse(100, 100, 0.01),
            MatrixType::dense(100, 100),
        ];
        assert_eq!(Op::MatMul.flops(&dense), 2e6);
        assert_eq!(Op::MatMul.flops(&sparse), 2e4);
    }

    #[test]
    fn softmax_output_is_dense() {
        let m = MatrixType::sparse(10, 10, 0.1);
        assert_eq!(Op::Softmax.output_type(&[m]).unwrap().sparsity, 1.0);
    }
}
