//! Property-based tests over the core model invariants: format
//! accounting, type inference, transformation lookup, and
//! implementation evaluation must hold for arbitrary (sane) matrix
//! types and formats — the optimizers silently rely on all of these.

use matopt_core::{
    Cluster, FormatCatalog, ImplRegistry, MatrixType, Op, PhysFormat, TransformCatalog,
    TransformKind, ALL_OP_KINDS,
};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = MatrixType> {
    (1u64..200_000, 1u64..200_000, 0.0f64..=1.0).prop_map(|(r, c, s)| MatrixType {
        rows: r,
        cols: c,
        sparsity: s,
    })
}

fn arb_format() -> impl Strategy<Value = PhysFormat> {
    prop_oneof![
        Just(PhysFormat::SingleTuple),
        (1u64..50_000).prop_map(|s| PhysFormat::Tile { side: s }),
        (1u64..50_000).prop_map(|h| PhysFormat::RowStrip { height: h }),
        (1u64..50_000).prop_map(|w| PhysFormat::ColStrip { width: w }),
        Just(PhysFormat::Coo),
        Just(PhysFormat::CsrSingle),
        (1u64..50_000).prop_map(|s| PhysFormat::CsrTile { side: s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte and tuple accounting is always consistent: at least one
    /// tuple, no tuple larger than the total, non-negative everything.
    #[test]
    fn format_accounting_invariants(m in arb_type(), f in arb_format()) {
        let tuples = f.num_tuples(&m);
        prop_assert!(tuples >= 1.0);
        let total = f.total_bytes(&m);
        let biggest = f.max_tuple_bytes(&m);
        prop_assert!(total >= 0.0 && biggest >= 0.0);
        // One tuple cannot exceed the whole relation (up to fp slack).
        prop_assert!(biggest <= total.max(biggest.min(32.0)) + 1e-6);
    }

    /// A feasible chunked format never degenerates to a single chunk,
    /// and a feasible format's largest tuple respects the engine cap.
    #[test]
    fn feasibility_guarantees(m in arb_type(), f in arb_format()) {
        let cl = Cluster::simsql_like(10);
        if f.feasible(&m, &cl) {
            if f.is_chunked_dense() {
                prop_assert!(f.num_tuples(&m) > 1.0);
            }
            prop_assert!(f.max_tuple_bytes(&m) <= cl.max_tuple_bytes);
        }
    }

    /// Catalog candidates are unique and all feasible.
    #[test]
    fn candidates_are_feasible_and_unique(m in arb_type()) {
        let cl = Cluster::simsql_like(10);
        let cat = FormatCatalog::paper_default();
        let cands = cat.candidates(&m, &cl);
        for f in &cands {
            prop_assert!(f.feasible(&m, &cl));
        }
        let mut dedup = cands.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), cands.len());
    }

    /// Type inference never produces out-of-range sparsity, and unary
    /// ops preserve the operand's logical shape (except transpose and
    /// reductions, checked separately).
    #[test]
    fn sparsity_stays_in_unit_interval(a in arb_type(), b in arb_type()) {
        for op in [Op::MatMul, Op::Add, Op::Sub, Op::Hadamard] {
            if let Ok(out) = op.output_type(&[a, b]) {
                prop_assert!((0.0..=1.0).contains(&out.sparsity));
            }
        }
        for op in [
            Op::Relu, Op::ReluGrad, Op::Sigmoid, Op::Exp, Op::Neg,
            Op::ScalarMul(3.0), Op::Softmax, Op::RowSums, Op::ColSums,
        ] {
            if let Ok(out) = op.output_type(&[a]) {
                prop_assert!((0.0..=1.0).contains(&out.sparsity));
            }
        }
    }

    /// Transpose is a type-level involution.
    #[test]
    fn transpose_type_involution(a in arb_type()) {
        let once = Op::Transpose.output_type(&[a]).unwrap();
        let twice = Op::Transpose.output_type(&[once]).unwrap();
        prop_assert_eq!(twice, a);
    }

    /// Transformation lookup: same-format moves are always the identity;
    /// non-identity transforms have non-negative features; `find` never
    /// returns a transform targeting a different format than requested.
    #[test]
    fn transform_lookup_invariants(m in arb_type(), from in arb_format(), to in arb_format()) {
        let cat = TransformCatalog;
        let cl = Cluster::simsql_like(10);
        if let Some(t) = cat.find(&m, from, to) {
            prop_assert_eq!(t.to, to);
            if from == to {
                prop_assert_eq!(t.kind, TransformKind::Identity);
            }
            let f = cat.features(&m, from, t, &cl);
            prop_assert!(f.cpu_flops >= 0.0);
            prop_assert!(f.net_bytes >= 0.0);
            prop_assert!(f.inter_bytes >= 0.0);
            prop_assert!(f.tuples >= 0.0);
            prop_assert!(f.ops >= 0.0);
        }
    }

    /// Implementation evaluation: when an implementation accepts inputs,
    /// its output format is feasible for the output type, its features
    /// are non-negative, and the memory estimate respects the cluster
    /// limit it was checked against.
    #[test]
    fn impl_evaluation_invariants(
        a in arb_type(),
        b in arb_type(),
        fa in arb_format(),
        fb in arb_format(),
    ) {
        let reg = ImplRegistry::extended();
        let cl = Cluster::simsql_like(10);
        for kind in ALL_OP_KINDS {
            let op = match kind {
                matopt_core::OpKind::ScalarMul => Op::ScalarMul(0.5),
                matopt_core::OpKind::MatMul => Op::MatMul,
                matopt_core::OpKind::Add => Op::Add,
                matopt_core::OpKind::Sub => Op::Sub,
                matopt_core::OpKind::Hadamard => Op::Hadamard,
                matopt_core::OpKind::Transpose => Op::Transpose,
                matopt_core::OpKind::Relu => Op::Relu,
                matopt_core::OpKind::ReluGrad => Op::ReluGrad,
                matopt_core::OpKind::Softmax => Op::Softmax,
                matopt_core::OpKind::Sigmoid => Op::Sigmoid,
                matopt_core::OpKind::Exp => Op::Exp,
                matopt_core::OpKind::Neg => Op::Neg,
                matopt_core::OpKind::RowSums => Op::RowSums,
                matopt_core::OpKind::ColSums => Op::ColSums,
                matopt_core::OpKind::Inverse => Op::Inverse,
                matopt_core::OpKind::BroadcastAddRow => Op::BroadcastAddRow,
                matopt_core::OpKind::SumAll => Op::SumAll,
                matopt_core::OpKind::FrobeniusNorm => Op::FrobeniusNorm,
            };
            let inputs: Vec<(MatrixType, PhysFormat)> = if op.arity() == 1 {
                vec![(a, fa)]
            } else {
                vec![(a, fa), (b, fb)]
            };
            for impl_def in reg.impls_for(kind) {
                if let Some(eval) = impl_def.evaluate(&op, &inputs, &cl) {
                    let out_type = op
                        .output_type(&inputs.iter().map(|(m, _)| *m).collect::<Vec<_>>())
                        .expect("accepted implies type-correct");
                    prop_assert!(
                        eval.out_format.feasible(&out_type, &cl),
                        "{} produced infeasible {} for {}",
                        impl_def.name,
                        eval.out_format,
                        out_type
                    );
                    prop_assert!(eval.features.cpu_flops >= 0.0);
                    prop_assert!(eval.features.local_flops >= 0.0);
                    prop_assert!(eval.features.net_bytes >= 0.0);
                    prop_assert!(eval.features.inter_bytes >= 0.0);
                    prop_assert!(eval.features.tuples >= 0.0);
                    prop_assert!(eval.features.ops >= 0.0);
                    prop_assert!(eval.mem_per_worker <= cl.worker_ram_bytes);
                }
            }
        }
    }

    /// Wrong-op evaluation is always ⊥ — an implementation never
    /// accepts a vertex for a different atomic computation.
    #[test]
    fn wrong_op_is_always_rejected(a in arb_type(), fa in arb_format()) {
        let reg = ImplRegistry::paper_default();
        let cl = Cluster::simsql_like(10);
        let relu_impl = reg.by_name("relu_map").unwrap();
        prop_assert!(relu_impl.evaluate(&Op::Sigmoid, &[(a, fa)], &cl).is_none());
        prop_assert!(relu_impl
            .evaluate(&Op::MatMul, &[(a, fa), (a, fa)], &cl)
            .is_none());
    }
}
