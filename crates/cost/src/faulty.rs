//! Expected-cost plumbing for unreliable clusters: a [`CostModel`]
//! wrapper that inflates every fault-free time estimate by the expected
//! cost of surviving crashes and stragglers under a
//! [`RecoveryPolicy`].
//!
//! The optimizer's dynamic programs require costs that decompose per
//! vertex and per edge, so this wrapper applies the *local* expected-
//! time inflation: straggler inflation is exact, crash inflation uses
//! the per-operator geometric-retry model, and the policies differ by
//! how much work one crash wastes locally (lineage re-runs the
//! operator, checkpointing additionally re-reads the materialized
//! inputs, restart-from-scratch is charged a squared attempt factor as
//! a decomposable proxy for losing the whole prefix). The full
//! ancestor-aware expectation — which cannot decompose — lives in
//! `matopt_engine::simulate_plan_with_recovery`; this wrapper exists so
//! plan *search* can already prefer plans that recover cheaply.

use crate::model::CostModel;
use matopt_core::{Cluster, CostFeatures, OpKind, RecoveryPolicy, TransformKind};

/// Expected wall-clock seconds to complete one operator whose
/// fault-free time is `seconds`, on `cluster`, recovering crashes with
/// `policy`.
///
/// With a reliable cluster (the default rates) this is exactly
/// `seconds`, so wrapping a cost model in [`FaultAwareCostModel`]
/// changes nothing until fault rates are configured.
pub fn expected_vertex_time(seconds: f64, cluster: &Cluster, policy: RecoveryPolicy) -> f64 {
    if seconds <= 0.0 || !seconds.is_finite() {
        return seconds;
    }
    let inflated = seconds * cluster.straggler_inflation();
    let p = cluster.crash_probability(inflated).min(1.0 - 1e-9);
    if p <= 0.0 {
        return inflated;
    }
    // Geometric retries: E[attempts] = 1/(1-p), each costing the
    // operator's own time again.
    let attempts = 1.0 / (1.0 - p);
    match policy {
        // Replaying lineage re-runs just this operator (its surviving
        // ancestors are free).
        RecoveryPolicy::Lineage => inflated * attempts,
        // Checkpointing re-runs the operator and re-reads its
        // checkpointed inputs; charge one extra materialization round
        // per retry beyond the first.
        RecoveryPolicy::Checkpoint => inflated * attempts * (1.0 + 0.1 * p),
        // Restarting from scratch wastes the whole prefix on every
        // crash; the prefix is invisible at per-vertex granularity, so
        // square the attempt factor as a pessimistic decomposable
        // stand-in (exact for a plan whose prefix costs what the
        // operator does).
        RecoveryPolicy::Restart => inflated * attempts * attempts,
    }
}

/// A [`CostModel`] decorator that returns *expected* times under a
/// failure model instead of fault-free times, so the optimizer compares
/// plans by expected cost including recovery.
///
/// ```
/// use matopt_core::{Cluster, CostFeatures, OpKind, RecoveryPolicy};
/// use matopt_cost::{AnalyticalCostModel, CostModel, FaultAwareCostModel};
///
/// let inner = AnalyticalCostModel;
/// let model = FaultAwareCostModel::new(&inner, RecoveryPolicy::Lineage);
/// let reliable = Cluster::simsql_like(10);
/// let flaky = reliable.with_fault_rates(0.5, 0.1, 4.0);
/// let f = CostFeatures {
///     cpu_flops: 1e13,
///     ..CostFeatures::zero()
/// };
/// let base = inner.impl_time(OpKind::MatMul, &f, &reliable);
/// assert_eq!(model.impl_time(OpKind::MatMul, &f, &reliable), base);
/// assert!(model.impl_time(OpKind::MatMul, &f, &flaky) > base);
/// ```
pub struct FaultAwareCostModel<'a> {
    inner: &'a dyn CostModel,
    policy: RecoveryPolicy,
}

impl<'a> FaultAwareCostModel<'a> {
    /// Wraps `inner`, charging recovery under `policy`.
    pub fn new(inner: &'a dyn CostModel, policy: RecoveryPolicy) -> Self {
        FaultAwareCostModel { inner, policy }
    }

    /// The recovery policy this model charges for.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }
}

impl CostModel for FaultAwareCostModel<'_> {
    fn impl_time(&self, op: OpKind, features: &CostFeatures, cluster: &Cluster) -> f64 {
        expected_vertex_time(
            self.inner.impl_time(op, features, cluster),
            cluster,
            self.policy,
        )
    }

    fn transform_time(
        &self,
        kind: TransformKind,
        features: &CostFeatures,
        cluster: &Cluster,
    ) -> f64 {
        expected_vertex_time(
            self.inner.transform_time(kind, features, cluster),
            cluster,
            self.policy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticalCostModel;

    fn feat() -> CostFeatures {
        CostFeatures {
            cpu_flops: 3.2e12, // 100 s at the SimSQL rate
            ..CostFeatures::zero()
        }
    }

    #[test]
    fn reliable_cluster_is_a_no_op() {
        let inner = AnalyticalCostModel;
        let c = Cluster::simsql_like(10);
        for policy in [
            RecoveryPolicy::Restart,
            RecoveryPolicy::Checkpoint,
            RecoveryPolicy::Lineage,
        ] {
            let m = FaultAwareCostModel::new(&inner, policy);
            assert_eq!(
                m.impl_time(OpKind::MatMul, &feat(), &c),
                inner.impl_time(OpKind::MatMul, &feat(), &c),
            );
        }
    }

    #[test]
    fn expected_time_grows_with_fault_rates_and_policy_pessimism() {
        let c = Cluster::simsql_like(10);
        let mild = c.with_fault_rates(0.05, 0.0, 1.0);
        let harsh = c.with_fault_rates(0.5, 0.2, 4.0);
        let t = 100.0;
        let lineage_mild = expected_vertex_time(t, &mild, RecoveryPolicy::Lineage);
        let lineage_harsh = expected_vertex_time(t, &harsh, RecoveryPolicy::Lineage);
        assert!(lineage_mild > t);
        assert!(lineage_harsh > lineage_mild);
        // Lineage recovers the cheapest, restart the dearest.
        let ckpt = expected_vertex_time(t, &harsh, RecoveryPolicy::Checkpoint);
        let restart = expected_vertex_time(t, &harsh, RecoveryPolicy::Restart);
        assert!(lineage_harsh < ckpt);
        assert!(ckpt < restart);
    }

    #[test]
    fn zero_and_nonfinite_times_pass_through() {
        let c = Cluster::simsql_like(10).with_fault_rates(1.0, 0.5, 8.0);
        assert_eq!(expected_vertex_time(0.0, &c, RecoveryPolicy::Lineage), 0.0);
        assert!(expected_vertex_time(f64::INFINITY, &c, RecoveryPolicy::Restart).is_infinite());
    }
}
