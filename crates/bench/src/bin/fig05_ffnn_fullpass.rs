//! Regenerates fig05 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig05(&Env::new()));
}
