//! Adaptive kernel autotuning report: tuned vs fixed blocking, and the
//! measured-throughput cost model against the single-rate one.
//!
//! ```sh
//! cargo run --release -p matopt-bench --bin bench_pr8            # table
//! cargo run --release -p matopt-bench --bin bench_pr8 -- --json  # + BENCH_PR8.json
//! ```
//!
//! Phase 1 (sweep): run the standard tuning pass
//! ([`tune_standard`]), then re-measure every standard dense shape
//! head-to-head — the fixed default blocking (MR=6/NR=8/KC=256/MC=96)
//! against the catalog's tuned pick — asserting the outputs are
//! **bit-identical** (the ascending-k accumulation invariant) and
//! recording the measured speedup per shape class.
//!
//! Phase 2 (prediction): calibrate a cluster profile to the measured
//! peak rate and compare per-shape relative prediction error of the
//! single-rate analytical model against [`TunedCostModel`], whose
//! MatMul rate follows the measured per-shape-class throughput curve.
//! The curve model must not be worse on average: small products run
//! far below peak, and only the curve knows that.
//!
//! Phase 3 (plan change + bit exactness): plan the paper-scale SimSQL
//! FFNN weight update (`ffnn:80`) under the analytical model, then
//! [`PlanService::apply_tuning`] a contrast catalog whose curve
//! collapses at sub-peak per-worker flop counts and re-plan: the
//! optimizer must pick a different annotation and the re-plan must be
//! a cache **miss** (the epoch bump at work). Separately, execute the
//! laptop-scale weight update under untuned, measured, and contrast
//! dispatch configurations and demand bit-exact agreement — the
//! dispatch layer may change *which* bit-identical kernel runs, never
//! what it computes.
//!
//! `MATOPT_BENCH_QUICK=1` shrinks probe shapes and skips the
//! timing-sensitive assertions (speedup and error-reduction margins)
//! so CI smoke runs stay fast and deterministic; the full run asserts
//! everything and is what `BENCH_PR8.json` in the repo records.

use matopt_bench::Json;
use matopt_core::{Cluster, CostFeatures, FormatCatalog, ImplRegistry, NodeId, NodeKind, OpKind};
use matopt_cost::{plan_cost, AnalyticalCostModel, CostModel, ThroughputCurve, TunedCostModel};
use matopt_engine::{execute_plan_with, DistRelation, ExecOptions};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::tune::{standard_dense_shapes, tune_standard, KernelChoice, TuningEntry};
use matopt_kernels::{
    random_dense_normal, seeded_rng, DenseMatrix, GemmBlocking, KernelConfig, ShapeClass,
    TuneOptions, TuningCatalog,
};
use matopt_serve::{PlanService, PlanSource, ServeConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One head-to-head row of the phase-1 sweep.
struct SweepRow {
    class: ShapeClass,
    m: usize,
    k: usize,
    n: usize,
    fixed_secs: f64,
    tuned_secs: f64,
    tuned_label: String,
    tuned_is_default: bool,
}

impl SweepRow {
    fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.k as f64 * self.n as f64
    }
    fn speedup(&self) -> f64 {
        self.fixed_secs / self.tuned_secs
    }
    fn fixed_gflops(&self) -> f64 {
        self.flops() / self.fixed_secs / 1e9
    }
    fn tuned_gflops(&self) -> f64 {
        self.flops() / self.tuned_secs / 1e9
    }
}

fn bit_identical(a: &DenseMatrix, b: &DenseMatrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && (0..a.rows())
            .all(|i| (0..a.cols()).all(|j| a.get(i, j).to_bits() == b.get(i, j).to_bits()))
}

/// Paired best-of-`reps` wall times of two closures, timed back to
/// back within each round so machine drift hits both equally; also
/// returns their (warm-up) outputs. The minimum is the right
/// estimator: scheduler noise only adds time.
fn best_of_pair<F, G>(reps: usize, mut f: F, mut g: G) -> (f64, f64, DenseMatrix, DenseMatrix)
where
    F: FnMut() -> DenseMatrix,
    G: FnMut() -> DenseMatrix,
{
    let (f_out, g_out) = (f(), g()); // warm: page faults, instruction cache
    let (mut f_best, mut g_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        f_best = f_best.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        std::hint::black_box(g());
        g_best = g_best.min(t.elapsed().as_secs_f64());
    }
    (f_best, g_best, f_out, g_out)
}

/// Phase 1: tune, then re-measure tuned-vs-fixed at every standard
/// dense shape, asserting bit identity.
fn run_sweep(catalog: &TuningCatalog, quick: bool) -> Vec<SweepRow> {
    let reps = if quick { 2 } else { 6 };
    let cap = if quick { 192 } else { 1024 };
    let mut rows = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (m, k, n) in standard_dense_shapes() {
        let (m, k, n) = (m.min(cap), k.min(cap), n.min(cap));
        // Capping can collapse distinct standard shapes onto one
        // another (quick mode); measure each resulting shape once.
        if !seen.insert((m, k, n)) {
            continue;
        }
        let mut rng = seeded_rng(0x5EED_8000 + (m * 31 + k * 7 + n) as u64);
        let a = random_dense_normal(m, k, &mut rng);
        let b = random_dense_normal(k, n, &mut rng);
        let tuned_blocking = catalog
            .dense_blocking(m, k, n)
            .unwrap_or(GemmBlocking::DEFAULT);

        let (fixed_secs, tuned_secs, fixed_out, tuned_out) = best_of_pair(
            reps,
            || a.matmul_packed_with(&b, GemmBlocking::DEFAULT),
            || a.matmul_packed_with(&b, tuned_blocking),
        );
        assert!(
            bit_identical(&fixed_out, &tuned_out),
            "tuned blocking {} must be bit-identical to the default at {m}x{k}x{n}",
            tuned_blocking.label()
        );
        rows.push(SweepRow {
            class: ShapeClass::dense(m, k, n),
            m,
            k,
            n,
            fixed_secs,
            tuned_secs,
            tuned_label: tuned_blocking.label(),
            tuned_is_default: tuned_blocking == GemmBlocking::DEFAULT,
        });
    }
    rows
}

/// Phase 2: per-shape relative prediction error of the single-rate
/// model vs the measured-curve model, on a cluster calibrated to the
/// measured peak rate (so the single-rate model gets the best possible
/// single rate — it still cannot bend).
fn prediction_errors(catalog: &TuningCatalog, rows: &[SweepRow]) -> (f64, f64) {
    let curve = ThroughputCurve::from_catalog(catalog);
    let mut cluster = Cluster::simsql_like(1);
    cluster.flops_per_sec = curve.peak_gflops() * 1e9;
    let tuned_model = TunedCostModel::from_catalog(catalog);

    let (mut flat_err, mut curve_err) = (0.0, 0.0);
    for row in rows {
        let f = CostFeatures {
            cpu_flops: row.flops(),
            ..CostFeatures::default()
        };
        let flat = AnalyticalCostModel.impl_time(OpKind::MatMul, &f, &cluster);
        let curved = tuned_model.impl_time(OpKind::MatMul, &f, &cluster);
        flat_err += (flat - row.tuned_secs).abs() / row.tuned_secs;
        curve_err += (curved - row.tuned_secs).abs() / row.tuned_secs;
    }
    (flat_err / rows.len() as f64, curve_err / rows.len() as f64)
}

/// A contrast catalog for the plan-change demo: the measured shape of
/// a throughput curve exaggerated to paper scale — per-worker GEMMs
/// below ~10¹⁰ flops run far below the nominal rate, so distribution
/// strategies that shard a big product into many small per-worker
/// pieces get costed honestly instead of optimistically. Every entry
/// dispatches the default blocking, so it changes *costs*, never
/// *results*.
fn contrast_catalog() -> TuningCatalog {
    let catalog = TuningCatalog::new();
    for (class, probe_flops, gflops) in [
        (ShapeClass::dense(256, 256, 256), 1e10, 0.05),
        (ShapeClass::dense(8192, 8192, 8192), 2e11, 32.0),
    ] {
        catalog.insert(
            class,
            TuningEntry {
                choice: KernelChoice::Dense(0),
                gflops,
                probe_flops,
                curve: vec![(0, gflops)],
            },
        );
    }
    catalog
}

struct PlanChange {
    changed: bool,
    replanned_was_miss: bool,
    cost_flat: f64,
    cost_curved: f64,
    flat_plan_under_curves: f64,
    strict_gap: f64,
}

/// Phase 3a: on the paper-scale SimSQL FFNN weight update, the
/// contrast curves must flip the optimizer's choice, and the re-plan
/// must be a cache miss (the epoch bump at work). The decisive check
/// is re-costing the flat-model plan under the curves: it must be
/// *strictly* worse than the plan the optimizer finds once it knows
/// the real rates (annotation inequality alone can be a tie-break
/// artifact between equal-cost plans). Plan-only — the paper-scale
/// graph holds tens of gigabytes of sources.
fn run_plan_change() -> PlanChange {
    let cluster = Cluster::simsql_like(10);
    let service = PlanService::new(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        cluster,
        Box::new(AnalyticalCostModel),
        ServeConfig::default(),
    );
    let graph = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(80))
        .expect("well-typed")
        .graph;
    let flat = service.plan(&graph).expect("plan under the flat model");
    let contrast = Arc::new(contrast_catalog());
    let curved_model = TunedCostModel::from_catalog(&contrast);
    service.apply_tuning(contrast);
    let curved = service.plan(&graph).expect("plan under the curves");

    let registry = ImplRegistry::paper_default();
    let ctx = matopt_core::PlanContext::new(&registry, cluster);
    let flat_under = plan_cost(&graph, &flat.plan.annotation, &ctx, &curved_model)
        .expect("flat plan re-costs under the curves");
    let curved_under = plan_cost(&graph, &curved.plan.annotation, &ctx, &curved_model)
        .expect("curved plan costs under the curves");
    PlanChange {
        changed: flat.plan.annotation != curved.plan.annotation,
        replanned_was_miss: curved.source == PlanSource::Miss,
        cost_flat: flat.plan.cost,
        cost_curved: curved.plan.cost,
        flat_plan_under_curves: flat_under,
        strict_gap: flat_under / curved_under - 1.0,
    }
}

/// Phase 3b: execute the laptop-scale FFNN weight update under three
/// dispatch configurations — untuned, the measured catalog, and the
/// contrast catalog — and demand every sink agree to the last bit.
/// The dispatch layer may change *which* bit-identical kernel runs,
/// never what it computes.
fn run_bit_exact_execution(measured: &Arc<TuningCatalog>) -> bool {
    let service = PlanService::new(
        ImplRegistry::paper_default(),
        FormatCatalog::paper_default().dense_only(),
        Cluster::simsql_like(4),
        Box::new(AnalyticalCostModel),
        ServeConfig::default(),
    );
    let graph = ffnn_w2_update_graph(FfnnConfig::laptop(32))
        .expect("well-typed")
        .graph;
    let mut rng = seeded_rng(0xBEEF);
    let mut inputs: HashMap<NodeId, DistRelation> = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    let planned = service.plan(&graph).expect("plan");
    let execute = |kcfg: KernelConfig| {
        execute_plan_with(
            &graph,
            &planned.plan.annotation,
            &inputs,
            service.registry(),
            service.obs(),
            ExecOptions {
                kernel_config: Some(Arc::new(kcfg)),
                ..ExecOptions::default()
            },
        )
        .expect("executes")
    };
    let reference = execute(KernelConfig::untuned());
    [
        execute(KernelConfig::with_catalog(Arc::clone(measured))),
        execute(KernelConfig::with_catalog(Arc::new(contrast_catalog()))),
    ]
    .iter()
    .all(|outcome| {
        reference
            .sinks
            .iter()
            .all(|(id, rel)| bit_identical(&rel.to_dense(), &outcome.sinks[id].to_dense()))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.first().map(String::as_str) {
        Some("--json") => Some(
            args.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_PR8.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: bench_pr8 [--json [PATH]]");
            std::process::exit(2);
        }
        None => None,
    };
    let quick = std::env::var("MATOPT_BENCH_QUICK").is_ok();
    let opts = if quick {
        TuneOptions::quick()
    } else {
        TuneOptions::thorough()
    };

    println!("== Autotune: standard shape classes ==");
    let catalog = Arc::new(TuningCatalog::new());
    let t = Instant::now();
    let tuned = tune_standard(&catalog, opts);
    println!(
        "  tuned {} classes in {:.2}s ({} dense candidates, 2 CSR traversals per class)",
        tuned.len(),
        t.elapsed().as_secs_f64(),
        GemmBlocking::CANDIDATES.len()
    );

    println!(
        "== Tuned vs fixed blocking (fixed = {}) ==",
        GemmBlocking::DEFAULT.label()
    );
    let rows = run_sweep(&catalog, quick);
    let mut faster = 0usize;
    for row in &rows {
        let marker = if row.tuned_is_default {
            "  (picked default)"
        } else if row.speedup() > 1.0 {
            faster += 1;
            ""
        } else {
            "  (no repro this run)"
        };
        println!(
            "  {:<14} {:>4}x{:<4}x{:<4}  fixed {:6.2} GF/s  tuned[{}] {:6.2} GF/s  x{:.3}{marker}",
            row.class.label(),
            row.m,
            row.k,
            row.n,
            row.fixed_gflops(),
            row.tuned_label,
            row.tuned_gflops(),
            row.speedup(),
        );
    }
    println!("  {faster} classes measurably faster than the fixed blocking; all bit-identical");
    if !quick {
        assert!(
            faster >= 1,
            "at least one shape class must beat the fixed default blocking"
        );
    }

    println!("== Prediction error: single rate vs measured curve ==");
    let (flat_err, curve_err) = prediction_errors(&catalog, &rows);
    println!(
        "  mean relative error  single-rate {:.1}%  measured-curve {:.1}%  ({}x reduction)",
        flat_err * 100.0,
        curve_err * 100.0,
        if curve_err > 0.0 {
            flat_err / curve_err
        } else {
            f64::INFINITY
        }
    );
    if !quick {
        assert!(
            curve_err < flat_err,
            "the measured curve must predict the benched shapes better than one rate"
        );
    }

    println!("== Plan change under tuned curves (SimSQL FFNN ffnn:80, plan-only) ==");
    let change = run_plan_change();
    println!(
        "  plan changed: {}; re-plan was a cache {}; cost {:.1}s -> {:.1}s",
        change.changed,
        if change.replanned_was_miss {
            "miss"
        } else {
            "hit"
        },
        change.cost_flat,
        change.cost_curved,
    );
    println!(
        "  flat-model plan re-costed under the curves: {:.1}s vs curved plan {:.1}s (gap {:+.1}%)",
        change.flat_plan_under_curves,
        change.flat_plan_under_curves / (1.0 + change.strict_gap),
        change.strict_gap * 100.0,
    );
    assert!(
        change.changed,
        "the contrast curves must change the chosen plan"
    );
    assert!(
        change.strict_gap > 0.01,
        "the flat-model plan must be strictly suboptimal under the curves (gap {:+.2}%)",
        change.strict_gap * 100.0
    );
    assert!(
        change.replanned_was_miss,
        "apply_tuning must invalidate cached plans"
    );

    println!("== End-to-end dispatch bit-exactness (laptop FFNN weight update) ==");
    let bit_exact = run_bit_exact_execution(&catalog);
    println!("  untuned vs measured-catalog vs contrast-catalog dispatch: bit-exact = {bit_exact}");
    assert!(bit_exact, "tuned dispatch must not change a single bit");

    if let Some(path) = json_path {
        let report = Json::obj([
            ("pr", Json::Int(8)),
            (
                "mode",
                Json::Str(if quick { "quick" } else { "full" }.into()),
            ),
            ("fixed_blocking", Json::Str(GemmBlocking::DEFAULT.label())),
            (
                "sweep",
                Json::Arr(
                    rows.iter()
                        .map(|row| {
                            Json::obj([
                                ("class", Json::Str(row.class.label())),
                                (
                                    "shape",
                                    Json::Arr(vec![
                                        Json::Int(row.m as i64),
                                        Json::Int(row.k as i64),
                                        Json::Int(row.n as i64),
                                    ]),
                                ),
                                ("fixed_gflops", Json::Num(row.fixed_gflops())),
                                ("tuned_blocking", Json::Str(row.tuned_label.clone())),
                                ("tuned_gflops", Json::Num(row.tuned_gflops())),
                                ("speedup", Json::Num(row.speedup())),
                                ("bit_identical", Json::Bool(true)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("classes_tuned_faster", Json::Int(faster as i64)),
            (
                "prediction",
                Json::obj([
                    ("single_rate_mean_rel_err", Json::Num(flat_err)),
                    ("measured_curve_mean_rel_err", Json::Num(curve_err)),
                    (
                        "error_reduction",
                        Json::Num(if curve_err > 0.0 {
                            flat_err / curve_err
                        } else {
                            f64::INFINITY
                        }),
                    ),
                ]),
            ),
            (
                "plan_change",
                Json::obj([
                    ("workload", Json::str("ffnn:80 (plan-only)")),
                    ("changed", Json::Bool(change.changed)),
                    ("replanned_was_miss", Json::Bool(change.replanned_was_miss)),
                    ("cost_flat_model", Json::Num(change.cost_flat)),
                    ("cost_curved_model", Json::Num(change.cost_curved)),
                    (
                        "flat_plan_under_curves",
                        Json::Num(change.flat_plan_under_curves),
                    ),
                    ("strict_gap", Json::Num(change.strict_gap)),
                ]),
            ),
            (
                "execution",
                Json::obj([
                    ("workload", Json::str("ffnn-laptop:32")),
                    ("dispatch_bit_exact", Json::Bool(bit_exact)),
                ]),
            ),
        ]);
        std::fs::write(&path, report.pretty())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
