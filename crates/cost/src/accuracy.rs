//! Cost-model accuracy: predicted-vs-observed residuals.
//!
//! The paper validates its learned cost model by checking that
//! predicted runtimes track measured ones (§7–8). [`sample_residuals`]
//! replays a set of [`CostSample`]s through any [`CostModel`] and
//! reports the per-sample error, which the calibration harness exports
//! as structured `fit_residual` events.

use crate::model::{CostKey, CostModel, CostSample};
use matopt_core::Cluster;

/// One predicted-vs-observed pair.
#[derive(Debug, Clone, Copy)]
pub struct Residual {
    /// What was measured.
    pub key: CostKey,
    /// Model prediction (seconds).
    pub predicted: f64,
    /// Measured wall-clock seconds.
    pub observed: f64,
}

impl Residual {
    /// `predicted - observed` in seconds.
    pub fn error(&self) -> f64 {
        self.predicted - self.observed
    }

    /// Relative error `|predicted - observed| / observed`, with the
    /// denominator clamped away from zero so instant measurements do
    /// not blow up the statistic.
    pub fn rel_error(&self) -> f64 {
        self.error().abs() / self.observed.max(1e-9)
    }
}

/// Replays every sample through `model` and pairs the prediction with
/// the measurement.
pub fn sample_residuals(
    model: &dyn CostModel,
    samples: &[CostSample],
    cluster: &Cluster,
) -> Vec<Residual> {
    samples
        .iter()
        .map(|s| {
            let predicted = match s.key {
                CostKey::Op(op) => model.impl_time(op, &s.features, cluster),
                CostKey::Transform(t) => model.transform_time(t, &s.features, cluster),
            };
            Residual {
                key: s.key,
                predicted,
                observed: s.seconds,
            }
        })
        .collect()
}

/// Mean relative error over a residual set (0 when empty).
pub fn mean_rel_error(residuals: &[Residual]) -> f64 {
    if residuals.is_empty() {
        return 0.0;
    }
    residuals.iter().map(Residual::rel_error).sum::<f64>() / residuals.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LearnedCostModel;
    use matopt_core::{CostFeatures, OpKind};

    fn feat(flops: f64) -> CostFeatures {
        CostFeatures {
            cpu_flops: flops,
            local_flops: 0.0,
            net_bytes: 0.0,
            inter_bytes: 0.0,
            tuples: 0.0,
            ops: 1.0,
        }
    }

    #[test]
    fn fitted_model_has_small_residuals_on_its_own_samples() {
        let samples: Vec<CostSample> = (1..20)
            .map(|i| CostSample {
                key: CostKey::Op(OpKind::MatMul),
                features: feat(i as f64 * 1e9),
                seconds: i as f64 * 0.1,
            })
            .collect();
        let model = LearnedCostModel::fit(&samples);
        let cluster = Cluster::unit_test(1);
        let res = sample_residuals(&model, &samples, &cluster);
        assert_eq!(res.len(), samples.len());
        assert!(
            mean_rel_error(&res) < 0.05,
            "in-sample fit should be tight, got {}",
            mean_rel_error(&res)
        );
        for r in &res {
            assert!(r.predicted.is_finite() && r.observed > 0.0);
        }
    }

    #[test]
    fn rel_error_survives_zero_observations() {
        let r = Residual {
            key: CostKey::Op(OpKind::Add),
            predicted: 1.0,
            observed: 0.0,
        };
        assert!(r.rel_error().is_finite());
    }
}
