//! # matopt-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§8) — see `figures` for the per-figure functions
//! and `src/bin/` for the runnable generators. `EXPERIMENTS.md` at the
//! workspace root records paper-vs-measured values for each.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod harness;
pub mod json;

pub use harness::{cell, format_opt, hms, AutoPlan, Env, FigTable, DEFAULT_BEAM};
pub use json::Json;
