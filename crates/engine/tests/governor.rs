//! Resource-governor integration harness: memory budgets with
//! spill-to-disk backpressure and hedged straggler re-execution must
//! never change the numbers.
//!
//! Three properties are pinned here:
//!
//! 1. **Budget matrix** — a workload that peaks at `R` resident bytes
//!    when unbounded completes bit-identically under budgets of
//!    `0.75·R` and `0.5·R`, and the tight budget provably engages the
//!    spill path (`spills > 0`, `reloads > 0`).
//! 2. **Deadlock guard** — a budget too small for even a single
//!    minimal vertex fails fast with a structured
//!    [`ExecError::MemBudgetInfeasible`] naming the vertex, its need
//!    and the budget, instead of hanging or panicking.
//! 3. **Hedging** — with a seeded straggler schedule (one vertex
//!    delayed far past its prediction), a hedged run launches a
//!    duplicate, the duplicate wins, wall-clock beats the un-hedged
//!    run, and the sinks stay bit-identical (kernels are
//!    bit-deterministic, so first-completion-wins is safe).

use matopt_core::{Cluster, FormatCatalog, ImplRegistry, NodeKind, PlanContext};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan_with, DistRelation, ExecError, ExecOptions, HedgeConfig};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_obs::Obs;
use matopt_opt::{frontier_dp_beam, OptContext};
use matopt_pool::Pool;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    graph: matopt_core::ComputeGraph,
    annotation: matopt_core::Annotation,
    inputs: HashMap<matopt_core::NodeId, DistRelation>,
    registry: ImplRegistry,
}

fn ffnn_workload(hidden: u64) -> Workload {
    let registry = ImplRegistry::paper_default();
    let graph = ffnn_w2_update_graph(FfnnConfig::laptop(hidden))
        .expect("well-typed")
        .graph;
    let catalog = FormatCatalog::paper_default().dense_only();
    let ctx = PlanContext::new(&registry, Cluster::simsql_like(4));
    let model = AnalyticalCostModel;
    let annotation = frontier_dp_beam(&graph, &OptContext::new(&ctx, &catalog, &model), 400)
        .expect("optimizable")
        .annotation;
    let mut rng = seeded_rng(0x9A5);
    let mut inputs = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(id, DistRelation::from_dense(&d, *format).unwrap());
        }
    }
    Workload {
        graph,
        annotation,
        inputs,
        registry,
    }
}

fn run(w: &Workload, options: ExecOptions) -> matopt_engine::ExecOutcome {
    execute_plan_with(
        &w.graph,
        &w.annotation,
        &w.inputs,
        &w.registry,
        &Obs::disabled(),
        options,
    )
    .expect("run succeeds")
}

#[test]
fn budget_matrix_is_bit_exact_and_tight_budget_spills() {
    let w = ffnn_workload(24);
    let unbounded = run(&w, ExecOptions::default());
    let peak = unbounded.peak_resident_bytes;
    assert!(peak > 0, "unbounded run must report a resident peak");
    assert_eq!(unbounded.governor.spills, 0);

    for (tag, frac) in [("75%", 0.75f64), ("50%", 0.5)] {
        let budget = (peak as f64 * frac) as u64;
        let governed = run(
            &w,
            ExecOptions {
                mem_budget: Some(budget),
                ..Default::default()
            },
        );
        // Bit-exact sinks *and* retained intermediate values: spilled
        // buffers were rehydrated from scratch, checksum-verified.
        for (sink, rel) in &unbounded.sinks {
            assert_eq!(
                governed.sinks[sink].to_dense().data(),
                rel.to_dense().data(),
                "{tag}: sink {sink} differs under budget {budget}"
            );
        }
        assert_eq!(
            governed.values.len(),
            unbounded.values.len(),
            "{tag}: retained value sets differ"
        );
        for (v, rel) in &unbounded.values {
            assert_eq!(
                governed.values[v].to_dense().data(),
                rel.to_dense().data(),
                "{tag}: retained value {v} differs under budget {budget}"
            );
        }
        if frac == 0.5 {
            assert!(
                governed.governor.spills > 0,
                "50% budget ({budget} of {peak} peak) never spilled"
            );
            assert!(
                governed.governor.reloads > 0,
                "50% budget spilled but never reloaded"
            );
            assert!(governed.governor.spilled_bytes > 0);
        }
    }
}

#[test]
fn infeasible_budget_surfaces_vertex_need_and_budget() {
    let w = ffnn_workload(16);
    let err = execute_plan_with(
        &w.graph,
        &w.annotation,
        &w.inputs,
        &w.registry,
        &Obs::disabled(),
        ExecOptions {
            mem_budget: Some(64),
            ..Default::default()
        },
    )
    .expect_err("64 bytes cannot hold any vertex");
    match err {
        ExecError::MemBudgetInfeasible {
            vertex,
            need,
            budget,
            ..
        } => {
            assert_eq!(budget, 64);
            assert!(
                need > budget,
                "infeasible error must report need ({need}) above budget ({budget})"
            );
            assert!(
                w.graph.iter().any(|(id, _)| id == vertex),
                "reported vertex {vertex} is not in the graph"
            );
        }
        other => panic!("expected MemBudgetInfeasible, got {other}"),
    }
}

#[test]
fn hedged_run_beats_unhedged_straggler_and_stays_bit_exact() {
    if Pool::global().parallelism() < 2 {
        // A duplicate can never overtake the primary on one thread.
        return;
    }
    let w = ffnn_workload(16);
    let clean = run(&w, ExecOptions::default());

    // Delay one mid-graph compute vertex by 400ms (primary attempt
    // only — the injection hook models a straggling worker).
    let straggler = w
        .graph
        .iter()
        .find(|(_, n)| matches!(n.kind, NodeKind::Compute { .. }))
        .map(|(id, _)| id)
        .expect("graph has compute vertices");
    let mut delays = vec![0u64; w.graph.len()];
    delays[straggler.index()] = 400;
    let delays = Arc::new(delays);

    let t0 = Instant::now();
    let unhedged = run(
        &w,
        ExecOptions {
            straggler_delays_ms: Some(Arc::clone(&delays)),
            ..Default::default()
        },
    );
    let unhedged_secs = t0.elapsed().as_secs_f64();
    assert_eq!(unhedged.governor.hedges_launched, 0);

    let hedge = HedgeConfig {
        factor: 5.0,
        predicted_seconds: Some(Arc::new(vec![0.005; w.graph.len()])),
        min_deadline_ms: 1,
    };
    let t1 = Instant::now();
    let hedged = run(
        &w,
        ExecOptions {
            straggler_delays_ms: Some(Arc::clone(&delays)),
            hedge: Some(hedge),
            ..Default::default()
        },
    );
    let hedged_secs = t1.elapsed().as_secs_f64();

    assert!(
        hedged.governor.hedges_launched >= 1,
        "straggler never triggered a hedge"
    );
    assert!(
        hedged.governor.hedges_won >= 1,
        "hedged duplicate never won against a 400ms straggler"
    );
    assert!(
        hedged_secs < 0.75 * unhedged_secs,
        "hedging did not beat the straggler: hedged {hedged_secs:.3}s vs unhedged {unhedged_secs:.3}s"
    );
    for (sink, rel) in &clean.sinks {
        for (tag, out) in [("unhedged", &unhedged), ("hedged", &hedged)] {
            assert_eq!(
                out.sinks[sink].to_dense().data(),
                rel.to_dense().data(),
                "{tag}: sink {sink} differs from the clean run"
            );
        }
    }
}

/// Budgets compose with streaming retirement: with `retain_values:
/// false` *and* a budget, sinks still match and the governor only
/// spills what retirement hasn't already freed.
#[test]
fn budget_composes_with_streaming_retirement() {
    let w = ffnn_workload(24);
    let unbounded = run(&w, ExecOptions::default());
    let budget = (unbounded.peak_resident_bytes as f64 * 0.5) as u64;
    let governed = run(
        &w,
        ExecOptions {
            retain_values: false,
            mem_budget: Some(budget),
            ..Default::default()
        },
    );
    assert_eq!(governed.values.len(), governed.sinks.len());
    for (sink, rel) in &unbounded.sinks {
        assert_eq!(
            governed.sinks[sink].to_dense().data(),
            rel.to_dense().data(),
            "sink {sink} differs under streaming + budget"
        );
    }
}
