//! Adaptive re-optimization — the future-work proposal of §7,
//! implemented: "During execution of the plan, it is easy to compute
//! the sparsity of each intermediate result. If the relative error in
//! estimated sparsity exceeds some value (say 1.2), then execution can
//! be halted, and the remaining plan re-optimized. This is analogous to
//! re-optimization methods used in relational databases to deal with
//! the problem of compounding estimation errors."
//!
//! [`execute_adaptive`] runs an optimized plan vertex by vertex,
//! measuring the true sparsity of every intermediate. When the measured
//! value diverges from the estimate by more than the configured
//! relative error (in Sommer et al.'s ratio sense, where 1.0 is
//! perfect), the remaining computation is re-planned: everything already
//! computed becomes a source with its *measured* type and its current
//! physical format, downstream types are re-inferred from the corrected
//! statistics, and the optimizer runs again on the suffix.

use crate::impl_exec::{execute_impl, ExecError};
use crate::value::{Block, DistRelation};
use matopt_core::{
    Annotation, ComputeGraph, FormatCatalog, MatrixType, NodeId, NodeKind, PlanContext,
    TransformKind,
};
use matopt_cost::CostModel;
use matopt_opt::{frontier_dp_beam, OptContext, OptError};
use std::borrow::Borrow;
use std::collections::HashMap;

/// Configuration of the adaptive executor.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Re-optimize when `max(est, meas) / min(est, meas)` exceeds this
    /// (the paper suggests 1.2; 1.0 would re-optimize on any error).
    pub relative_error_threshold: f64,
    /// Beam width for the re-optimization runs.
    pub beam: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            relative_error_threshold: 1.2,
            beam: 2000,
        }
    }
}

/// What the adaptive executor did.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// Values at the original graph's sinks.
    pub sinks: HashMap<NodeId, DistRelation>,
    /// How many times the remaining plan was re-optimized.
    pub reoptimizations: usize,
    /// The vertices whose sparsity misestimates triggered each
    /// re-optimization.
    pub triggered_at: Vec<NodeId>,
    /// The *measured* density of every vertex, indexed by vertex id
    /// (sources report their provided relation's density). Callers that
    /// run the same graph repeatedly — the training loop — feed these
    /// back via [`matopt_core::ComputeGraph::with_measured_sparsities`]
    /// so the next optimization plans against observed statistics.
    pub measured: Vec<f64>,
}

/// Errors from adaptive execution.
#[derive(Debug)]
pub enum AdaptiveError {
    /// The executor failed.
    Exec(ExecError),
    /// A re-optimization found no feasible plan.
    Opt(OptError),
}

impl std::fmt::Display for AdaptiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveError::Exec(e) => write!(f, "execution error: {e}"),
            AdaptiveError::Opt(e) => write!(f, "re-optimization error: {e}"),
        }
    }
}

impl std::error::Error for AdaptiveError {}

impl DistRelation {
    /// The observed fraction of non-zero entries across all chunks.
    pub fn measured_sparsity(&self) -> f64 {
        let total = self.mtype.entries();
        if total == 0.0 {
            return 0.0;
        }
        let nnz: f64 = self
            .chunks
            .iter()
            .map(|c| match &c.block {
                Block::Dense(d) => d.data().iter().filter(|v| **v != 0.0).count() as f64,
                Block::Csr(s) => s.nnz() as f64,
                Block::Coo(c) => c.nnz() as f64,
            })
            .sum();
        (nnz / total).clamp(0.0, 1.0)
    }
}

/// Sommer-style relative error between an estimated and a measured
/// density (1.0 = perfect).
fn relative_error(est: f64, meas: f64) -> f64 {
    let eps = 1e-12;
    let (a, b) = (est.max(eps), meas.max(eps));
    (a / b).max(b / a)
}

/// Executes `graph` with mid-flight re-optimization on sparsity
/// misestimates.
///
/// The initial plan is produced internally with the same optimizer the
/// re-planning uses, so callers provide only the inputs and the
/// optimization context.
///
/// # Errors
/// [`AdaptiveError`] when execution fails or a re-optimization finds no
/// plan.
pub fn execute_adaptive(
    graph: &ComputeGraph,
    inputs: &HashMap<NodeId, DistRelation>,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    model: &dyn CostModel,
    config: AdaptiveConfig,
) -> Result<AdaptiveOutcome, AdaptiveError> {
    execute_adaptive_with_hook(graph, inputs, ctx, catalog, model, config, None)
}

/// A callback invoked each time the adaptive executor halts and
/// re-plans, with the vertex whose sparsity misestimate triggered it.
///
/// Plan caches hook this to poison the stale cache entry: a re-planned
/// suffix is proof that the cached annotation's statistics were wrong
/// for this workload.
pub type ReplanHook<'h> = &'h (dyn Fn(NodeId) + 'h);

/// [`execute_adaptive`] with a re-plan callback.
///
/// # Errors
/// [`AdaptiveError`] when execution fails or a re-optimization finds no
/// plan.
pub fn execute_adaptive_with_hook(
    graph: &ComputeGraph,
    inputs: &HashMap<NodeId, DistRelation>,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    model: &dyn CostModel,
    config: AdaptiveConfig,
    on_replan: Option<ReplanHook<'_>>,
) -> Result<AdaptiveOutcome, AdaptiveError> {
    let octx = OptContext::new(ctx, catalog, model);
    let plan: Annotation = frontier_dp_beam(graph, &octx, config.beam)
        .map_err(AdaptiveError::Opt)?
        .annotation;
    execute_adaptive_planned(graph, inputs, ctx, catalog, model, config, plan, on_replan)
}

/// [`execute_adaptive_with_hook`] starting from a *caller-supplied*
/// initial annotation instead of running the optimizer first.
///
/// This is the entry point for plan reuse across repeated executions of
/// the same graph (the training loop's epoch cache): the first epoch
/// pays for a full optimization, later epochs hand the cached
/// annotation straight to the executor. Mid-flight re-optimization on
/// sparsity drift still works exactly as in [`execute_adaptive`] — a
/// drifted epoch re-plans its suffix and reports it, which is the
/// caller's signal to invalidate the cached plan.
///
/// # Errors
/// [`AdaptiveError`] when execution fails or a re-optimization finds no
/// plan.
#[allow(clippy::too_many_arguments)]
pub fn execute_adaptive_planned(
    graph: &ComputeGraph,
    inputs: &HashMap<NodeId, DistRelation>,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    model: &dyn CostModel,
    config: AdaptiveConfig,
    initial_plan: Annotation,
    on_replan: Option<ReplanHook<'_>>,
) -> Result<AdaptiveOutcome, AdaptiveError> {
    let mut plan = initial_plan;
    // `cur_graph` mirrors the original but with corrected statistics
    // after each re-optimization; `idmap[v]` locates the original
    // vertex v in it.
    let mut cur_graph = graph.clone();
    let mut idmap: Vec<NodeId> = graph.iter().map(|(id, _)| id).collect();

    let mut values: Vec<Option<DistRelation>> = vec![None; graph.len()];
    let mut measured_density: Vec<f64> = vec![0.0; graph.len()];
    let mut reoptimizations = 0usize;
    let mut triggered_at = Vec::new();
    let order: Vec<NodeId> = graph.iter().map(|(id, _)| id).collect();
    let consumers = graph.consumers();

    for (pos, &v) in order.iter().enumerate() {
        let node = graph.node(v);
        match &node.kind {
            NodeKind::Source { format } => {
                let rel = inputs
                    .get(&v)
                    .ok_or_else(|| AdaptiveError::Exec(crate::exec::missing_input(graph, v)))?
                    .reformat(*format)
                    .map_err(|e| AdaptiveError::Exec(ExecError::Internal(e.to_string())))?;
                measured_density[v.index()] = rel.measured_sparsity();
                values[v.index()] = Some(rel);
            }
            NodeKind::Compute { op } => {
                let cur_id = idmap[v.index()];
                let choice = plan
                    .choice(cur_id)
                    .ok_or_else(|| AdaptiveError::Exec(crate::exec::missing_choice(graph, v)))?
                    .clone();
                // Transform inputs per the plan.
                let mut transformed = Vec::with_capacity(node.inputs.len());
                for (input, t) in node.inputs.iter().zip(choice.input_transforms.iter()) {
                    let src = values[input.index()].as_ref().expect("topological order");
                    let moved = if t.kind == TransformKind::Identity {
                        src.clone()
                    } else {
                        src.reformat(t.to)
                            .map_err(|e| AdaptiveError::Exec(ExecError::Internal(e.to_string())))?
                    };
                    transformed.push(moved);
                }
                let refs: Vec<&DistRelation> = transformed.iter().collect();
                let strategy = ctx.registry.get(choice.impl_id).strategy;
                let cur_type = cur_graph.node(cur_id).mtype;
                let out = execute_impl(strategy, op, &refs, cur_type, choice.output_format)
                    .map_err(|e| {
                        AdaptiveError::Exec(e.at_vertex(v, &crate::exec::vertex_label(graph, v)))
                    })?;

                // Measure and compare.
                let est = cur_type.sparsity;
                let meas = out.measured_sparsity();
                measured_density[v.index()] = meas;
                values[v.index()] = Some(out);

                let remaining = order[pos + 1..]
                    .iter()
                    .any(|u| matches!(graph.node(*u).kind, NodeKind::Compute { .. }));
                if remaining && relative_error(est, meas) > config.relative_error_threshold {
                    // Halt and re-plan the suffix with corrected stats.
                    triggered_at.push(v);
                    reoptimizations += 1;
                    if let Some(hook) = on_replan {
                        hook(v);
                    }
                    let (g2, map2) = rebuild_suffix(graph, &order[..=pos], &values, &consumers);
                    let plan2 =
                        frontier_dp_beam(&g2, &OptContext::new(ctx, catalog, model), config.beam)
                            .map_err(AdaptiveError::Opt)?
                            .annotation;
                    cur_graph = g2;
                    idmap = map2;
                    plan = plan2;
                }
            }
        }
    }

    let mut sinks = HashMap::new();
    for sink in graph.sinks() {
        sinks.insert(sink, values[sink.index()].take().expect("computed"));
    }
    Ok(AdaptiveOutcome {
        sinks,
        reoptimizations,
        triggered_at,
        measured: measured_density,
    })
}

/// Builds the suffix graph: every already-computed vertex that still
/// has un-executed consumers becomes a source carrying its *measured*
/// type and current physical format; un-executed compute vertices are
/// re-added with types re-inferred from the corrected statistics.
///
/// Returns the new graph plus a map from original vertex ids to ids in
/// the new graph (identity-sized; entries for fully-consumed prefixes
/// keep their last known id but are never consulted again).
///
/// Generic over how values are held so the adaptive executor (owned
/// relations) and the fault-tolerant executor (`Arc`-shared relations)
/// can both call it.
pub(crate) fn rebuild_suffix<T: Borrow<DistRelation>>(
    graph: &ComputeGraph,
    executed: &[NodeId],
    values: &[Option<T>],
    consumers: &[Vec<NodeId>],
) -> (ComputeGraph, Vec<NodeId>) {
    let executed_set: Vec<bool> = {
        let mut s = vec![false; graph.len()];
        for v in executed {
            s[v.index()] = true;
        }
        s
    };
    let mut g2 = ComputeGraph::new();
    let mut map: Vec<NodeId> = graph.iter().map(|(id, _)| id).collect();
    for (id, node) in graph.iter() {
        if executed_set[id.index()] {
            // Only needed as a source if some un-executed vertex reads it.
            let needed = consumers[id.index()]
                .iter()
                .any(|c| !executed_set[c.index()]);
            if needed {
                let rel = values[id.index()].as_ref().expect("executed").borrow();
                let measured = MatrixType {
                    rows: rel.mtype.rows,
                    cols: rel.mtype.cols,
                    sparsity: rel.measured_sparsity().max(f64::MIN_POSITIVE),
                };
                map[id.index()] = g2.add_source_named(measured, rel.format, node.name.as_deref());
            }
        } else {
            match &node.kind {
                // Not-yet-visited sources keep their declared type and
                // format.
                NodeKind::Source { format } => {
                    map[id.index()] =
                        g2.add_source_named(node.mtype, *format, node.name.as_deref());
                }
                NodeKind::Compute { op } => {
                    let remapped: Vec<NodeId> =
                        node.inputs.iter().map(|i| map[i.index()]).collect();
                    map[id.index()] = g2
                        .add_op_named(*op, &remapped, node.name.as_deref())
                        .expect("re-typing a valid graph succeeds");
                }
            }
        }
    }
    (g2, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_core::{Cluster, ImplRegistry, Op, PhysFormat};
    use matopt_cost::AnalyticalCostModel;
    use matopt_kernels::{random_dense_normal, seeded_rng};

    fn catalog() -> FormatCatalog {
        FormatCatalog::new(vec![
            PhysFormat::SingleTuple,
            PhysFormat::Tile { side: 8 },
            PhysFormat::RowStrip { height: 8 },
            PhysFormat::CsrTile { side: 8 },
            PhysFormat::CsrSingle,
        ])
    }

    /// Hadamard of two *identically patterned* sparse matrices: the
    /// independence estimate (d²) is badly wrong (true density d), so
    /// the adaptive executor must re-optimize — and still produce the
    /// right numbers.
    #[test]
    fn correlated_sparsity_triggers_reoptimization() {
        let reg = ImplRegistry::paper_default();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(4));
        let model = AnalyticalCostModel;

        let mut g = ComputeGraph::new();
        let d = 0.05;
        let x = g.add_source(
            MatrixType::sparse(32, 32, d),
            PhysFormat::CsrTile { side: 8 },
        );
        let y = g.add_source(
            MatrixType::sparse(32, 32, d),
            PhysFormat::CsrTile { side: 8 },
        );
        let h = g.add_op(Op::Hadamard, &[x, y]).unwrap();
        let w = g.add_source(MatrixType::dense(32, 16), PhysFormat::Tile { side: 8 });
        let prod = g.add_op(Op::MatMul, &[h, w]).unwrap();
        let _out = g.add_op(Op::Relu, &[prod]).unwrap();

        // Identical pattern for x and y.
        let mut rng = seeded_rng(17);
        let base = random_dense_normal(32, 32, &mut rng).map(|v| if v > 1.6 { v } else { 0.0 });
        let wdat = random_dense_normal(32, 16, &mut rng);
        let mut inputs = HashMap::new();
        inputs.insert(
            x,
            DistRelation::from_dense(&base, PhysFormat::CsrTile { side: 8 }).unwrap(),
        );
        inputs.insert(
            y,
            DistRelation::from_dense(&base, PhysFormat::CsrTile { side: 8 }).unwrap(),
        );
        inputs.insert(
            w,
            DistRelation::from_dense(&wdat, PhysFormat::Tile { side: 8 }).unwrap(),
        );

        let out = execute_adaptive(
            &g,
            &inputs,
            &ctx,
            &catalog(),
            &model,
            AdaptiveConfig::default(),
        )
        .expect("adaptive run succeeds");
        assert!(
            out.reoptimizations >= 1,
            "the d^2-vs-d misestimate must trigger a re-plan"
        );
        assert!(out.triggered_at.contains(&h));

        // Numerically identical to the reference.
        let expect = base.hadamard(&base).matmul(&wdat).relu();
        let sink = *out.sinks.keys().next().unwrap();
        assert!(out.sinks[&sink].to_dense().approx_eq(&expect, 1e-9));
    }

    /// Accurate estimates never trigger a re-plan.
    #[test]
    fn accurate_estimates_run_straight_through() {
        let reg = ImplRegistry::paper_default();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(4));
        let model = AnalyticalCostModel;
        let mut g = ComputeGraph::new();
        let a = g.add_source(MatrixType::dense(24, 24), PhysFormat::Tile { side: 8 });
        let b = g.add_source(MatrixType::dense(24, 24), PhysFormat::Tile { side: 8 });
        let p = g.add_op(Op::MatMul, &[a, b]).unwrap();
        let _s = g.add_op(Op::Sigmoid, &[p]).unwrap();

        let mut rng = seeded_rng(5);
        let da = random_dense_normal(24, 24, &mut rng);
        let db = random_dense_normal(24, 24, &mut rng);
        let mut inputs = HashMap::new();
        inputs.insert(
            a,
            DistRelation::from_dense(&da, PhysFormat::Tile { side: 8 }).unwrap(),
        );
        inputs.insert(
            b,
            DistRelation::from_dense(&db, PhysFormat::Tile { side: 8 }).unwrap(),
        );

        let out = execute_adaptive(
            &g,
            &inputs,
            &ctx,
            &catalog(),
            &model,
            AdaptiveConfig::default(),
        )
        .expect("runs");
        assert_eq!(out.reoptimizations, 0);
        let expect = da.matmul(&db).sigmoid();
        let sink = *out.sinks.keys().next().unwrap();
        assert!(out.sinks[&sink].to_dense().approx_eq(&expect, 1e-9));
    }

    #[test]
    fn relative_error_is_symmetric_and_one_at_perfection() {
        assert!((relative_error(0.5, 0.5) - 1.0).abs() < 1e-12);
        assert!((relative_error(0.1, 0.2) - 2.0).abs() < 1e-12);
        assert!((relative_error(0.2, 0.1) - 2.0).abs() < 1e-12);
        assert!(relative_error(0.0, 0.5) > 1e6);
    }
}

#[cfg(test)]
mod threshold_tests {
    use super::*;
    use matopt_core::{Cluster, ImplRegistry, Op, PhysFormat};
    use matopt_cost::AnalyticalCostModel;
    use matopt_kernels::{random_dense_normal, seeded_rng};
    use std::collections::HashMap;

    /// A permissive threshold never re-plans; a paranoid threshold of
    /// 1.0 re-plans on essentially every estimation error; the default
    /// sits in between — and all three produce identical numbers.
    #[test]
    fn threshold_controls_replan_frequency_not_results() {
        let reg = ImplRegistry::paper_default();
        let ctx = PlanContext::new(&reg, Cluster::simsql_like(4));
        let model = AnalyticalCostModel;
        let catalog = FormatCatalog::new(vec![
            PhysFormat::SingleTuple,
            PhysFormat::Tile { side: 8 },
            PhysFormat::CsrTile { side: 8 },
            PhysFormat::CsrSingle,
        ]);

        // Two correlated-pattern Hadamards in sequence: two chances to
        // misestimate.
        let mut g = ComputeGraph::new();
        let d = 0.06;
        let x = g.add_source(
            MatrixType::sparse(32, 32, d),
            PhysFormat::CsrTile { side: 8 },
        );
        let y = g.add_source(
            MatrixType::sparse(32, 32, d),
            PhysFormat::CsrTile { side: 8 },
        );
        let h1 = g.add_op(Op::Hadamard, &[x, y]).unwrap();
        let h2 = g.add_op(Op::Hadamard, &[h1, x]).unwrap();
        let w = g.add_source(MatrixType::dense(32, 8), PhysFormat::Tile { side: 8 });
        let _p = g.add_op(Op::MatMul, &[h2, w]).unwrap();

        let mut rng = seeded_rng(29);
        let base = random_dense_normal(32, 32, &mut rng).map(|v| if v > 1.5 { v } else { 0.0 });
        let wdat = random_dense_normal(32, 8, &mut rng);
        let mut inputs = HashMap::new();
        inputs.insert(
            x,
            DistRelation::from_dense(&base, PhysFormat::CsrTile { side: 8 }).unwrap(),
        );
        inputs.insert(
            y,
            DistRelation::from_dense(&base, PhysFormat::CsrTile { side: 8 }).unwrap(),
        );
        inputs.insert(
            w,
            DistRelation::from_dense(&wdat, PhysFormat::Tile { side: 8 }).unwrap(),
        );

        let run = |threshold: f64| {
            execute_adaptive(
                &g,
                &inputs,
                &ctx,
                &catalog,
                &model,
                AdaptiveConfig {
                    relative_error_threshold: threshold,
                    beam: 1000,
                },
            )
            .expect("runs")
        };
        let lax = run(1e9);
        let default = run(1.2);
        let strict = run(1.0 + 1e-9);
        assert_eq!(lax.reoptimizations, 0);
        assert!(default.reoptimizations >= 1);
        assert!(strict.reoptimizations >= default.reoptimizations);

        let expect = base.hadamard(&base).hadamard(&base).matmul(&wdat);
        for out in [&lax, &default, &strict] {
            let sink = *out.sinks.keys().next().unwrap();
            assert!(out.sinks[&sink].to_dense().approx_eq(&expect, 1e-9));
        }
    }
}
