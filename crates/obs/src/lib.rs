//! # matopt-obs
//!
//! A lightweight structured-event layer shared by the optimizer, the
//! analytic simulator, and the real executor. The design goals, in
//! order:
//!
//! 1. **Zero cost when disabled.** An [`Obs`] handle is a single
//!    `Option<Arc<..>>`; every instrumentation call checks it once and
//!    returns before formatting names, building attributes, or taking
//!    any lock. The attribute builders are closures that are never
//!    invoked on the disabled path.
//! 2. **Structured, not stringly.** Events carry a [`Subsystem`], an
//!    [`EventKind`], a microsecond timestamp relative to the handle's
//!    epoch, a stable per-thread id, and typed key/value attributes.
//! 3. **Pluggable sinks.** Anything implementing [`Sink`] can receive
//!    events; [`MemorySink`] buffers them for the exporters in
//!    [`export`] (Chrome trace-event JSON and JSONL).
//!
//! The paper's prototype logs optimizer statistics ad hoc; this crate
//! replaces that with one event model so `EXPLAIN ANALYZE` and the
//! `--trace-out` CLI flag can join optimizer, simulator, and executor
//! activity on a single timeline.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod json;
pub mod metrics;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, MetricValue, MetricsRegistry,
    MetricsSnapshot,
};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// Plan optimizers (`matopt-opt`): brute force, tree DP, frontier DP.
    Optimizer,
    /// The analytic cluster simulator (`simulate_plan`).
    Simulator,
    /// The real chunked executor (`execute_plan`).
    Executor,
    /// Cost-model predictions and residuals (`matopt-cost`).
    CostModel,
    /// Cost-model calibration runs (`collect_samples`).
    Calibration,
    /// The `matopt` command-line driver.
    Cli,
    /// Fault injection and recovery (`execute_fault_tolerant`).
    Faults,
    /// The pipelined DAG scheduler and its work-stealing pool.
    Sched,
    /// The concurrent plan service and its fingerprint cache
    /// (`matopt-serve`).
    Serve,
    /// The supervised multi-process worker fleet (`matopt-worker`):
    /// spawn/heartbeat/restart lifecycle, dispatches, redispatches,
    /// torn-frame detections.
    Fleet,
}

impl Subsystem {
    /// Stable lowercase name used by both exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Optimizer => "optimizer",
            Subsystem::Simulator => "simulator",
            Subsystem::Executor => "executor",
            Subsystem::CostModel => "cost_model",
            Subsystem::Calibration => "calibration",
            Subsystem::Cli => "cli",
            Subsystem::Faults => "faults",
            Subsystem::Sched => "sched",
            Subsystem::Serve => "serve",
            Subsystem::Fleet => "fleet",
        }
    }
}

/// A typed attribute value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Attribute list: ordered key/value pairs (order is preserved in the
/// exported JSON so traces diff cleanly).
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// What happened.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A hierarchical span opened (Chrome `ph: "B"`).
    SpanBegin,
    /// The most recently opened span with this name on this thread
    /// closed (Chrome `ph: "E"`).
    SpanEnd,
    /// A monotonically accumulated value (Chrome `ph: "C"`).
    Counter {
        /// Amount added at this instant.
        value: f64,
    },
    /// A sampled instantaneous value (also exported as Chrome `ph: "C"`).
    Gauge {
        /// The sampled value.
        value: f64,
    },
    /// A structured instant record (Chrome `ph: "i"`), e.g. a
    /// predicted-vs-observed cost residual.
    Record,
}

/// One structured event.
#[derive(Debug, Clone)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Which layer emitted it.
    pub subsystem: Subsystem,
    /// Event name; span begin/end pairs share the same name.
    pub name: String,
    /// Microseconds since the [`Obs`] handle's epoch.
    pub t_us: u64,
    /// Stable small integer identifying the emitting thread.
    pub thread: u64,
    /// Typed key/value payload.
    pub attrs: Attrs,
}

/// Receives events. Implementations must be thread-safe: the executor
/// emits from scoped worker threads.
pub trait Sink: Send + Sync {
    /// Accepts one event. Called with spans already timestamped.
    fn record(&self, event: Event);
}

/// A [`Sink`] that buffers events in memory for later export.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns every buffered event, in arrival order.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink poisoned"))
    }

    /// Copies the buffered events without draining them.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        self.events.lock().expect("sink poisoned").push(event);
    }
}

impl Sink for Arc<MemorySink> {
    fn record(&self, event: Event) {
        self.as_ref().record(event);
    }
}

/// A bounded [`Sink`] for long-lived processes: keeps the newest
/// `capacity` events and counts what it dropped, so `matopt serve` can
/// run for days without the unbounded growth of a [`MemorySink`].
///
/// Dropping oldest-first keeps the tail of the stream — the events
/// closest to "now", which is what an operator inspecting a live
/// process wants.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a sink that retains at most `capacity` events
    /// (`capacity` 0 drops everything, counting as it goes).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// The retention limit this sink was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted (or rejected, for a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("sink poisoned")
            .drain(..)
            .collect()
    }

    /// Copies the buffered events without draining them.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("sink poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, event: Event) {
        let mut events = self.events.lock().expect("sink poisoned");
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

impl Sink for Arc<RingSink> {
    fn record(&self, event: Event) {
        self.as_ref().record(event);
    }
}

struct ObsInner {
    epoch: Instant,
    sink: Box<dyn Sink>,
    metrics: Option<Arc<MetricsRegistry>>,
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// A cheap, clonable handle to the event pipeline.
///
/// Disabled handles ([`Obs::disabled`], also [`Default`]) carry no
/// allocation; every method on them is a branch on `Option::is_some`
/// and an immediate return.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// A handle that drops every event without looking at it.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A handle that forwards events to `sink`, with the epoch set to
    /// now.
    pub fn new(sink: impl Sink + 'static) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                sink: Box::new(sink),
                metrics: None,
            })),
        }
    }

    /// Like [`Obs::new`], but also carries a [`MetricsRegistry`]:
    /// instrumentation points that aggregate (counters, latency
    /// histograms) reach the registry through [`Obs::metrics`], while
    /// the event stream still flows to `sink`.
    pub fn with_metrics(sink: impl Sink + 'static, metrics: Arc<MetricsRegistry>) -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner {
                epoch: Instant::now(),
                sink: Box::new(sink),
                metrics: Some(metrics),
            })),
        }
    }

    /// The attached metrics registry, when this handle carries one.
    /// On a disabled handle (and on plain [`Obs::new`] handles) this is
    /// `None`, so `if let Some(m) = obs.metrics()` is the whole
    /// disabled-path cost of a metrics instrumentation point.
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.as_ref().and_then(|i| i.metrics.as_ref())
    }

    /// True when events reach a sink. Use to skip expensive
    /// trace-only computation.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(
        &self,
        inner: &Arc<ObsInner>,
        kind: EventKind,
        subsystem: Subsystem,
        name: String,
        attrs: Attrs,
    ) {
        let t_us = inner.epoch.elapsed().as_micros() as u64;
        inner.sink.record(Event {
            kind,
            subsystem,
            name,
            t_us,
            thread: thread_id(),
            attrs,
        });
    }

    /// Opens a span; it closes when the returned guard drops. The
    /// name is only copied when the handle is enabled.
    pub fn span(&self, subsystem: Subsystem, name: &str) -> Span {
        self.span_with(subsystem, name, Vec::new)
    }

    /// Opens a span with attributes; `attrs` is only invoked when the
    /// handle is enabled.
    pub fn span_with(
        &self,
        subsystem: Subsystem,
        name: &str,
        attrs: impl FnOnce() -> Attrs,
    ) -> Span {
        match &self.inner {
            None => Span { live: None },
            Some(inner) => {
                let name = name.to_string();
                self.emit(
                    inner,
                    EventKind::SpanBegin,
                    subsystem,
                    name.clone(),
                    attrs(),
                );
                Span {
                    live: Some(LiveSpan {
                        inner: Arc::clone(inner),
                        subsystem,
                        name,
                    }),
                }
            }
        }
    }

    /// Emits a counter increment.
    pub fn counter(&self, subsystem: Subsystem, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            self.emit(
                inner,
                EventKind::Counter { value },
                subsystem,
                name.to_string(),
                Vec::new(),
            );
        }
    }

    /// Emits a sampled gauge value.
    pub fn gauge(&self, subsystem: Subsystem, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            self.emit(
                inner,
                EventKind::Gauge { value },
                subsystem,
                name.to_string(),
                Vec::new(),
            );
        }
    }

    /// Emits a structured instant record; `attrs` is only invoked when
    /// the handle is enabled.
    pub fn record(&self, subsystem: Subsystem, name: &str, attrs: impl FnOnce() -> Attrs) {
        if let Some(inner) = &self.inner {
            self.emit(
                inner,
                EventKind::Record,
                subsystem,
                name.to_string(),
                attrs(),
            );
        }
    }
}

struct LiveSpan {
    inner: Arc<ObsInner>,
    subsystem: Subsystem,
    name: String,
}

/// Drop guard for an open span. Dropping emits the matching
/// [`EventKind::SpanEnd`]; an inert guard (from a disabled handle)
/// does nothing.
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// True when this guard will emit an end event.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let t_us = live.inner.epoch.elapsed().as_micros() as u64;
            live.inner.sink.record(Event {
                kind: EventKind::SpanEnd,
                subsystem: live.subsystem,
                name: live.name,
                t_us,
                thread: thread_id(),
                attrs: Vec::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing_and_skips_attr_closures() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let mut called = false;
        {
            let _s = obs.span_with(Subsystem::Optimizer, "phase", || {
                called = true;
                vec![]
            });
        }
        obs.counter(Subsystem::Executor, "n", 1.0);
        assert!(!called, "attr closure must not run when disabled");
    }

    #[test]
    fn spans_pair_begin_and_end() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::clone(&sink));
        {
            let _outer = obs.span(Subsystem::Optimizer, "outer");
            let _inner = obs.span_with(Subsystem::Optimizer, "inner", || {
                vec![("k", AttrValue::Int(3))]
            });
        }
        let events = sink.take();
        let kinds: Vec<(&EventKind, &str)> =
            events.iter().map(|e| (&e.kind, e.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (&EventKind::SpanBegin, "outer"),
                (&EventKind::SpanBegin, "inner"),
                (&EventKind::SpanEnd, "inner"),
                (&EventKind::SpanEnd, "outer"),
            ]
        );
        assert_eq!(events[1].attrs, vec![("k", AttrValue::Int(3))]);
        // Timestamps are monotone within the thread.
        for w in events.windows(2) {
            assert!(w[0].t_us <= w[1].t_us);
        }
    }

    #[test]
    fn counters_gauges_and_records_flow_through() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::clone(&sink));
        obs.counter(Subsystem::Optimizer, "beam_truncated", 2.0);
        obs.gauge(Subsystem::Simulator, "frontier_size", 17.0);
        obs.record(Subsystem::CostModel, "residual", || {
            vec![("predicted", 1.0.into()), ("observed", 2.0.into())]
        });
        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Counter { value: 2.0 });
        assert_eq!(events[1].kind, EventKind::Gauge { value: 17.0 });
        assert_eq!(events[2].kind, EventKind::Record);
        assert_eq!(events[2].attrs.len(), 2);
    }

    #[test]
    fn clones_share_the_sink_and_epoch() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::clone(&sink));
        let obs2 = obs.clone();
        obs.counter(Subsystem::Cli, "a", 1.0);
        obs2.counter(Subsystem::Cli, "b", 1.0);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn ring_sink_bounds_growth_and_counts_drops() {
        let sink = Arc::new(RingSink::new(3));
        let obs = Obs::new(Arc::clone(&sink));
        for i in 0..5 {
            obs.counter(Subsystem::Serve, &format!("c{i}"), 1.0);
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        // The newest events survive, oldest are evicted.
        let names: Vec<String> = sink.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["c2", "c3", "c4"]);
        assert_eq!(sink.take().len(), 3);
        assert!(sink.is_empty());

        // A zero-capacity ring rejects everything but still counts.
        let zero = Arc::new(RingSink::new(0));
        let obs = Obs::new(Arc::clone(&zero));
        obs.counter(Subsystem::Serve, "x", 1.0);
        assert!(zero.is_empty());
        assert_eq!(zero.dropped(), 1);
    }

    #[test]
    fn metrics_registry_rides_the_obs_handle() {
        assert!(Obs::disabled().metrics().is_none());
        let plain = Obs::new(MemorySink::new());
        assert!(plain.metrics().is_none());

        let registry = MetricsRegistry::new();
        let obs = Obs::with_metrics(MemorySink::new(), Arc::clone(&registry));
        obs.metrics()
            .expect("registry attached")
            .counter(Subsystem::Serve, "hits")
            .inc();
        assert_eq!(
            registry.snapshot().counter(Subsystem::Serve, "hits"),
            Some(1)
        );
        // Clones share the registry.
        assert!(obs.clone().metrics().is_some());
    }

    #[test]
    fn threads_get_distinct_stable_ids() {
        let sink = Arc::new(MemorySink::new());
        let obs = Obs::new(Arc::clone(&sink));
        obs.counter(Subsystem::Executor, "main", 0.0);
        let obs2 = obs.clone();
        std::thread::spawn(move || {
            obs2.counter(Subsystem::Executor, "worker", 0.0);
            obs2.counter(Subsystem::Executor, "worker", 1.0);
        })
        .join()
        .unwrap();
        let events = sink.take();
        assert_ne!(events[0].thread, events[1].thread);
        assert_eq!(events[1].thread, events[2].thread);
    }
}
