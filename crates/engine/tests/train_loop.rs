//! The multi-epoch training driver: loss goes down, the plan cache is
//! hit on every epoch after the first, caching never changes a bit of
//! the loss trajectory, and checkpoints resume bit-exactly.

use matopt_core::{
    Cluster, FormatCatalog, ImplRegistry, NodeId, NodeKind, PhysFormat, PlanContext,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{
    train, train_resumable, AdaptiveConfig, DistRelation, EpochPlanSource, TrainCheckpoint,
    TrainConfig, TrainError, TrainSpec,
};
use matopt_graphs::{ffnn_training_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};
use std::collections::HashMap;

fn catalog() -> FormatCatalog {
    FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 16 },
        PhysFormat::RowStrip { height: 16 },
    ])
}

/// Row-stochastic one-hot labels, so the softmax+cross-entropy gradient
/// seed `(A_out − Y)/batch` is the exact descent direction.
fn one_hot(rows: usize, cols: usize) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        m.set(r, (r * 7 + 3) % cols, 1.0);
    }
    m
}

fn spec_and_inputs(hidden: u64) -> (TrainSpec, HashMap<NodeId, DistRelation>) {
    let t = ffnn_training_graph(FfnnConfig::laptop(hidden)).expect("well-typed");
    let mut rng = seeded_rng(0xAD_1234);
    let mut inputs = HashMap::new();
    for (id, node) in t.graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let (r, c) = (node.mtype.rows as usize, node.mtype.cols as usize);
            let d = if id == t.y {
                one_hot(r, c)
            } else {
                // Small weights keep the softmax away from saturation.
                random_dense_normal(r, c, &mut rng).map(|v| v * 0.1)
            };
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    let params: Vec<NodeId> = t.weights.iter().chain(t.biases.iter()).copied().collect();
    let updated: Vec<NodeId> = t
        .updated_weights
        .iter()
        .chain(t.updated_biases.iter())
        .copied()
        .collect();
    (
        TrainSpec {
            graph: t.graph,
            params,
            updated,
            loss: t.loss,
        },
        inputs,
    )
}

fn config(epochs: usize, reuse_plans: bool) -> TrainConfig {
    TrainConfig {
        epochs,
        adaptive: AdaptiveConfig {
            beam: 300,
            ..AdaptiveConfig::default()
        },
        reuse_plans,
    }
}

fn run(
    spec: &TrainSpec,
    inputs: &HashMap<NodeId, DistRelation>,
    cfg: &TrainConfig,
) -> matopt_engine::TrainRun {
    let reg = ImplRegistry::extended();
    let ctx = PlanContext::new(&reg, Cluster::simsql_like(4));
    train(spec, inputs, &ctx, &catalog(), &AnalyticalCostModel, cfg).expect("training runs")
}

#[test]
fn loss_decreases_and_the_plan_cache_hits_every_later_epoch() {
    let (spec, inputs) = spec_and_inputs(8);
    let out = run(&spec, &inputs, &config(4, true));
    assert_eq!(out.epochs.len(), 4);
    assert!(
        out.monotone_non_increasing(),
        "full-batch GD must not increase the loss: {:?}",
        out.losses()
    );
    assert!(
        out.epochs[0].loss > out.epochs[3].loss,
        "four epochs must make real progress"
    );
    assert_eq!(out.epochs[0].plan, EpochPlanSource::Optimized);
    for e in &out.epochs[1..] {
        assert_eq!(e.plan, EpochPlanSource::CacheHit, "epoch {}", e.epoch);
        assert_eq!(
            e.reoptimizations, 0,
            "calibrated statistics must stay drift-free (epoch {})",
            e.epoch
        );
    }
    assert_eq!(out.cache_hits, 3);
    assert!(
        out.cache_invalidations <= 1,
        "at most the first epoch's drift may invalidate"
    );
}

#[test]
fn plan_caching_is_invisible_to_the_numbers() {
    let (spec, inputs) = spec_and_inputs(8);
    let cached = run(&spec, &inputs, &config(3, true));
    let uncached = run(&spec, &inputs, &config(3, false));
    assert_eq!(uncached.cache_hits, 0);
    let bits = |r: &matopt_engine::TrainRun| -> Vec<u64> {
        r.losses().iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(
        bits(&cached),
        bits(&uncached),
        "cached and uncached loss trajectories must be bit-exact"
    );
    for p in &spec.params {
        let (a, b) = (
            cached.final_params[p].to_dense(),
            uncached.final_params[p].to_dense(),
        );
        assert_eq!(a.frobenius_distance(&b), 0.0);
    }
}

#[test]
fn checkpoints_survive_the_wire_and_resume_bit_exactly() {
    let (spec, inputs) = spec_and_inputs(8);
    let reg = ImplRegistry::extended();
    let ctx = PlanContext::new(&reg, Cluster::simsql_like(4));
    let cat = catalog();

    // Full run, snapshotting (as wire bytes) after epoch 2.
    let snap: std::cell::RefCell<Option<Vec<u8>>> = std::cell::RefCell::new(None);
    let full = train_resumable(
        &spec,
        &inputs,
        &ctx,
        &cat,
        &AnalyticalCostModel,
        &config(4, true),
        None,
        Some(&|stats, ck| {
            if stats.epoch == 1 {
                *snap.borrow_mut() = Some(ck.encode());
            }
        }),
        None,
    )
    .expect("full run");

    let bytes = snap.into_inner().expect("snapshot taken");
    let ck = TrainCheckpoint::decode(&bytes).expect("round trips");
    assert_eq!(ck.epoch, 2);
    assert_eq!(ck.losses.len(), 2);

    // Resume from the decoded checkpoint: the tail must be bit-exact.
    let resumed = train_resumable(
        &spec,
        &inputs,
        &ctx,
        &cat,
        &AnalyticalCostModel,
        &config(4, true),
        Some(&ck),
        None,
        None,
    )
    .expect("resumed run");
    assert_eq!(resumed.epochs.len(), 4);
    let full_bits: Vec<u64> = full.losses().iter().map(|l| l.to_bits()).collect();
    let res_bits: Vec<u64> = resumed.losses().iter().map(|l| l.to_bits()).collect();
    assert_eq!(full_bits, res_bits, "resumed trajectory diverged");
    for p in &spec.params {
        let d = full.final_params[p]
            .to_dense()
            .frobenius_distance(&resumed.final_params[p].to_dense());
        assert_eq!(d, 0.0, "resumed parameters diverged");
    }
}

#[test]
fn corrupt_checkpoints_are_rejected_not_trusted() {
    let (spec, inputs) = spec_and_inputs(8);
    let out = run(&spec, &inputs, &config(1, true));
    let ck = TrainCheckpoint {
        epoch: 1,
        losses: out.losses(),
        params: spec
            .params
            .iter()
            .map(|p| (*p, out.final_params[p].clone()))
            .collect(),
        sparsities: vec![0.5; spec.graph.len()],
    };
    let bytes = ck.encode();
    assert!(TrainCheckpoint::decode(&bytes).is_ok());
    assert!(TrainCheckpoint::decode(&bytes[..bytes.len() - 3]).is_err());
    assert!(TrainCheckpoint::decode(&bytes[..11]).is_err());
    let mut torn = bytes.clone();
    let mid = bytes.len() / 2;
    torn[mid] ^= 0x40;
    assert!(
        TrainCheckpoint::decode(&torn).is_err(),
        "a torn relation payload must fail the spill checksums"
    );
    let mut wrong_magic = bytes;
    wrong_magic[0] ^= 1;
    assert!(TrainCheckpoint::decode(&wrong_magic).is_err());
}

#[test]
fn structural_spec_errors_are_caught_before_any_work() {
    let (spec, _) = spec_and_inputs(8);
    let mut no_params = spec.clone();
    no_params.params.clear();
    no_params.updated.clear();
    assert!(matches!(no_params.validate(), Err(TrainError::BadSpec(_))));

    let mut misaligned = spec.clone();
    misaligned.updated.pop();
    assert!(matches!(misaligned.validate(), Err(TrainError::BadSpec(_))));

    let mut non_scalar_loss = spec.clone();
    non_scalar_loss.loss = spec.updated[0];
    assert!(matches!(
        non_scalar_loss.validate(),
        Err(TrainError::BadSpec(_))
    ));

    // A compute vertex posing as a parameter source.
    let mut not_a_source = spec;
    not_a_source.params[0] = not_a_source.loss;
    assert!(matches!(
        not_a_source.validate(),
        Err(TrainError::BadSpec(_))
    ));
}
