//! Overhead of the aggregate-metrics layer on the real executor.
//!
//! The metrics registry rides on [`Obs`]: every instrumentation site
//! first asks `obs.metrics()` and does nothing when no registry is
//! attached, so the *disabled* path — what `matopt plan` runs — pays
//! exactly one `Option` check per site. The acceptance bar is that
//! this costs < 2% versus the same run without a registry, measured
//! three ways:
//!
//! * `execute/no_registry` — the laptop FFNN weight update through the
//!   pipelined executor with a disabled `Obs` (no sink, no registry);
//! * `execute/metered` — the same run with a live registry and a
//!   bounded ring sink, bounding what metering costs when it is on;
//! * `primitive/*` — the raw per-call price of the disabled registry
//!   check, a wait-free counter add, and a histogram record.
//!
//! The final `metrics overhead budget` line multiplies the measured
//! disabled per-check cost by the number of metric updates one metered
//! run actually performs and reports it as a fraction of run time —
//! the same accounting `obs_overhead` uses for the event stream.

use criterion::{black_box, criterion_group, Criterion};
use matopt_core::{Cluster, FormatCatalog, ImplRegistry, NodeKind, PlanContext};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan_traced, DistRelation};
use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
use matopt_kernels::{random_dense_normal, seeded_rng};
use matopt_obs::{MetricValue, MetricsRegistry, Obs, RingSink, Subsystem};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Fixture {
    graph: matopt_core::ComputeGraph,
    annotation: matopt_core::Annotation,
    registry: ImplRegistry,
    inputs: HashMap<matopt_core::NodeId, DistRelation>,
}

fn fixture() -> Fixture {
    let registry = ImplRegistry::paper_default();
    let ffnn = ffnn_w2_update_graph(FfnnConfig::laptop(32)).expect("type-correct");
    let cluster = Cluster::simsql_like(10);
    let ctx = PlanContext::new(&registry, cluster);
    let catalog = FormatCatalog::paper_default().dense_only();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &catalog, &model);
    let opt = frontier_dp_beam(&ffnn.graph, &octx, 4000).expect("optimizes");

    let mut rng = seeded_rng(42);
    let mut inputs = HashMap::new();
    for (id, node) in ffnn.graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    Fixture {
        graph: ffnn.graph,
        annotation: opt.annotation,
        registry,
        inputs,
    }
}

fn metered_obs() -> Obs {
    Obs::with_metrics(Arc::new(RingSink::new(4096)), MetricsRegistry::new())
}

fn bench_execute(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(2));

    let disabled = Obs::disabled();
    g.bench_function("execute/no_registry", |b| {
        b.iter(|| {
            execute_plan_traced(
                &fx.graph,
                &fx.annotation,
                &fx.inputs,
                &fx.registry,
                &disabled,
            )
            .expect("executes")
        })
    });

    let metered = metered_obs();
    g.bench_function("execute/metered", |b| {
        b.iter(|| {
            execute_plan_traced(
                &fx.graph,
                &fx.annotation,
                &fx.inputs,
                &fx.registry,
                &metered,
            )
            .expect("executes")
        })
    });

    g.bench_function("primitive/disabled_registry_check", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..1000u64 {
                if black_box(&disabled).metrics().is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    let registry = MetricsRegistry::new();
    let counter = registry.counter(Subsystem::Executor, "bench");
    let histogram = registry.histogram(Subsystem::Executor, "bench_us");
    g.bench_function("primitive/counter_add", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                counter.add(black_box(i) & 1);
            }
        })
    });
    g.bench_function("primitive/histogram_record", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                histogram.record(black_box(i));
            }
        })
    });
    g.finish();
}

/// Direct budget check: disabled-path cost per registry check × metric
/// updates one metered run performs, as a share of the run time.
fn metrics_budget_report() {
    let fx = fixture();
    let disabled = Obs::disabled();

    // Per-call cost of the disabled `obs.metrics()` check — the entire
    // price a registry-less run pays per instrumentation site.
    let calls = 1_000_000u64;
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..calls {
        if black_box(&disabled).metrics().is_some() {
            hits += 1;
        }
    }
    black_box(hits);
    let per_call = t0.elapsed().as_secs_f64() / calls as f64;

    // Metric updates one run performs: every histogram sample is one
    // `observe`, and each counter/gauge in the snapshot is written once
    // per pipeline run.
    let metered = metered_obs();
    execute_plan_traced(
        &fx.graph,
        &fx.annotation,
        &fx.inputs,
        &fx.registry,
        &metered,
    )
    .expect("executes");
    let snapshot = metered.metrics().expect("registry attached").snapshot();
    let points: u64 = snapshot
        .metrics
        .iter()
        .map(|m| match &m.value {
            MetricValue::Histogram(h) => h.count(),
            MetricValue::Counter(_) | MetricValue::Gauge(_) => 1,
        })
        .sum();

    // Median-of-5 run time without a registry.
    let mut runs: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            execute_plan_traced(
                &fx.graph,
                &fx.annotation,
                &fx.inputs,
                &fx.registry,
                &disabled,
            )
            .expect("executes");
            t.elapsed().as_secs_f64()
        })
        .collect();
    runs.sort_by(f64::total_cmp);
    let run = runs[2];

    let share = per_call * points as f64 / run;
    println!(
        "metrics overhead budget: {points} metric updates x {:.1} ns disabled check = {:.3}% of a {:.3} ms run (budget 2%) -> {}",
        per_call * 1e9,
        share * 100.0,
        run * 1e3,
        if share < 0.02 { "OK" } else { "OVER" }
    );
}

criterion_group!(benches, bench_execute);

fn main() {
    benches();
    metrics_budget_report();
}
