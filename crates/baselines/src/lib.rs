//! # matopt-baselines
//!
//! The comparison systems of the paper's evaluation:
//!
//! * [`all_tile_plan`] — "simply tiling every matrix in 1K × 1K
//!   chunks" (§8.2);
//! * [`hand_written_plan`] — the competent hand plan "derived from the
//!   code used ... for a published paper \[23\]";
//! * [`expert_plan`] — the three recruited-programmer personas of
//!   Experiment 4 (low / medium / high distributed-ML expertise, with
//!   the low/medium first attempts crashing and being re-designed);
//! * [`systemds_plan`] — SystemDS-style per-operator layout choice with
//!   sparsity support but no transformation-cost integration (§9);
//! * [`simulate_pytorch_ffnn`] — the data-parallel PyTorch baseline of
//!   §8.3, modeled from its strategy (full model on every worker;
//!   sync cost growing with the cluster).
//!
//! All planners deliberately reuse the same format/implementation
//! machinery as the optimizer, differing only in *what they know* —
//! which is precisely the paper's experimental design.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod greedy;
mod personas;
mod pytorch;

pub use greedy::{
    broadcast_strategies, greedy_plan, systemds_catalog, tile_only_catalog, GreedyConfig,
};
pub use personas::{
    all_tile_plan, expert_plan, hand_written_plan, systemds_plan, ExpertPlan, Expertise,
};
pub use pytorch::{simulate_pytorch_ffnn, PyTorchProfile};

#[cfg(test)]
mod tests {
    use super::*;
    use matopt_core::{validate, Cluster, FormatCatalog, ImplRegistry, PlanContext};
    use matopt_cost::{plan_cost, AnalyticalCostModel};
    use matopt_graphs::{ffnn_w2_update_graph, FfnnConfig};
    use matopt_opt::{frontier_dp, OptContext};

    #[test]
    fn baselines_plan_the_ffnn_and_cost_at_least_the_optimum() {
        let reg = ImplRegistry::paper_default();
        let cl = Cluster::simsql_like(10);
        let ctx = PlanContext::new(&reg, cl);
        let model = AnalyticalCostModel;
        let cat = FormatCatalog::paper_default().dense_only();
        let octx = OptContext::new(&ctx, &cat, &model);
        let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(10_000))
            .unwrap()
            .graph;

        let unlimited_early = PlanContext {
            registry: &reg,
            transforms: ctx.transforms,
            cluster: cl.with_unlimited_resources(),
        };
        let auto = frontier_dp(&g, &octx).unwrap();
        let hand = hand_written_plan(&g, &ctx, &model).unwrap();
        validate(&g, &hand, &unlimited_early).unwrap();
        let hand_cost = plan_cost(&g, &hand, &unlimited_early, &model).unwrap();
        assert!(
            auto.cost <= hand_cost * (1.0 + 1e-9),
            "auto {} must not exceed hand {}",
            auto.cost,
            hand_cost
        );

        // The all-tile plan is constructible (memory-unchecked) and
        // costs at least the hand plan's on this workload.
        let tiles = all_tile_plan(&g, &ctx, &model).unwrap();
        let unlimited = PlanContext {
            registry: &reg,
            transforms: ctx.transforms,
            cluster: cl.with_unlimited_resources(),
        };
        validate(&g, &tiles, &unlimited).unwrap();
        let tile_cost = plan_cost(&g, &tiles, &unlimited, &model).unwrap();
        assert!(auto.cost <= tile_cost);
    }

    #[test]
    fn expert_quality_orders_by_expertise() {
        let reg = ImplRegistry::paper_default();
        let cl = Cluster::simsql_like(10);
        let ctx = PlanContext::new(&reg, cl);
        let model = AnalyticalCostModel;
        let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(10_000))
            .unwrap()
            .graph;
        let unlimited = PlanContext {
            registry: &reg,
            transforms: ctx.transforms,
            cluster: cl.with_unlimited_resources(),
        };
        let cost_of = |ann: &matopt_core::Annotation| {
            plan_cost(&g, ann, &unlimited, &model).expect("plannable")
        };
        let low = expert_plan(&g, &ctx, &model, Expertise::Low).unwrap();
        let med = expert_plan(&g, &ctx, &model, Expertise::Medium).unwrap();
        let high = expert_plan(&g, &ctx, &model, Expertise::High).unwrap();
        let (cl_, cm, ch) = (
            cost_of(&low.annotation),
            cost_of(&med.annotation),
            cost_of(&high.annotation),
        );
        assert!(
            ch <= cm && cm <= cl_,
            "expected high ≤ medium ≤ low, got {ch} / {cm} / {cl_}"
        );
        assert!(!high.first_attempt_failed);
    }

    #[test]
    fn systemds_plan_is_type_correct() {
        let reg = ImplRegistry::paper_default();
        let cl = Cluster::plinycompute_like(5);
        let ctx = PlanContext::new(&reg, cl);
        let model = AnalyticalCostModel;
        let g = ffnn_w2_update_graph(FfnnConfig::amazoncat(1000, 4000, false))
            .unwrap()
            .graph;
        let plan = systemds_plan(&g, &ctx, &model).unwrap();
        validate(&g, &plan, &ctx).unwrap();
    }
}
