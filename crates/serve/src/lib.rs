//! # matopt-serve
//!
//! The concurrent plan-serving subsystem: the optimizer and engine of
//! the paper, repackaged as a long-lived service that answers "plan
//! this graph on this cluster" requests from many clients at once.
//!
//! Optimizing a plan costs real time (the frontier DP over a 57-vertex
//! FFNN graph is milliseconds to seconds depending on catalog and
//! beam), while *serving* an already-optimized plan costs microseconds
//! — so the subsystem is built around recognizing that two requests are
//! the same planning problem:
//!
//! * [`fingerprint`] — an isomorphism-stable 128-bit key over (graph,
//!   cluster, bucketed sparsity statistics, format catalog), built on
//!   the canonical labeling in `matopt-core`. Two `ExprBuilder`
//!   programs that build the same DAG in different vertex orders hit
//!   the same cache line.
//! * [`PlanCache`] — a sharded concurrent map fingerprint →
//!   `Arc<Optimized>` with cost-aware eviction (entries are weighted by
//!   the optimizer seconds a hit saves, decayed by recency) and
//!   epoch-based invalidation (calibration updates and cluster changes
//!   bump an epoch instead of walking the cache; adaptive-execution
//!   re-plans poison single entries).
//! * [`PlanService`] — the request pipeline: single-flight coalescing
//!   (concurrent misses on one fingerprint run the optimizer exactly
//!   once), deadline and queue-depth backpressure in the PR 4
//!   governor's admission vocabulary, and execution fan-out onto the
//!   existing pipelined executor.
//! * [`serve_lines`] — the `matopt serve` front end: JSON-lines over
//!   stdin/stdout ([`protocol`] documents the request grammar), plus
//!   the same service as an in-process API.
//! * [`save_cache`]/[`load_cache`] — `matopt plan --cache-dir`
//!   persistence with dual FNV-1a checksums; a corrupt entry is a
//!   cache miss, never a wrong plan.
//!
//! Everything is observable under [`matopt_obs::Subsystem::Serve`]:
//! hit/miss/coalesced counters, queue-depth gauges, per-request latency
//! records, eviction and poison events.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod breaker;
mod cache;
mod fingerprint;
mod front;
mod persist;
pub mod protocol;
mod server;
mod service;
mod tenant;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerState, BreakerStats, CircuitBreaker};
pub use cache::{plan_bytes, CacheConfig, CacheCounters, PlanCache};
pub use fingerprint::{fingerprint, sparsity_bucket, Fingerprint};
pub use front::{ExecRequest, ExecResponse, FrontDoor, FrontDoorConfig, FrontStats};
pub use persist::{load_cache, save_cache, LoadReport, CACHE_FILE, LOCK_FILE};
pub use server::{
    respond, serve_lines, serve_lines_concurrent, serve_lines_concurrent_session,
    serve_lines_session, stats_line, ServeSession, ServeSummary,
};
pub use service::{PlanService, PlanSource, Planned, ServeError, ServeStats};
pub use tenant::{TenancyConfig, TenantConfig, TenantStats};

/// Configuration of a [`PlanService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Plan-cache sizing.
    pub cache: CacheConfig,
    /// `false` disables the cache *and* single-flight coalescing —
    /// every request pays the optimizer. The honest uncached baseline
    /// for benchmarks, and an escape hatch if a cache bug is ever
    /// suspected in production.
    pub cache_enabled: bool,
    /// Per-request deadline (`None` = wait forever). Applies to time
    /// parked behind another request's optimizer run as well as to a
    /// request's own run.
    pub deadline: Option<std::time::Duration>,
    /// Admission cap: a miss that would start more than this many
    /// concurrent optimizer runs is rejected with
    /// [`ServeError::Overloaded`] instead of queued.
    pub max_queue_depth: usize,
    /// Beam width for the frontier DP (the CLI default).
    pub beam: usize,
    /// Cost-model drift detection tuning
    /// ([`PlanService::observe_runtime`]).
    pub drift: matopt_cost::DriftConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache: CacheConfig::default(),
            cache_enabled: true,
            deadline: None,
            max_queue_depth: 64,
            beam: 4000,
            drift: matopt_cost::DriftConfig::default(),
        }
    }
}
