//! Regenerates fig10 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig10(&Env::new()));
}
