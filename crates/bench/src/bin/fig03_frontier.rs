//! Regenerates fig03 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig03(&Env::new()));
}
