//! Cluster descriptions: the hardware model against which plans are
//! costed, checked for memory feasibility, and simulated.
//!
//! The paper runs SimSQL experiments on EC2 `r5d.2xlarge` machines
//! (8 cores, 68 GB RAM, NVMe SSD) and PlinyCompute/PyTorch/SystemDS
//! experiments on `r5dn.2xlarge` (8 cores, 64 GB, faster networking).
//! The two constructors [`Cluster::simsql_like`] and
//! [`Cluster::plinycompute_like`] encode those two system profiles: the
//! same hardware, but very different software overheads — SimSQL is a
//! Hadoop-based batch engine with large per-operator setup costs, while
//! PlinyCompute is an in-memory engine with millisecond dispatch.

/// The hardware/software profile of the distributed engine a plan will
/// run on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cluster {
    /// Number of worker machines.
    pub workers: usize,
    /// RAM available to the engine on each worker, in bytes.
    pub worker_ram_bytes: f64,
    /// Effective dense floating-point throughput per worker (flop/s)
    /// for parallel, chunk-level kernels.
    pub flops_per_sec: f64,
    /// Throughput of a single-threaded whole-matrix kernel call (one
    /// UDF invocation on one worker), flop/s.
    pub single_thread_flops_per_sec: f64,
    /// Network bandwidth in/out of one worker (bytes/s).
    pub net_bytes_per_sec: f64,
    /// Rate at which intermediate data can be materialized and re-read
    /// (bytes/s) — disk for SimSQL, memory-bus for PlinyCompute.
    pub inter_bytes_per_sec: f64,
    /// Fixed cost of processing one tuple through a relational operator
    /// (seconds) — the paper's feature (4): "each tuple tends to require
    /// a fixed overhead cost".
    pub tuple_overhead_sec: f64,
    /// Fixed startup cost per relational operator (seconds): job launch
    /// for Hadoop-based SimSQL, dispatch for PlinyCompute.
    pub op_setup_sec: f64,
    /// Largest matrix payload the engine will store in a single tuple,
    /// in bytes. The paper notes one "could not typically store a 40GB
    /// matrix in a single tuple".
    pub max_tuple_bytes: f64,
    /// Scratch space per worker for spilled intermediate data (the
    /// 300 GB NVMe SSD of the paper's EC2 instances). Plans whose
    /// intermediate data exceeds this *fail at runtime* — the paper's
    /// "Fail ... typically due to too much intermediate data".
    pub worker_disk_bytes: f64,
    /// Whether scratch space is reclaimed after each operator. Hadoop-
    /// based SimSQL materializes and retains every intermediate relation
    /// until the query finishes (`false`: spill accumulates across the
    /// plan); in-memory engines like PlinyCompute release scratch as
    /// soon as an operator completes (`true`: only the largest single
    /// operator counts).
    pub reclaim_scratch: bool,
    /// Expected worker crashes per worker-hour of wall time. The paper's
    /// clusters are assumed reliable (`0.0`); nonzero rates make the
    /// recovery-aware simulator charge expected re-computation time.
    pub crash_rate_per_hour: f64,
    /// Probability that any single operator execution is hit by a
    /// straggling worker (`0.0` = never).
    pub straggler_rate: f64,
    /// Wall-clock slowdown factor a straggler imposes on the operator it
    /// hits (`1.0` = no slowdown; only meaningful with a nonzero
    /// [`Cluster::straggler_rate`]).
    pub straggler_slowdown: f64,
}

impl Cluster {
    /// A SimSQL-like (Hadoop-based, disk-oriented) cluster of
    /// `r5d.2xlarge` workers. Used for the §8.2 plan-quality experiments.
    pub fn simsql_like(workers: usize) -> Self {
        Cluster {
            workers,
            worker_ram_bytes: 68e9,
            // 8 cores of JVM-hosted dense kernels backed by BLAS.
            flops_per_sec: 3.2e10,
            // One JVM thread running the matrix UDF.
            single_thread_flops_per_sec: 4.0e9,
            // 10 Gbit/s NIC, ~80% achievable.
            net_bytes_per_sec: 1.0e9,
            // NVMe SSD materialization path.
            inter_bytes_per_sec: 0.8e9,
            tuple_overhead_sec: 5.0e-4,
            // Hadoop job launch amortized per relational operator.
            op_setup_sec: 8.0,
            max_tuple_bytes: 8e9,
            worker_disk_bytes: 300e9,
            reclaim_scratch: false,
            crash_rate_per_hour: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// A PlinyCompute-like (in-memory, low-latency) cluster of
    /// `r5dn.2xlarge` workers. Used for the §8.3 system comparisons.
    pub fn plinycompute_like(workers: usize) -> Self {
        Cluster {
            workers,
            worker_ram_bytes: 64e9,
            // Effective multi-threaded MKL throughput of the engine's
            // dense kernels (calibrated against Figures 11-12).
            flops_per_sec: 5.0e11,
            single_thread_flops_per_sec: 6.25e10,
            // 25 Gbit/s NIC on r5dn.
            net_bytes_per_sec: 2.5e9,
            // In-memory intermediates.
            inter_bytes_per_sec: 8e9,
            tuple_overhead_sec: 2.0e-5,
            op_setup_sec: 0.35,
            max_tuple_bytes: 8e9,
            worker_disk_bytes: 300e9,
            reclaim_scratch: true,
            crash_rate_per_hour: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// A tiny deterministic profile for unit tests: one "second" per
    /// unit of every resource so feature values can be read off costs.
    pub fn unit_test(workers: usize) -> Self {
        Cluster {
            workers,
            worker_ram_bytes: 1e12,
            flops_per_sec: 1.0,
            single_thread_flops_per_sec: 1.0,
            net_bytes_per_sec: 1.0,
            inter_bytes_per_sec: 1.0,
            tuple_overhead_sec: 1.0,
            op_setup_sec: 0.0,
            max_tuple_bytes: 1e12,
            worker_disk_bytes: 1e15,
            reclaim_scratch: true,
            crash_rate_per_hour: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// Number of workers that can productively share `chunks` units of
    /// work (you cannot use more workers than there are chunks).
    pub fn effective_workers(&self, chunks: f64) -> f64 {
        (self.workers as f64).min(chunks.max(1.0))
    }

    /// The same cluster with memory and disk limits lifted. Baseline
    /// planners use this to *construct* plans a real cluster would
    /// reject, so the simulator can then report the runtime failure the
    /// paper observed.
    pub fn with_unlimited_resources(mut self) -> Self {
        self.worker_ram_bytes = f64::INFINITY;
        self.worker_disk_bytes = f64::INFINITY;
        self.max_tuple_bytes = f64::INFINITY;
        self
    }

    /// The same cluster with a failure model: `crash_rate_per_hour`
    /// expected crashes per worker-hour, plus a straggler profile
    /// (`straggler_rate` probability per operator of a `slowdown`×
    /// wall-clock hit).
    pub fn with_fault_rates(
        mut self,
        crash_rate_per_hour: f64,
        straggler_rate: f64,
        straggler_slowdown: f64,
    ) -> Self {
        self.crash_rate_per_hour = crash_rate_per_hour.max(0.0);
        self.straggler_rate = straggler_rate.clamp(0.0, 1.0);
        self.straggler_slowdown = straggler_slowdown.max(1.0);
        self
    }

    /// True when this cluster models any runtime failures at all.
    pub fn has_fault_model(&self) -> bool {
        self.crash_rate_per_hour > 0.0
            || (self.straggler_rate > 0.0 && self.straggler_slowdown > 1.0)
    }

    /// One degradation step: the same cluster with half its workers
    /// (floor, at least one) gone. The fault-tolerant executor shrinks
    /// the cluster this way after repeated resource-style failures and
    /// re-optimizes the remaining plan suffix.
    pub fn degraded(mut self) -> Self {
        self.workers = (self.workers / 2).max(1);
        self
    }

    /// Probability that at least one worker crashes during an operator
    /// that runs `seconds` of wall time on this cluster (Poisson arrival
    /// at `crash_rate_per_hour` per worker, summed across workers).
    pub fn crash_probability(&self, seconds: f64) -> f64 {
        if self.crash_rate_per_hour <= 0.0 || !seconds.is_finite() {
            return 0.0;
        }
        let lambda = self.crash_rate_per_hour / 3600.0 * self.workers as f64;
        1.0 - (-lambda * seconds.max(0.0)).exp()
    }

    /// Expected wall-clock inflation from stragglers: an operator takes
    /// `straggler_slowdown`× as long with probability `straggler_rate`.
    pub fn straggler_inflation(&self) -> f64 {
        1.0 + self.straggler_rate * (self.straggler_slowdown - 1.0)
    }
}

/// How the fault-tolerant executor (and the recovery-aware simulator)
/// brings a run back after a worker crash loses intermediate data.
///
/// The three policies span the classic recovery spectrum: re-running
/// the whole plan (what the paper's "Fail" rows would force operators
/// to do by hand), restoring per-vertex checkpoints (the materialize-
/// everything discipline Hadoop-based engines get for free), and
/// Spark-style lineage replay that recomputes only what was lost from
/// the nearest surviving ancestors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Throw everything away and re-execute the plan from its sources.
    Restart,
    /// Persist every completed vertex; after a crash, restore completed
    /// vertices from their checkpoints and recompute only in-flight
    /// work.
    Checkpoint,
    /// Keep nothing extra; after a crash, recompute the lost
    /// intermediates from the nearest surviving ancestors in
    /// topological order.
    #[default]
    Lineage,
}

impl RecoveryPolicy {
    /// Stable lowercase name (CLI flag value and trace attribute).
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryPolicy::Restart => "restart",
            RecoveryPolicy::Checkpoint => "checkpoint",
            RecoveryPolicy::Lineage => "lineage",
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for RecoveryPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "restart" | "scratch" => Ok(RecoveryPolicy::Restart),
            "checkpoint" | "ckpt" => Ok(RecoveryPolicy::Checkpoint),
            "lineage" | "replay" => Ok(RecoveryPolicy::Lineage),
            other => Err(format!(
                "unknown recovery policy {other:?} (expected restart|checkpoint|lineage)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_workers_caps_at_chunk_count() {
        let c = Cluster::simsql_like(10);
        assert_eq!(c.effective_workers(3.0), 3.0);
        assert_eq!(c.effective_workers(100.0), 10.0);
        assert_eq!(c.effective_workers(0.0), 1.0);
    }

    #[test]
    fn profiles_differ_in_overheads() {
        let sim = Cluster::simsql_like(10);
        let pc = Cluster::plinycompute_like(10);
        assert!(sim.op_setup_sec > 10.0 * pc.op_setup_sec);
        assert!(sim.tuple_overhead_sec > pc.tuple_overhead_sec);
    }

    #[test]
    fn clusters_are_reliable_by_default() {
        for c in [
            Cluster::simsql_like(10),
            Cluster::plinycompute_like(10),
            Cluster::unit_test(4),
        ] {
            assert!(!c.has_fault_model());
            assert_eq!(c.crash_probability(1e6), 0.0);
            assert_eq!(c.straggler_inflation(), 1.0);
        }
    }

    #[test]
    fn fault_rates_produce_sane_probabilities() {
        let c = Cluster::simsql_like(10).with_fault_rates(0.1, 0.05, 3.0);
        assert!(c.has_fault_model());
        // 10 workers x 0.1 crashes/hour => one expected crash per hour:
        // an hour-long operator fails with probability 1 - 1/e.
        let p = c.crash_probability(3600.0);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(c.crash_probability(1.0) < p);
        assert_eq!(c.crash_probability(0.0), 0.0);
        // 5% of operators take 3x as long.
        assert!((c.straggler_inflation() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn degradation_halves_workers_and_stops_at_one() {
        let c = Cluster::simsql_like(10);
        assert_eq!(c.degraded().workers, 5);
        assert_eq!(c.degraded().degraded().workers, 2);
        assert_eq!(Cluster::simsql_like(1).degraded().workers, 1);
    }

    #[test]
    fn recovery_policy_round_trips_through_strings() {
        for p in [
            RecoveryPolicy::Restart,
            RecoveryPolicy::Checkpoint,
            RecoveryPolicy::Lineage,
        ] {
            assert_eq!(p.as_str().parse::<RecoveryPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.as_str());
        }
        assert!("bogus".parse::<RecoveryPolicy>().is_err());
    }
}
