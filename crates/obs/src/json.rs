//! Minimal hand-rolled JSON helpers: string escaping for the exporters
//! and a strict validator used by the exporter tests. No external
//! dependencies — the whole workspace builds offline.

/// Appends `s` to `out` as a JSON string literal, including the
/// surrounding quotes.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite float as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn number_into(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display for finite floats is valid
        // JSON except for integral values like `1` (still valid JSON).
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Validates that `s` is one complete JSON value. Returns the byte
/// offset of the first error. Strict RFC 8259 subset: no trailing
/// commas, no comments.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at offset {}", self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control char in string"),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return self.err("expected exponent digits");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_characters() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert!(validate(&out).is_ok());
    }

    #[test]
    fn numbers_handle_non_finite() {
        let mut out = String::new();
        number_into(1.5, &mut out);
        out.push(' ');
        number_into(f64::NAN, &mut out);
        out.push(' ');
        number_into(f64::INFINITY, &mut out);
        assert_eq!(out, "1.5 null null");
    }

    #[test]
    fn validator_accepts_good_json() {
        for good in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"c\n"}],"d":null}"#,
            "  [ 1 , 2 ]  ",
        ] {
            assert!(validate(good).is_ok(), "{good}");
        }
    }

    #[test]
    fn validator_rejects_bad_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{'a':1}",
            "{\"a\":}",
            "01e",
            "1.",
            "nul",
            "[1] extra",
            "\"unterminated",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }
}
