//! Autodiff & training report: joint forward+backward planning against
//! separately-optimized passes, cached-epoch speedup of the training
//! loop, and the cost of deriving gradients at all.
//!
//! ```sh
//! cargo run --release -p matopt-bench --bin bench_pr10            # table
//! cargo run --release -p matopt-bench --bin bench_pr10 -- --json  # + BENCH_PR10.json
//! ```
//!
//! Phase 1 (joint vs separate): plan the autodiff-derived FFNN
//! training DAG as one graph, then re-plan it the way a system without
//! joint planning would — forward pass optimized alone, every forward
//! vertex a gradient consumes materialized as a *source* of the
//! backward graph in whatever format the forward-only plan picked.
//! The joint plan sees gradient consumers when choosing boundary
//! formats, so it can never cost more than forward-cost +
//! backward-cost (asserted per scale), and across all scales measured
//! the total cost must be **strictly** lower — at some scales the
//! passes' format preferences happen to agree and the plans tie, but
//! wherever they disagree only the joint optimizer wins the boundary.
//!
//! Phase 2 (cached epochs): run the multi-epoch training loop with
//! plan reuse on and off. Reuse must hit the cache on every epoch
//! after the first, spend strictly less optimizer time (full mode),
//! and — because a cache hit replays the *same* annotation the fresh
//! optimizer would deterministically re-derive — leave every loss bit
//! identical.
//!
//! Phase 3 (derivation overhead): building the joint graph (forward
//! construction *plus* reverse-mode differentiation) must cost less
//! than 5% of one frontier-DP optimization of it — differentiating is
//! a graph walk, and it must stay negligible next to planning.
//!
//! `MATOPT_BENCH_QUICK=1` shrinks scales and skips the
//! timing-sensitive margins (optimizer-seconds speedup) so CI smoke
//! runs stay fast; structural assertions (strict joint-vs-separate
//! cost gap, cache hits, bit-identical losses, the 5% derivation
//! bound) hold in both modes.

use matopt_bench::Json;
use matopt_core::{
    Cluster, ComputeGraph, DiffRole, FormatCatalog, ImplRegistry, NodeId, NodeKind, PhysFormat,
    PlanContext,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{train, AdaptiveConfig, DistRelation, EpochPlanSource, TrainConfig, TrainSpec};
use matopt_graphs::{ffnn_training_graph, FfnnConfig, FfnnTraining};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;
use std::time::Instant;

/// One scale of the phase-1 joint-vs-separate comparison.
struct GapRow {
    label: String,
    vertices: usize,
    joint_cost: f64,
    forward_cost: f64,
    backward_cost: f64,
    boundary_sources: usize,
}

impl GapRow {
    fn separate_cost(&self) -> f64 {
        self.forward_cost + self.backward_cost
    }
    fn gap(&self) -> f64 {
        self.separate_cost() / self.joint_cost
    }
}

/// The forward prefix length of a training graph: autodiff appends
/// every gradient/update/loss vertex after the forward pass, so roles
/// are a `Forward|Shared` prefix followed by a `Backward` suffix.
fn forward_prefix(roles: &[DiffRole]) -> usize {
    let k = roles
        .iter()
        .position(|r| *r == DiffRole::Backward)
        .unwrap_or(roles.len());
    assert!(
        roles[k..].iter().all(|r| *r == DiffRole::Backward),
        "training graphs keep the tape contiguous after the forward prefix"
    );
    k
}

/// Rebuilds the forward prefix as its own graph (ids map 1:1).
fn forward_graph(graph: &ComputeGraph, k: usize) -> ComputeGraph {
    let mut g = ComputeGraph::new();
    for (id, node) in graph.iter().take(k) {
        match &node.kind {
            NodeKind::Source { format } => {
                g.add_source_named(node.mtype, *format, node.name.as_deref());
            }
            NodeKind::Compute { .. } => {
                let op = node.op().expect("compute vertex");
                g.add_op_named(op, &node.inputs, node.name.as_deref())
                    .expect("forward prefix re-typechecks");
            }
        }
        let _ = id;
    }
    g
}

/// Rebuilds the backward suffix with every forward vertex it consumes
/// materialized as a source, fixed in the format the forward-only plan
/// chose (its declared source format when the boundary vertex *is* a
/// source). Returns the graph and the boundary-source count.
fn backward_graph(
    graph: &ComputeGraph,
    k: usize,
    fwd_plan: &matopt_core::Annotation,
) -> (ComputeGraph, usize) {
    let mut g = ComputeGraph::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut boundary = 0usize;
    for (id, node) in graph.iter().skip(k) {
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for input in &node.inputs {
            let mapped = match map.get(input) {
                Some(m) => *m,
                None => {
                    assert!(
                        input.index() < k,
                        "unmapped input must be a boundary vertex"
                    );
                    let src = graph.node(*input);
                    let format = match src.kind {
                        NodeKind::Source { format } => format,
                        NodeKind::Compute { .. } => {
                            fwd_plan.choices[input.index()]
                                .as_ref()
                                .expect("forward plan annotates every compute vertex")
                                .output_format
                        }
                    };
                    boundary += 1;
                    let m = g.add_source_named(src.mtype, format, src.name.as_deref());
                    map.insert(*input, m);
                    m
                }
            };
            inputs.push(mapped);
        }
        let mapped = g
            .add_op_named(
                node.op().expect("tape vertex is compute"),
                &inputs,
                node.name.as_deref(),
            )
            .expect("tape re-typechecks");
        map.insert(id, mapped);
    }
    (g, boundary)
}

/// Phase 1 at one scale: joint plan vs forward-then-backward plans.
fn measure_gap(
    label: &str,
    t: &FfnnTraining,
    ctx: &PlanContext<'_>,
    catalog: &FormatCatalog,
    beam: usize,
) -> GapRow {
    let octx = OptContext::new(ctx, catalog, &AnalyticalCostModel);
    let joint = frontier_dp_beam(&t.graph, &octx, beam).expect("joint plan");
    let k = forward_prefix(&t.roles);
    let fwd = forward_graph(&t.graph, k);
    let fwd_plan = frontier_dp_beam(&fwd, &octx, beam).expect("forward plan");
    let (bwd, boundary) = backward_graph(&t.graph, k, &fwd_plan.annotation);
    let bwd_plan = frontier_dp_beam(&bwd, &octx, beam).expect("backward plan");
    GapRow {
        label: label.to_string(),
        vertices: t.graph.len(),
        joint_cost: joint.cost,
        forward_cost: fwd_plan.cost,
        backward_cost: bwd_plan.cost,
        boundary_sources: boundary,
    }
}

/// Deterministic laptop-scale training inputs (one-hot labels,
/// 0.1-scaled parameters) — the same recipe `matopt train` uses.
fn train_inputs(t: &FfnnTraining) -> HashMap<NodeId, DistRelation> {
    let mut rng = seeded_rng(42);
    let mut inputs = HashMap::new();
    for (id, node) in t.graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let (r, c) = (node.mtype.rows as usize, node.mtype.cols as usize);
            let d = if id == t.y {
                let mut m = DenseMatrix::zeros(r, c);
                for row in 0..r {
                    m.set(row, (row * 7 + 3) % c, 1.0);
                }
                m
            } else {
                random_dense_normal(r, c, &mut rng).map(|v| v * 0.1)
            };
            inputs.insert(
                id,
                DistRelation::from_dense(&d, *format).expect("chunkable"),
            );
        }
    }
    inputs
}

fn train_spec(t: &FfnnTraining) -> TrainSpec {
    TrainSpec {
        graph: t.graph.clone(),
        params: t.weights.iter().chain(t.biases.iter()).copied().collect(),
        updated: t
            .updated_weights
            .iter()
            .chain(t.updated_biases.iter())
            .copied()
            .collect(),
        loss: t.loss,
    }
}

fn laptop_catalog() -> FormatCatalog {
    FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 16 },
        PhysFormat::RowStrip { height: 16 },
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.first().map(String::as_str) {
        Some("--json") => Some(
            args.get(1)
                .cloned()
                .unwrap_or_else(|| "BENCH_PR10.json".to_string()),
        ),
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: bench_pr10 [--json [PATH]]");
            std::process::exit(2);
        }
        None => None,
    };
    let quick = std::env::var("MATOPT_BENCH_QUICK").is_ok();
    let registry = ImplRegistry::extended();

    println!("== Phase 1: joint forward+backward planning vs separate ==");
    let beam = if quick { 200 } else { 1000 };
    let laptop_ctx = PlanContext::new(&registry, Cluster::simsql_like(4));
    let paper_ctx = PlanContext::new(&registry, Cluster::simsql_like(10));
    let paper_catalog = FormatCatalog::paper_default().dense_only();
    let mut rows = Vec::new();
    let laptop_scales: &[u64] = if quick { &[16, 32] } else { &[16, 32, 64] };
    for hidden in laptop_scales {
        let t = ffnn_training_graph(FfnnConfig::laptop(*hidden)).expect("well-typed");
        rows.push(measure_gap(
            &format!("ffnn-train:{hidden} (laptop)"),
            &t,
            &laptop_ctx,
            &laptop_catalog(),
            beam,
        ));
    }
    let simsql_hidden: u64 = if quick { 40 } else { 80 };
    let t = ffnn_training_graph(FfnnConfig::simsql_experiment(simsql_hidden)).expect("well-typed");
    rows.push(measure_gap(
        &format!("ffnn-train:{simsql_hidden} (SimSQL scale)"),
        &t,
        &paper_ctx,
        &paper_catalog,
        beam,
    ));
    for row in &rows {
        println!(
            "  {:<28} {:>3} vertices, {} boundary sources: joint {:.3}s vs \
             separate {:.3}s (fwd {:.3} + bwd {:.3}) -- {:.3}x gap",
            row.label,
            row.vertices,
            row.boundary_sources,
            row.joint_cost,
            row.separate_cost(),
            row.forward_cost,
            row.backward_cost,
            row.gap()
        );
        // Per scale the passes may tie (their format preferences can
        // agree), but joint planning must never lose to the split.
        assert!(
            row.joint_cost <= row.separate_cost() * (1.0 + 1e-9),
            "{}: joint planning must never cost more than separately-optimized \
             passes (joint {:.6}s vs separate {:.6}s)",
            row.label,
            row.joint_cost,
            row.separate_cost()
        );
    }
    let total_joint: f64 = rows.iter().map(|r| r.joint_cost).sum();
    let total_separate: f64 = rows.iter().map(|r| r.separate_cost()).sum();
    println!(
        "  total: joint {total_joint:.3}s vs separate {total_separate:.3}s \
         -- {:.3}x gap",
        total_separate / total_joint
    );
    assert!(
        total_joint < total_separate,
        "joint planning must be strictly cheaper in total \
         (joint {total_joint:.6}s vs separate {total_separate:.6}s)"
    );

    println!("== Phase 2: cached epochs in the training loop ==");
    let epochs = if quick { 3 } else { 6 };
    let t = ffnn_training_graph(FfnnConfig::laptop(32)).expect("well-typed");
    let spec = train_spec(&t);
    let inputs = train_inputs(&t);
    let catalog = laptop_catalog();
    let run_loop = |reuse_plans: bool| {
        let config = TrainConfig {
            epochs,
            adaptive: AdaptiveConfig {
                beam: 300,
                ..AdaptiveConfig::default()
            },
            reuse_plans,
        };
        train(
            &spec,
            &inputs,
            &laptop_ctx,
            &catalog,
            &AnalyticalCostModel,
            &config,
        )
        .expect("training runs")
    };
    let cached = run_loop(true);
    let uncached = run_loop(false);
    let opt_secs =
        |run: &matopt_engine::TrainRun| -> f64 { run.epochs.iter().map(|e| e.opt_seconds).sum() };
    let (cached_opt, uncached_opt) = (opt_secs(&cached), opt_secs(&uncached));
    println!(
        "  {epochs} epochs: cached spends {cached_opt:.4}s in the optimizer \
         ({} hits, {} drift invalidations), uncached spends {uncached_opt:.4}s \
         -- {:.2}x less planning",
        cached.cache_hits,
        cached.cache_invalidations,
        uncached_opt / cached_opt
    );
    assert_eq!(
        cached.cache_hits,
        epochs - 1,
        "every epoch after the first must hit the plan cache"
    );
    for e in &cached.epochs[1..] {
        assert_eq!(e.plan, EpochPlanSource::CacheHit, "epoch {}", e.epoch);
    }
    assert_eq!(uncached.cache_hits, 0);
    let bits = |run: &matopt_engine::TrainRun| -> Vec<u64> {
        run.losses().iter().map(|l| l.to_bits()).collect()
    };
    assert_eq!(
        bits(&cached),
        bits(&uncached),
        "plan caching must not change a bit of the loss trajectory"
    );
    assert!(
        cached.monotone_non_increasing(),
        "full-batch GD must not increase the loss: {:?}",
        cached.losses()
    );
    if !quick {
        assert!(
            cached_opt < uncached_opt,
            "reused plans must spend less optimizer time ({cached_opt:.4}s vs {uncached_opt:.4}s)"
        );
    }

    println!("== Phase 3: autodiff derivation overhead ==");
    let reps = if quick { 3 } else { 10 };
    let cfg = FfnnConfig::laptop(32);
    let mut derive_best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        std::hint::black_box(ffnn_training_graph(cfg).expect("well-typed"));
        derive_best = derive_best.min(started.elapsed().as_secs_f64());
    }
    let joint = ffnn_training_graph(cfg).expect("well-typed");
    let octx = OptContext::new(&laptop_ctx, &catalog, &AnalyticalCostModel);
    let mut opt_best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        std::hint::black_box(frontier_dp_beam(&joint.graph, &octx, 300).expect("plans"));
        opt_best = opt_best.min(started.elapsed().as_secs_f64());
    }
    let ratio = derive_best / opt_best;
    println!(
        "  build+differentiate ffnn-train:32 in {:.1}us vs one frontier-DP \
         optimization {:.1}us -- {:.2}% of optimizer time",
        derive_best * 1e6,
        opt_best * 1e6,
        ratio * 100.0
    );
    assert!(
        ratio < 0.05,
        "deriving gradients must stay below 5% of optimizer time (measured {:.2}%)",
        ratio * 100.0
    );

    if let Some(path) = json_path {
        let report = Json::obj([
            ("pr", Json::Int(10)),
            (
                "mode",
                Json::Str(if quick { "quick" } else { "full" }.into()),
            ),
            (
                "joint_vs_separate",
                Json::Arr(
                    rows.iter()
                        .map(|row| {
                            Json::obj([
                                ("workload", Json::Str(row.label.clone())),
                                ("vertices", Json::Int(row.vertices as i64)),
                                ("boundary_sources", Json::Int(row.boundary_sources as i64)),
                                ("joint_cost_s", Json::Num(row.joint_cost)),
                                ("forward_cost_s", Json::Num(row.forward_cost)),
                                ("backward_cost_s", Json::Num(row.backward_cost)),
                                ("separate_cost_s", Json::Num(row.separate_cost())),
                                ("gap", Json::Num(row.gap())),
                                (
                                    "joint_strictly_cheaper",
                                    Json::Bool(row.joint_cost < row.separate_cost()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "joint_vs_separate_total",
                Json::obj([
                    ("joint_cost_s", Json::Num(total_joint)),
                    ("separate_cost_s", Json::Num(total_separate)),
                    ("gap", Json::Num(total_separate / total_joint)),
                    ("strict", Json::Bool(true)),
                ]),
            ),
            (
                "cached_epochs",
                Json::obj([
                    ("workload", Json::str("ffnn-train:32 (laptop)")),
                    ("epochs", Json::Int(epochs as i64)),
                    ("cache_hits", Json::Int(cached.cache_hits as i64)),
                    (
                        "drift_invalidations",
                        Json::Int(cached.cache_invalidations as i64),
                    ),
                    ("cached_opt_seconds", Json::Num(cached_opt)),
                    ("uncached_opt_seconds", Json::Num(uncached_opt)),
                    ("planning_speedup", Json::Num(uncached_opt / cached_opt)),
                    ("loss_trajectory_bit_exact", Json::Bool(true)),
                    (
                        "final_loss",
                        Json::Num(cached.losses().last().copied().unwrap_or(f64::NAN)),
                    ),
                ]),
            ),
            (
                "derivation_overhead",
                Json::obj([
                    ("workload", Json::str("ffnn-train:32 (laptop)")),
                    ("derive_seconds", Json::Num(derive_best)),
                    ("optimize_seconds", Json::Num(opt_best)),
                    ("fraction_of_optimizer", Json::Num(ratio)),
                    ("under_5_percent", Json::Bool(true)),
                ]),
            ),
        ]);
        std::fs::write(&path, report.pretty())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
