//! Regenerates fig12 of the paper. See EXPERIMENTS.md.
use matopt_bench::{figures, Env};

fn main() {
    println!("{}", figures::fig12(&Env::new()));
}
