//! Cost-model drift detection: the measure half of the
//! predict → measure → recalibrate loop.
//!
//! The optimizer picks implementations because the cost model says
//! they are cheapest; if the model's predictions stop matching measured
//! reality (data distribution shifted, hardware degraded, a kernel
//! regressed), every cached plan quietly becomes the wrong plan. The
//! [`DriftMonitor`] watches the measured/predicted runtime ratio per
//! plan key (the serving layer keys it by plan fingerprint) and reports
//! when that ratio has drifted out of band, so the caller can
//! invalidate stale plans and re-optimize.
//!
//! Absolute ratios are deliberately *not* compared against 1.0: the
//! analytic model predicts seconds on the modeled cluster while
//! measurements come from wherever the plan actually ran, so a large
//! constant factor is expected and healthy. Instead the monitor learns
//! each key's **baseline** ratio from its first
//! [`DriftConfig::baseline_window`] observations and then tracks an
//! EWMA of the ratio relative to that baseline. Systematic scaling
//! cancels; *changes* do not.
//!
//! Firing discipline: a key fires after
//! [`DriftConfig::min_observations`] consecutive out-of-band samples
//! with the EWMA itself out of band, and then **latches** — persistent
//! drift produces exactly one event (and therefore exactly one
//! plan-cache epoch bump downstream), not an invalidation storm.
//! [`DriftMonitor::reset`] re-arms every key; callers invoke it when a
//! recalibrated model lands, because new predictions deserve a fresh
//! baseline.

use std::collections::HashMap;
use std::sync::Mutex;

/// Tuning for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher weighs recent
    /// observations more.
    pub ewma_alpha: f64,
    /// Observations used to establish a key's baseline ratio before
    /// drift is judged at all.
    pub baseline_window: u32,
    /// Consecutive out-of-band observations (with the EWMA also out of
    /// band) required before a key fires — the K of "after K
    /// out-of-band observations".
    pub min_observations: u32,
    /// Relative band half-width: a ratio is in band while it stays
    /// within `[baseline / (1 + band), baseline * (1 + band)]`.
    pub band: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            ewma_alpha: 0.3,
            baseline_window: 4,
            min_observations: 8,
            band: 0.5,
        }
    }
}

/// One detected drift: emitted at most once per key between resets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// The key that drifted (the serving layer uses the plan
    /// fingerprint).
    pub key: u128,
    /// The learned baseline measured/predicted ratio.
    pub baseline: f64,
    /// The EWMA ratio at firing time.
    pub ewma: f64,
    /// `ewma / baseline` — how far reality moved from the calibrated
    /// relationship (&gt; 1: slower than predicted, &lt; 1: faster).
    pub drift: f64,
    /// Total observations for the key when it fired.
    pub observations: u32,
}

/// Per-key tracking state.
#[derive(Debug, Clone, Copy, Default)]
struct KeyState {
    baseline_sum: f64,
    baseline: f64,
    ewma: f64,
    observations: u32,
    consecutive_out: u32,
    fired: bool,
}

/// Tracks measured/predicted runtime ratios per key and reports
/// out-of-band drift. Thread-safe; observation is a short mutex hold
/// on a small map (this sits on the once-per-execution path, not the
/// per-event hot path).
#[derive(Debug, Default)]
pub struct DriftMonitor {
    config: DriftConfig,
    keys: Mutex<HashMap<u128, KeyState>>,
}

impl DriftMonitor {
    /// A monitor with the given tuning.
    pub fn new(config: DriftConfig) -> Self {
        DriftMonitor {
            config,
            keys: Mutex::new(HashMap::new()),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Feeds one measurement for `key`. Returns a [`DriftEvent`] the
    /// single time the key's ratio is judged to have drifted out of
    /// band (see the module docs for the firing discipline).
    ///
    /// Non-finite or non-positive inputs are ignored: a failed or
    /// zero-cost run says nothing about model quality.
    pub fn observe(
        &self,
        key: u128,
        predicted_seconds: f64,
        measured_seconds: f64,
    ) -> Option<DriftEvent> {
        let usable = predicted_seconds > 0.0
            && measured_seconds > 0.0
            && predicted_seconds.is_finite()
            && measured_seconds.is_finite();
        if !usable {
            return None;
        }
        let ratio = measured_seconds / predicted_seconds;
        let mut keys = self.keys.lock().expect("drift monitor");
        let s = keys.entry(key).or_default();
        s.observations += 1;

        if s.observations <= self.config.baseline_window {
            s.baseline_sum += ratio;
            s.baseline = s.baseline_sum / f64::from(s.observations);
            s.ewma = s.baseline;
            return None;
        }

        s.ewma = self.config.ewma_alpha * ratio + (1.0 - self.config.ewma_alpha) * s.ewma;
        let hi = s.baseline * (1.0 + self.config.band);
        let lo = s.baseline / (1.0 + self.config.band);
        if ratio > hi || ratio < lo {
            s.consecutive_out += 1;
        } else {
            s.consecutive_out = 0;
        }
        let ewma_out = s.ewma > hi || s.ewma < lo;
        if !s.fired && ewma_out && s.consecutive_out >= self.config.min_observations {
            s.fired = true;
            return Some(DriftEvent {
                key,
                baseline: s.baseline,
                ewma: s.ewma,
                drift: s.ewma / s.baseline,
                observations: s.observations,
            });
        }
        None
    }

    /// The current EWMA ratio for `key`, once its baseline exists.
    pub fn ratio(&self, key: u128) -> Option<f64> {
        self.keys
            .lock()
            .expect("drift monitor")
            .get(&key)
            .filter(|s| s.observations > 0)
            .map(|s| s.ewma)
    }

    /// True when `key` has fired and not been reset.
    pub fn is_latched(&self, key: u128) -> bool {
        self.keys
            .lock()
            .expect("drift monitor")
            .get(&key)
            .is_some_and(|s| s.fired)
    }

    /// Keys currently tracked.
    pub fn len(&self) -> usize {
        self.keys.lock().expect("drift monitor").len()
    }

    /// True when no key has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets every key: baselines, EWMAs, and latches. Call when a
    /// recalibrated cost model replaces the one the baselines were
    /// learned against.
    pub fn reset(&self) {
        self.keys.lock().expect("drift monitor").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DriftConfig {
        DriftConfig {
            ewma_alpha: 0.5,
            baseline_window: 4,
            min_observations: 3,
            band: 0.5,
        }
    }

    #[test]
    fn stable_ratios_never_fire_even_far_from_one() {
        // A constant 40x measured/predicted gap (cluster model vs
        // laptop) is calibration, not drift.
        let m = DriftMonitor::new(quick());
        for _ in 0..100 {
            assert_eq!(m.observe(1, 1.0, 40.0), None);
        }
        assert!(!m.is_latched(1));
        let r = m.ratio(1).unwrap();
        assert!((r - 40.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_drift_fires_exactly_once() {
        let m = DriftMonitor::new(quick());
        // Baseline at ratio 2.0.
        for _ in 0..4 {
            assert_eq!(m.observe(7, 1.0, 2.0), None);
        }
        // Kernels suddenly 3x slower than the calibrated relationship.
        let mut events = Vec::new();
        for _ in 0..50 {
            if let Some(e) = m.observe(7, 1.0, 6.0) {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1, "persistent drift must latch");
        let e = events[0];
        assert_eq!(e.key, 7);
        assert!((e.baseline - 2.0).abs() < 1e-9);
        assert!(e.drift > 1.5, "drift {} should be out of band", e.drift);
        assert!(m.is_latched(7));
    }

    #[test]
    fn transient_spikes_do_not_fire() {
        let m = DriftMonitor::new(quick());
        for _ in 0..4 {
            m.observe(1, 1.0, 2.0);
        }
        // Two out-of-band samples (below min_observations = 3), then
        // recovery — consecutive counter resets.
        for _ in 0..10 {
            assert_eq!(m.observe(1, 1.0, 9.0), None);
            assert_eq!(m.observe(1, 1.0, 9.0), None);
            assert_eq!(m.observe(1, 1.0, 2.0), None);
            assert_eq!(m.observe(1, 1.0, 2.0), None);
        }
    }

    #[test]
    fn keys_are_independent_and_reset_rearms() {
        let m = DriftMonitor::new(quick());
        for _ in 0..4 {
            m.observe(1, 1.0, 1.0);
            m.observe(2, 1.0, 1.0);
        }
        let fired: Vec<bool> = (0..10).map(|_| m.observe(1, 1.0, 5.0).is_some()).collect();
        assert_eq!(fired.iter().filter(|f| **f).count(), 1);
        assert!(m.is_latched(1));
        assert!(!m.is_latched(2), "key 2 never drifted");
        assert_eq!(m.len(), 2);

        m.reset();
        assert!(m.is_empty());
        // After reset the same key re-learns a baseline and can fire
        // again.
        for _ in 0..4 {
            m.observe(1, 1.0, 5.0);
        }
        let refired = (0..10).any(|_| m.observe(1, 1.0, 25.0).is_some());
        assert!(refired);
    }

    #[test]
    fn degenerate_inputs_are_ignored() {
        let m = DriftMonitor::new(quick());
        assert_eq!(m.observe(1, 0.0, 1.0), None);
        assert_eq!(m.observe(1, 1.0, 0.0), None);
        assert_eq!(m.observe(1, -1.0, 1.0), None);
        assert_eq!(m.observe(1, f64::NAN, 1.0), None);
        assert_eq!(m.observe(1, 1.0, f64::INFINITY), None);
        assert!(m.is_empty() || m.ratio(1).is_none());
    }

    #[test]
    fn concurrent_observers_on_one_key_fire_exactly_once() {
        // The serve layer feeds one monitor from every worker thread;
        // the latch must hold under that contention: persistent drift
        // reported by N racing observers still produces exactly one
        // event, and the EWMA is never torn (it stays inside the convex
        // hull of the ratios ever fed).
        let m = DriftMonitor::new(quick());
        for _ in 0..4 {
            m.observe(7, 1.0, 2.0);
        }
        let threads = 8;
        let rounds = 200;
        let fired = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..rounds {
                        if m.observe(7, 1.0, 6.0).is_some() {
                            fired.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(
            fired.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "concurrent observers must share one latch"
        );
        assert!(m.is_latched(7));
        let r = m.ratio(7).expect("key tracked");
        assert!(
            (2.0..=6.0).contains(&r) && r.is_finite(),
            "torn EWMA: {r} outside the fed ratio range [2, 6]"
        );
    }

    #[test]
    fn concurrent_observers_keep_keys_independent() {
        // Each thread drives its own key through baseline + drift while
        // the others hammer theirs; every key fires exactly once and no
        // cross-key state leaks.
        let m = DriftMonitor::new(quick());
        let threads = 8u128;
        std::thread::scope(|scope| {
            for key in 0..threads {
                let m = &m;
                scope.spawn(move || {
                    for _ in 0..4 {
                        m.observe(key, 1.0, 2.0);
                    }
                    let fired = (0..100)
                        .filter(|_| m.observe(key, 1.0, 8.0).is_some())
                        .count();
                    assert_eq!(fired, 1, "key {key} fired {fired} times");
                });
            }
        });
        assert_eq!(m.len(), threads as usize);
        for key in 0..threads {
            assert!(m.is_latched(key));
        }
    }

    #[test]
    fn faster_than_predicted_also_counts_as_drift() {
        let m = DriftMonitor::new(quick());
        for _ in 0..4 {
            m.observe(1, 1.0, 10.0);
        }
        let fired = (0..10).filter(|_| m.observe(1, 1.0, 1.0).is_some()).count();
        assert_eq!(fired, 1);
    }
}
