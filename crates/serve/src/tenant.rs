//! Multi-tenant configuration and per-tenant accounting for the
//! [`crate::FrontDoor`].
//!
//! A *tenant* is a named client population sharing quotas: a cap on
//! requests in flight, an optional per-execution memory carve-out, a
//! weighted-fair-queueing weight, and an optional latency SLO the
//! bench harness asserts isolation against. Tenants not explicitly
//! configured get [`TenancyConfig::default_tenant`].
//!
//! Tenancy can be disabled wholesale ([`TenancyConfig::disabled`]):
//! the front door then skips quota checks, fair queueing, and
//! per-tenant accounting, and the `tenancy_overhead` bench gates that
//! disabled path at < 2% over calling the executor directly.

use matopt_obs::HistogramSnapshot;
use std::collections::HashMap;

/// Quotas and scheduling parameters for one tenant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Requests (plan or execute) this tenant may have in flight at
    /// once — queued, batched, or running. The next one is rejected
    /// with [`crate::ServeError::QuotaExceeded`].
    pub max_inflight: usize,
    /// Per-execution memory carve-out in bytes (`None` = no explicit
    /// clamp beyond the shared pool lease).
    pub mem_bytes: Option<u64>,
    /// Weighted-fair-queueing weight: a tenant with weight 2 drains
    /// its queue twice as fast as a tenant with weight 1 under
    /// contention. Minimum 1.
    pub weight: u32,
    /// Latency SLO in milliseconds (reported in stats and asserted by
    /// the soak bench; the front door itself does not enforce it).
    pub slo_ms: Option<u64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            max_inflight: 64,
            mem_bytes: None,
            weight: 1,
            slo_ms: None,
        }
    }
}

/// Front-door tenancy configuration.
#[derive(Debug, Clone)]
pub struct TenancyConfig {
    /// `false` turns the whole tenancy layer off: no quotas, no fair
    /// queueing, no per-tenant bookkeeping (the < 2% overhead path).
    pub enabled: bool,
    /// Quotas for tenants not listed in [`TenancyConfig::tenants`].
    pub default_tenant: TenantConfig,
    /// Explicit per-tenant overrides.
    pub tenants: HashMap<String, TenantConfig>,
}

impl TenancyConfig {
    /// Tenancy off: every request is admitted as the anonymous tenant
    /// with no quota checks.
    #[must_use]
    pub fn disabled() -> Self {
        TenancyConfig {
            enabled: false,
            default_tenant: TenantConfig::default(),
            tenants: HashMap::new(),
        }
    }

    /// Tenancy on with the given default quotas.
    #[must_use]
    pub fn with_default(default_tenant: TenantConfig) -> Self {
        TenancyConfig {
            enabled: true,
            default_tenant,
            tenants: HashMap::new(),
        }
    }

    /// Adds or replaces one tenant's explicit quotas.
    #[must_use]
    pub fn tenant(mut self, name: &str, config: TenantConfig) -> Self {
        self.tenants.insert(name.to_string(), config);
        self
    }

    /// The effective config for `name`.
    #[must_use]
    pub fn for_tenant(&self, name: &str) -> TenantConfig {
        self.tenants
            .get(name)
            .copied()
            .unwrap_or(self.default_tenant)
    }
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig::with_default(TenantConfig::default())
    }
}

/// Point-in-time accounting for one tenant, from
/// [`crate::FrontDoor::tenant_stats`].
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// The tenant's name.
    pub name: String,
    /// The quotas it ran under.
    pub config: TenantConfig,
    /// Requests admitted past the quota check (plan + execute).
    pub requests: u64,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Requests rejected with `QuotaExceeded`.
    pub quota_rejects: u64,
    /// Queued executions shed because their deadline passed.
    pub shed: u64,
    /// Requests that failed (optimizer or executor errors).
    pub errors: u64,
    /// Executions answered from another request's batched run.
    pub batched: u64,
    /// Requests currently in flight.
    pub inflight: usize,
    /// End-to-end latency distribution (microseconds).
    pub latency_us: HistogramSnapshot,
}

impl TenantStats {
    /// The latency quantile `q` in microseconds (0 with no samples).
    #[must_use]
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        if self.latency_us.count() == 0 {
            0
        } else {
            self.latency_us.quantile(q)
        }
    }

    /// Whether the tenant's p99 met its SLO (`None` when no SLO or no
    /// samples).
    #[must_use]
    pub fn slo_met(&self) -> Option<bool> {
        let slo = self.config.slo_ms?;
        if self.latency_us.count() == 0 {
            return None;
        }
        Some(self.latency_quantile_us(0.99) <= slo.saturating_mul(1000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_fall_back_to_default() {
        let cfg = TenancyConfig::with_default(TenantConfig {
            max_inflight: 8,
            ..Default::default()
        })
        .tenant(
            "vip",
            TenantConfig {
                max_inflight: 128,
                weight: 4,
                ..Default::default()
            },
        );
        assert_eq!(cfg.for_tenant("vip").max_inflight, 128);
        assert_eq!(cfg.for_tenant("vip").weight, 4);
        assert_eq!(cfg.for_tenant("anyone-else").max_inflight, 8);
        assert!(cfg.enabled);
        assert!(!TenancyConfig::disabled().enabled);
    }
}
