//! Installation-time calibration (§7): "our implementation runs a set
//! of benchmark computations for which it collects the running time,
//! and then it uses the ... analytically-computed features along with
//! those running times as input into a regression that is performed for
//! each operation."
//!
//! [`collect_samples`] executes a curated set of single-operation
//! micro-benchmarks on the real executor across several sizes and
//! layouts, pairing each measured wall time with its analytic feature
//! vector. [`matopt_cost::LearnedCostModel::fit`] turns the samples
//! into the learned cost model.

use crate::exec::execute_plan;
use crate::value::DistRelation;
use matopt_core::{
    Annotation, Cluster, ComputeGraph, ImplRegistry, MatrixType, NodeId, Op, PhysFormat,
    PlanContext, Transform, VertexChoice,
};
use matopt_cost::{sample_residuals, CostKey, CostSample, LearnedCostModel};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};
use matopt_obs::{Obs, Subsystem};
use std::collections::HashMap;
use std::time::Instant;

/// One calibration micro-benchmark: a single op over inputs of the
/// given shapes, each stored in the given format, run through the named
/// implementation.
struct MicroBench {
    op: Op,
    impl_name: &'static str,
    shapes: Vec<(usize, usize)>,
    formats: Vec<PhysFormat>,
}

fn curated(scale: usize) -> Vec<MicroBench> {
    let s = scale; // base edge length
    let tile = PhysFormat::Tile {
        side: (s / 4) as u64,
    };
    let rs = PhysFormat::RowStrip {
        height: (s / 4) as u64,
    };
    let cs = PhysFormat::ColStrip {
        width: (s / 4) as u64,
    };
    let single = PhysFormat::SingleTuple;
    vec![
        MicroBench {
            op: Op::MatMul,
            impl_name: "mm_single_local",
            shapes: vec![(s, s), (s, s)],
            formats: vec![single, single],
        },
        MicroBench {
            op: Op::MatMul,
            impl_name: "mm_tile_shuffle",
            shapes: vec![(s, s), (s, s)],
            formats: vec![tile, tile],
        },
        MicroBench {
            op: Op::MatMul,
            impl_name: "mm_rowstrip_bcast_single",
            shapes: vec![(s, s), (s, s / 2)],
            formats: vec![rs, single],
        },
        MicroBench {
            op: Op::MatMul,
            impl_name: "mm_rowstrip_colstrip_cross",
            shapes: vec![(s, s), (s, s)],
            formats: vec![rs, cs],
        },
        MicroBench {
            op: Op::Add,
            impl_name: "add_copart",
            shapes: vec![(s, s), (s, s)],
            formats: vec![tile, tile],
        },
        MicroBench {
            op: Op::Hadamard,
            impl_name: "hadamard_copart",
            shapes: vec![(s, s), (s, s)],
            formats: vec![tile, tile],
        },
        MicroBench {
            op: Op::Relu,
            impl_name: "relu_map",
            shapes: vec![(s, s)],
            formats: vec![tile],
        },
        MicroBench {
            op: Op::Softmax,
            impl_name: "softmax_rowaligned",
            shapes: vec![(s, s)],
            formats: vec![rs],
        },
        MicroBench {
            op: Op::Transpose,
            impl_name: "transpose_chunkwise",
            shapes: vec![(s, s)],
            formats: vec![tile],
        },
        MicroBench {
            op: Op::RowSums,
            impl_name: "rowsums_tile_shuffle",
            shapes: vec![(s, s)],
            formats: vec![tile],
        },
        MicroBench {
            op: Op::Inverse,
            impl_name: "inv_single_local",
            shapes: vec![(s / 2, s / 2)],
            formats: vec![single],
        },
    ]
}

/// Runs the calibration suite at several scales and returns the
/// `(features, measured seconds)` samples for the regression, covering
/// both implementations and transformations.
///
/// `scales` are base matrix edge lengths (e.g. `[128, 256, 384]`);
/// `seed` fixes the generated payloads.
pub fn collect_samples(scales: &[usize], seed: u64, cluster: &Cluster) -> Vec<CostSample> {
    collect_samples_traced(scales, seed, cluster, &Obs::disabled())
}

/// [`collect_samples`] with observability: wraps the suite in a
/// `calibrate` span and each scale in a `calibration_scale` span, and
/// emits one `calib_sample` record per measurement, all under
/// [`Subsystem::Calibration`].
pub fn collect_samples_traced(
    scales: &[usize],
    seed: u64,
    cluster: &Cluster,
    obs: &Obs,
) -> Vec<CostSample> {
    let _run = obs.span_with(Subsystem::Calibration, "calibrate", || {
        vec![
            ("scales", scales.len().into()),
            ("seed", (seed as i64).into()),
        ]
    });
    let registry = ImplRegistry::paper_default();
    let ctx = PlanContext::new(&registry, *cluster);
    let mut rng = seeded_rng(seed);
    let mut samples = Vec::new();

    for &scale in scales {
        let _scale_span = obs.span_with(Subsystem::Calibration, "calibration_scale", || {
            vec![("scale", scale.into())]
        });
        for bench in curated(scale) {
            let impl_def = registry
                .by_name(bench.impl_name)
                .expect("curated impl exists");
            // Build the one-op graph.
            let mut g = ComputeGraph::new();
            let mut src_ids: Vec<NodeId> = Vec::new();
            let mut data: HashMap<NodeId, DistRelation> = HashMap::new();
            for ((r, c), fmt) in bench.shapes.iter().zip(bench.formats.iter()) {
                let mt = MatrixType::dense(*r as u64, *c as u64);
                let id = g.add_source(mt, *fmt);
                let dense = calibration_matrix(*r, *c, bench.op, &mut rng);
                data.insert(
                    id,
                    DistRelation::from_dense(&dense, *fmt).expect("chunkable"),
                );
                src_ids.push(id);
            }
            let v = g.add_op(bench.op, &src_ids).expect("type-correct bench");

            // Evaluate features + output format for the chosen impl.
            let inputs: Vec<(MatrixType, PhysFormat)> = bench
                .shapes
                .iter()
                .zip(bench.formats.iter())
                .map(|((r, c), f)| (MatrixType::dense(*r as u64, *c as u64), *f))
                .collect();
            let Some(eval) = impl_def.evaluate(&bench.op, &inputs, &ctx.cluster) else {
                continue;
            };
            let mut ann = Annotation::empty(&g);
            ann.set(
                v,
                VertexChoice {
                    impl_id: impl_def.id,
                    input_transforms: bench
                        .formats
                        .iter()
                        .map(|f| Transform::identity(*f))
                        .collect(),
                    output_format: eval.out_format,
                },
            );

            let t0 = Instant::now();
            if execute_plan(&g, &ann, &data, &registry).is_err() {
                continue;
            }
            let seconds = t0.elapsed().as_secs_f64();
            obs.record(Subsystem::Calibration, "calib_sample", || {
                vec![
                    ("op", format!("{:?}", bench.op.kind()).into()),
                    ("impl", bench.impl_name.into()),
                    ("scale", scale.into()),
                    ("seconds", seconds.into()),
                ]
            });
            samples.push(CostSample {
                key: CostKey::Op(bench.op.kind()),
                features: eval.features,
                seconds,
            });
        }

        // Transformation samples: reformat a matrix through a few
        // representative moves and time them.
        let dense = random_dense_normal(scale, scale, &mut rng);
        let m = MatrixType::dense(scale as u64, scale as u64);
        let tile = PhysFormat::Tile {
            side: (scale / 4) as u64,
        };
        let moves = [
            (tile, PhysFormat::SingleTuple),
            (PhysFormat::SingleTuple, tile),
            (
                tile,
                PhysFormat::RowStrip {
                    height: (scale / 4) as u64,
                },
            ),
            (
                PhysFormat::RowStrip {
                    height: (scale / 4) as u64,
                },
                PhysFormat::ColStrip {
                    width: (scale / 4) as u64,
                },
            ),
        ];
        for (from, to) in moves {
            let Some(t) = ctx.transforms.find(&m, from, to) else {
                continue;
            };
            let features = ctx.transforms.features(&m, from, t, &ctx.cluster);
            let rel = DistRelation::from_dense(&dense, from).expect("chunkable");
            let t0 = Instant::now();
            let _ = rel.reformat(to).expect("reformat");
            let seconds = t0.elapsed().as_secs_f64();
            obs.record(Subsystem::Calibration, "calib_sample", || {
                vec![
                    ("transform", format!("{:?}", t.kind).into()),
                    ("scale", scale.into()),
                    ("seconds", seconds.into()),
                ]
            });
            samples.push(CostSample {
                key: CostKey::Transform(t.kind),
                features,
                seconds,
            });
        }
    }
    samples
}

/// Fits the learned cost model from calibration samples and emits one
/// `fit_residual` record per sample ([`Subsystem::Calibration`]):
/// predicted vs observed seconds of the freshly fitted model on its own
/// training data, plus a closing `fit_summary` record with the mean
/// relative error. This is the installation-time answer to "how good is
/// the regression?".
///
/// # Panics
/// Panics when `samples` is empty (same contract as
/// [`LearnedCostModel::fit`]).
pub fn fit_model_traced(samples: &[CostSample], cluster: &Cluster, obs: &Obs) -> LearnedCostModel {
    let _fit = obs.span_with(Subsystem::Calibration, "fit", || {
        vec![("samples", samples.len().into())]
    });
    let model = LearnedCostModel::fit(samples);
    if obs.enabled() {
        let residuals = sample_residuals(&model, samples, cluster);
        for r in &residuals {
            obs.record(Subsystem::Calibration, "fit_residual", || {
                vec![
                    ("key", format!("{:?}", r.key).into()),
                    ("predicted", r.predicted.into()),
                    ("observed", r.observed.into()),
                    ("rel_error", r.rel_error().into()),
                ]
            });
        }
        obs.record(Subsystem::Calibration, "fit_summary", || {
            vec![
                ("samples", samples.len().into()),
                ("specialized_models", model.specialized_models().into()),
                (
                    "mean_rel_error",
                    matopt_cost::mean_rel_error(&residuals).into(),
                ),
            ]
        });
    }
    model
}

/// Inverse needs a well-conditioned input; everything else takes plain
/// normal data.
fn calibration_matrix(rows: usize, cols: usize, op: Op, rng: &mut impl rand::Rng) -> DenseMatrix {
    let mut d = random_dense_normal(rows, cols, rng);
    if matches!(op, Op::Inverse) {
        for i in 0..rows.min(cols) {
            let v = d.get(i, i) + rows as f64;
            d.set(i, i, v);
        }
    }
    d
}
