//! Matrix types — the set `M` of the paper's formalism (§3).

/// Bytes per dense `f64` entry.
pub const DENSE_ENTRY_BYTES: f64 = 8.0;
/// Bytes per stored sparse entry (value + column index + amortized row
/// pointer, CSR-style).
pub const SPARSE_ENTRY_BYTES: f64 = 16.0;
/// Bytes per relational `(rowIndex, colIndex, value)` triple.
pub const TRIPLE_ENTRY_BYTES: f64 = 24.0;

/// A matrix type: the logical shape of a matrix plus its estimated
/// sparsity.
///
/// This corresponds to the pair `(d, b)` of the paper, specialized to
/// `d ≤ 2` (vectors are `n × 1` or `1 × n` matrices; the paper's
/// experiments never use higher-order tensors). We additionally carry a
/// `sparsity` statistic — the estimated fraction of non-zero entries —
/// because §7 of the paper makes the cost model sparsity-aware and notes
/// that "the sparsity for all inputs can easily be estimated as data are
/// loaded".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixType {
    /// Number of rows.
    pub rows: u64,
    /// Number of columns.
    pub cols: u64,
    /// Estimated fraction of non-zero entries, in `[0, 1]`; `1.0` means
    /// dense.
    pub sparsity: f64,
}

impl MatrixType {
    /// A dense matrix type.
    pub fn dense(rows: u64, cols: u64) -> Self {
        MatrixType {
            rows,
            cols,
            sparsity: 1.0,
        }
    }

    /// A sparse matrix type with the given non-zero fraction.
    ///
    /// # Panics
    /// Panics when `sparsity` is outside `[0, 1]`.
    pub fn sparse(rows: u64, cols: u64, sparsity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity must be in [0, 1]"
        );
        MatrixType {
            rows,
            cols,
            sparsity,
        }
    }

    /// Total number of logical entries.
    pub fn entries(&self) -> f64 {
        self.rows as f64 * self.cols as f64
    }

    /// Estimated number of non-zero entries.
    pub fn nnz(&self) -> f64 {
        self.entries() * self.sparsity
    }

    /// Bytes needed to store this matrix densely.
    pub fn dense_bytes(&self) -> f64 {
        self.entries() * DENSE_ENTRY_BYTES
    }

    /// Bytes needed to store this matrix in a compressed sparse layout.
    pub fn sparse_bytes(&self) -> f64 {
        self.nnz() * SPARSE_ENTRY_BYTES
    }

    /// `true` when this is a (row or column) vector.
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }

    /// `true` for a square matrix.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The transposed type.
    pub fn transposed(&self) -> MatrixType {
        MatrixType {
            rows: self.cols,
            cols: self.rows,
            sparsity: self.sparsity,
        }
    }
}

impl std::fmt::Display for MatrixType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.sparsity < 1.0 {
            write!(f, "{}x{}@{:.2e}", self.rows, self.cols, self.sparsity)
        } else {
            write!(f, "{}x{}", self.rows, self.cols)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_bytes() {
        let m = MatrixType::dense(1000, 1000);
        assert_eq!(m.dense_bytes(), 8e6);
        assert_eq!(m.nnz(), 1e6);
    }

    #[test]
    fn sparse_bytes_scale_with_sparsity() {
        let m = MatrixType::sparse(1000, 1000, 0.01);
        assert_eq!(m.nnz(), 1e4);
        assert_eq!(m.sparse_bytes(), 16.0 * 1e4);
    }

    #[test]
    fn vector_and_square_predicates() {
        assert!(MatrixType::dense(1, 50).is_vector());
        assert!(MatrixType::dense(50, 1).is_vector());
        assert!(!MatrixType::dense(2, 50).is_vector());
        assert!(MatrixType::dense(7, 7).is_square());
    }

    #[test]
    fn transpose_swaps_dims() {
        let m = MatrixType::sparse(3, 9, 0.5).transposed();
        assert_eq!((m.rows, m.cols), (9, 3));
        assert_eq!(m.sparsity, 0.5);
    }

    #[test]
    #[should_panic(expected = "sparsity must be in [0, 1]")]
    fn bad_sparsity_rejected() {
        let _ = MatrixType::sparse(2, 2, 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MatrixType::dense(3, 4).to_string(), "3x4");
        assert_eq!(MatrixType::sparse(3, 4, 0.5).to_string(), "3x4@5.00e-1");
    }
}
