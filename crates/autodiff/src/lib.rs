//! Reverse-mode differentiation of compute graphs.
//!
//! Given a [`ComputeGraph`], a scalar loss vertex (or an explicit
//! adjoint seed), and a set of parameter vertices, this crate appends
//! gradient vertices built from per-[`Op`] vector-Jacobian rules —
//! `dA = dC·Bᵀ`, `dB = Aᵀ·dC` for a matmul, and so on — accumulating
//! fan-out contributions with explicit `Add` vertices.
//!
//! The output is *one* joint forward+backward DAG: the backward tape
//! references forward values (`exp(x)` reuses the forward `Exp` vertex,
//! relu masks reuse the pre-activation) instead of recomputing them, so
//! the existing frontier DP plans the whole training step at once and
//! can exploit exactly that sharing. This is the paper's thesis applied
//! to learning: gradients are just more matrix algebra, so they go
//! through the same optimizer instead of a separate hand-tuned path.

use matopt_core::{ComputeGraph, DiffRole, MatrixType, NodeId, NodeKind, Op, OpKind, PhysFormat};
use std::collections::HashMap;

/// An all-ones auxiliary source appended by the differentiator (adjoint
/// seeds and broadcast helpers). The runner must bind each one to an
/// all-ones dense matrix of the given shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxSource {
    /// The source vertex id in the joint graph.
    pub id: NodeId,
    /// Row count of the all-ones matrix.
    pub rows: u64,
    /// Column count of the all-ones matrix.
    pub cols: u64,
}

/// The joint forward+backward graph produced by differentiation.
#[derive(Debug, Clone)]
pub struct DiffResult {
    /// The extended graph: the original vertices (ids unchanged)
    /// followed by the backward tape.
    pub graph: ComputeGraph,
    /// `(parameter, gradient)` vertex pairs, in the order the
    /// parameters were requested.
    pub gradients: Vec<(NodeId, NodeId)>,
    /// Per-vertex [`DiffRole`], aligned with the joint graph — feeds
    /// [`matopt_core::training_to_dot`].
    pub roles: Vec<DiffRole>,
    /// All-ones sources the runner must materialize.
    pub aux: Vec<AuxSource>,
    /// The adjoint seed vertex: the appended unit scalar for
    /// [`gradients`], the caller's vertex for [`gradients_with_seed`].
    pub seed: NodeId,
    /// Vertex count of the original graph; every id `>=` this is part
    /// of the backward tape.
    pub forward_len: usize,
}

impl DiffResult {
    /// The gradient vertex for a parameter, if it was requested.
    pub fn gradient(&self, param: NodeId) -> Option<NodeId> {
        self.gradients
            .iter()
            .find(|(p, _)| *p == param)
            .map(|(_, g)| *g)
    }
}

/// Why a graph could not be differentiated. Every vertex-scoped variant
/// carries both the vertex id and its graph label, matching the
/// executor's error convention.
#[derive(Debug, Clone, PartialEq)]
pub enum GradError {
    /// A requested vertex id is not in the graph.
    NoSuchVertex {
        /// The out-of-range id.
        vertex: NodeId,
    },
    /// The loss vertex is not a `1 × 1` scalar.
    NotScalar {
        /// The offending loss vertex.
        vertex: NodeId,
        /// Its label.
        label: String,
        /// Its actual shape.
        rows: u64,
        /// Its actual shape.
        cols: u64,
    },
    /// The explicit adjoint seed's shape disagrees with the vertex it
    /// seeds.
    SeedShape {
        /// The vertex being seeded.
        vertex: NodeId,
        /// Its label.
        label: String,
        /// Shape of the vertex being seeded.
        expected: (u64, u64),
        /// Shape of the provided seed.
        got: (u64, u64),
    },
    /// An op on the path from the loss to a parameter has no
    /// vector-Jacobian rule in this op set.
    NonDifferentiable {
        /// The vertex carrying the op.
        vertex: NodeId,
        /// Its label.
        label: String,
        /// The op without a rule.
        op: OpKind,
    },
    /// Building a gradient vertex was rejected by the type system —
    /// indicates an internal rule bug, surfaced rather than panicking.
    Type {
        /// The forward vertex whose rule failed.
        vertex: NodeId,
        /// Its label.
        label: String,
        /// The underlying type-error message.
        message: String,
    },
}

impl std::fmt::Display for GradError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GradError::NoSuchVertex { vertex } => {
                write!(f, "vertex {vertex} does not exist")
            }
            GradError::NotScalar {
                vertex,
                label,
                rows,
                cols,
            } => write!(
                f,
                "vertex {vertex} ({label:?}) is {rows}x{cols}, not a 1x1 scalar loss"
            ),
            GradError::SeedShape {
                vertex,
                label,
                expected,
                got,
            } => write!(
                f,
                "vertex {vertex} ({label:?}) is {}x{} but its adjoint seed is {}x{}",
                expected.0, expected.1, got.0, got.1
            ),
            GradError::NonDifferentiable { vertex, label, op } => write!(
                f,
                "vertex {vertex} ({label:?}): {op:?} has no vector-Jacobian rule"
            ),
            GradError::Type {
                vertex,
                label,
                message,
            } => write!(
                f,
                "vertex {vertex} ({label:?}): gradient rule produced a type error: {message}"
            ),
        }
    }
}

impl std::error::Error for GradError {}

fn label_of(graph: &ComputeGraph, id: NodeId) -> String {
    graph
        .node(id)
        .name
        .clone()
        .unwrap_or_else(|| id.to_string())
}

/// Differentiates `loss` (which must be `1 × 1`) with respect to
/// `params`, seeding the adjoint with an appended unit scalar.
///
/// # Errors
/// See [`GradError`].
pub fn gradients(
    graph: ComputeGraph,
    loss: NodeId,
    params: &[NodeId],
) -> Result<DiffResult, GradError> {
    check_vertex(&graph, loss)?;
    let mt = graph.node(loss).mtype;
    if (mt.rows, mt.cols) != (1, 1) {
        return Err(GradError::NotScalar {
            vertex: loss,
            label: label_of(&graph, loss),
            rows: mt.rows,
            cols: mt.cols,
        });
    }
    let mut d = Deriver::new(graph);
    let seed = d.ones(1, 1);
    d.graph.rename(seed, "seed");
    d.seed_at(loss, seed);
    d.run(params, seed)
}

/// Differentiates from an explicit adjoint: `seed` (an existing vertex
/// whose value is `∂L/∂(seed_at)`) is propagated backward from
/// `seed_at` to every parameter. This is how a hand-written backward
/// pass is reproduced exactly: seed at the softmax output with
/// `(softmax − y)/batch` and the derived tape matches it vertex for
/// vertex.
///
/// # Errors
/// See [`GradError`].
pub fn gradients_with_seed(
    graph: ComputeGraph,
    seed_at: NodeId,
    seed: NodeId,
    params: &[NodeId],
) -> Result<DiffResult, GradError> {
    check_vertex(&graph, seed_at)?;
    check_vertex(&graph, seed)?;
    let want = graph.node(seed_at).mtype;
    let got = graph.node(seed).mtype;
    if (want.rows, want.cols) != (got.rows, got.cols) {
        return Err(GradError::SeedShape {
            vertex: seed_at,
            label: label_of(&graph, seed_at),
            expected: (want.rows, want.cols),
            got: (got.rows, got.cols),
        });
    }
    let mut d = Deriver::new(graph);
    d.seed_at(seed_at, seed);
    d.run(params, seed)
}

fn check_vertex(graph: &ComputeGraph, id: NodeId) -> Result<(), GradError> {
    if id.index() >= graph.len() {
        return Err(GradError::NoSuchVertex { vertex: id });
    }
    Ok(())
}

/// The reverse-mode pass. Walks vertices in reverse topological order
/// (ids descend — consumers always have larger ids than producers), so
/// by the time a vertex's rule fires, every contribution to its adjoint
/// has been accumulated.
struct Deriver {
    graph: ComputeGraph,
    forward_len: usize,
    /// Adjoint vertex per *forward* vertex, `None` until a contribution
    /// arrives.
    adjoint: Vec<Option<NodeId>>,
    /// `needs[v]`: some requested parameter is reachable from `v`
    /// through input edges. Rules skip inputs that don't need a
    /// gradient, so no dead adjoint chains are emitted (e.g. the input
    /// batch of a network whose parameters are the weights).
    needs: Vec<bool>,
    /// `x → Transpose(x)` — prepopulated with the forward graph's own
    /// transposes so the backward pass reuses them instead of
    /// duplicating work the planner would then cost twice.
    transpose_memo: HashMap<NodeId, NodeId>,
    /// Deduplicated all-ones sources by shape.
    ones_memo: HashMap<(u64, u64), NodeId>,
    aux: Vec<AuxSource>,
}

impl Deriver {
    fn new(graph: ComputeGraph) -> Self {
        let forward_len = graph.len();
        let mut transpose_memo = HashMap::new();
        for (id, node) in graph.iter() {
            if node.op() == Some(Op::Transpose) {
                transpose_memo.entry(node.inputs[0]).or_insert(id);
            }
        }
        Deriver {
            graph,
            forward_len,
            adjoint: vec![None; forward_len],
            needs: vec![false; forward_len],
            transpose_memo,
            ones_memo: HashMap::new(),
            aux: Vec::new(),
        }
    }

    /// Marks every vertex from which a parameter is reachable through
    /// input edges (one forward sweep — inputs precede consumers).
    fn mark_needs(&mut self, params: &[NodeId]) {
        for p in params {
            self.needs[p.index()] = true;
        }
        for idx in 0..self.forward_len {
            if self.needs[idx] {
                continue;
            }
            let node = self.graph.node(NodeId(idx as u32));
            self.needs[idx] = node.inputs.iter().any(|i| self.needs[i.index()]);
        }
    }

    fn seed_at(&mut self, at: NodeId, seed: NodeId) {
        self.adjoint[at.index()] = Some(seed);
    }

    fn ones(&mut self, rows: u64, cols: u64) -> NodeId {
        if let Some(id) = self.ones_memo.get(&(rows, cols)) {
            return *id;
        }
        let id = self.graph.add_source_named(
            MatrixType::dense(rows, cols),
            PhysFormat::SingleTuple,
            Some(&format!("ones_{rows}x{cols}")),
        );
        self.ones_memo.insert((rows, cols), id);
        self.aux.push(AuxSource { id, rows, cols });
        id
    }

    /// `true` when `id` is one of our all-ones sources (used to
    /// short-circuit reduction adjoints: broadcasting an all-ones
    /// adjoint just yields a bigger all-ones matrix).
    fn is_ones(&self, id: NodeId) -> bool {
        self.ones_memo.values().any(|v| *v == id)
    }

    fn op(&mut self, at: NodeId, op: Op, inputs: &[NodeId]) -> Result<NodeId, GradError> {
        self.graph.add_op(op, inputs).map_err(|e| GradError::Type {
            vertex: at,
            label: label_of(&self.graph, at),
            message: e.message,
        })
    }

    fn transpose(&mut self, at: NodeId, x: NodeId) -> Result<NodeId, GradError> {
        if let Some(t) = self.transpose_memo.get(&x) {
            return Ok(*t);
        }
        // Involution: the transpose of a transpose is its input.
        if self.graph.node(x).op() == Some(Op::Transpose) {
            return Ok(self.graph.node(x).inputs[0]);
        }
        let t = self.op(at, Op::Transpose, &[x])?;
        self.transpose_memo.insert(x, t);
        Ok(t)
    }

    /// Adds `contribution` into the adjoint of `target`: first
    /// contribution is stored as-is, fan-out merges through an explicit
    /// `Add` vertex (deterministic order — contributions arrive in
    /// descending consumer id).
    fn accumulate(
        &mut self,
        at: NodeId,
        target: NodeId,
        contribution: NodeId,
    ) -> Result<(), GradError> {
        let slot = target.index();
        self.adjoint[slot] = Some(match self.adjoint[slot] {
            None => contribution,
            Some(existing) => self.op(at, Op::Add, &[existing, contribution])?,
        });
        Ok(())
    }

    fn run(mut self, params: &[NodeId], seed: NodeId) -> Result<DiffResult, GradError> {
        for p in params {
            check_vertex(&self.graph, *p)?;
        }
        self.mark_needs(params);
        for idx in (0..self.forward_len).rev() {
            let v = NodeId(idx as u32);
            if self.adjoint[idx].is_none() {
                continue;
            }
            let node = self.graph.node(v);
            let (op, inputs) = match &node.kind {
                NodeKind::Source { .. } => continue,
                NodeKind::Compute { op } => (*op, node.inputs.clone()),
            };
            let dv = self.adjoint[idx].expect("checked above");
            self.vjp(v, op, &inputs, dv)?;
        }
        let mut gradients = Vec::with_capacity(params.len());
        for p in params {
            let grad = match self.adjoint[p.index()] {
                Some(g) => g,
                // The parameter does not influence the loss: its
                // gradient is an explicit zero of the same shape.
                None => self.op(*p, Op::ScalarMul(0.0), &[*p])?,
            };
            if grad.index() >= self.forward_len && self.graph.node(grad).name.is_none() {
                let name = format!("grad_{}", label_of(&self.graph, *p));
                self.graph.rename(grad, &name);
            }
            gradients.push((*p, grad));
        }
        let mut roles = vec![DiffRole::Forward; self.graph.len()];
        for r in roles.iter_mut().skip(self.forward_len) {
            *r = DiffRole::Backward;
        }
        // Forward vertices consumed by the tape are the shared region.
        for (id, node) in self.graph.iter() {
            if id.index() < self.forward_len {
                continue;
            }
            for input in &node.inputs {
                if input.index() < self.forward_len {
                    roles[input.index()] = DiffRole::Shared;
                }
            }
        }
        Ok(DiffResult {
            graph: self.graph,
            gradients,
            roles,
            aux: self.aux,
            seed,
            forward_len: self.forward_len,
        })
    }

    /// The vector-Jacobian rule for one vertex: given `dv = ∂L/∂v`,
    /// push a contribution into each input's adjoint.
    fn vjp(&mut self, v: NodeId, op: Op, inputs: &[NodeId], dv: NodeId) -> Result<(), GradError> {
        // A rule only fires when some input can reach a parameter; a
        // vertex whose whole input cone is parameter-free contributes
        // nothing and emits nothing.
        if !inputs.iter().any(|i| self.needs[i.index()]) {
            return Ok(());
        }
        let needs = |d: &Self, x: NodeId| d.needs[x.index()];
        match op {
            Op::MatMul => {
                let (a, b) = (inputs[0], inputs[1]);
                if needs(self, a) {
                    let bt = self.transpose(v, b)?;
                    let da = self.op(v, Op::MatMul, &[dv, bt])?;
                    self.accumulate(v, a, da)?;
                }
                if needs(self, b) {
                    let at = self.transpose(v, a)?;
                    let db = self.op(v, Op::MatMul, &[at, dv])?;
                    self.accumulate(v, b, db)?;
                }
            }
            Op::Add => {
                if needs(self, inputs[0]) {
                    self.accumulate(v, inputs[0], dv)?;
                }
                if needs(self, inputs[1]) {
                    self.accumulate(v, inputs[1], dv)?;
                }
            }
            Op::Sub => {
                if needs(self, inputs[0]) {
                    self.accumulate(v, inputs[0], dv)?;
                }
                if needs(self, inputs[1]) {
                    let n = self.op(v, Op::Neg, &[dv])?;
                    self.accumulate(v, inputs[1], n)?;
                }
            }
            Op::Hadamard => {
                let (a, b) = (inputs[0], inputs[1]);
                if needs(self, a) {
                    let da = self.op(v, Op::Hadamard, &[dv, b])?;
                    self.accumulate(v, a, da)?;
                }
                if needs(self, b) {
                    let db = self.op(v, Op::Hadamard, &[dv, a])?;
                    self.accumulate(v, b, db)?;
                }
            }
            Op::ScalarMul(alpha) => {
                let dx = self.op(v, Op::ScalarMul(alpha), &[dv])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::Transpose => {
                let dx = self.transpose(v, dv)?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::Neg => {
                let dx = self.op(v, Op::Neg, &[dv])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::Relu => {
                // Relu via ReluGrad: mask the adjoint with the
                // pre-activation's 0/1 derivative.
                let mask = self.op(v, Op::ReluGrad, &[inputs[0]])?;
                let dx = self.op(v, Op::Hadamard, &[dv, mask])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::Sigmoid => {
                // σ' = σ(1−σ), reusing the forward sigmoid vertex `v`.
                let mt = self.graph.node(v).mtype;
                let ones = self.ones(mt.rows, mt.cols);
                let one_minus = self.op(v, Op::Sub, &[ones, v])?;
                let sprime = self.op(v, Op::Hadamard, &[v, one_minus])?;
                let dx = self.op(v, Op::Hadamard, &[dv, sprime])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::Exp => {
                // d/dx eˣ = eˣ — the forward Exp vertex itself.
                let dx = self.op(v, Op::Hadamard, &[dv, v])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::Softmax => {
                // Row-wise: dx = s ⊙ (dv − rowsum(dv ⊙ s)·1ᵀ).
                let mt = self.graph.node(v).mtype;
                let t = self.op(v, Op::Hadamard, &[dv, v])?;
                let rs = self.op(v, Op::RowSums, &[t])?;
                let row = self.ones(1, mt.cols);
                let bc = self.op(v, Op::MatMul, &[rs, row])?;
                let centered = self.op(v, Op::Sub, &[dv, bc])?;
                let dx = self.op(v, Op::Hadamard, &[v, centered])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::RowSums => {
                // x: r×c summed to r×1; dx = dv·1(1×c), all-ones if dv is.
                let mt = self.graph.node(inputs[0]).mtype;
                let dx = if self.is_ones(dv) {
                    self.ones(mt.rows, mt.cols)
                } else {
                    let row = self.ones(1, mt.cols);
                    self.op(v, Op::MatMul, &[dv, row])?
                };
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::ColSums => {
                let mt = self.graph.node(inputs[0]).mtype;
                let dx = if self.is_ones(dv) {
                    self.ones(mt.rows, mt.cols)
                } else {
                    let col = self.ones(mt.rows, 1);
                    self.op(v, Op::MatMul, &[col, dv])?
                };
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::SumAll => {
                // dx = (1(r×1)·dv)·1(1×c): every entry gets the scalar
                // adjoint. When the adjoint is the unit seed this is
                // just an all-ones matrix.
                let mt = self.graph.node(inputs[0]).mtype;
                let dx = if self.is_ones(dv) {
                    self.ones(mt.rows, mt.cols)
                } else {
                    let col = self.ones(mt.rows, 1);
                    let scaled = self.op(v, Op::MatMul, &[col, dv])?;
                    let row = self.ones(1, mt.cols);
                    self.op(v, Op::MatMul, &[scaled, row])?
                };
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::BroadcastAddRow => {
                if needs(self, inputs[0]) {
                    self.accumulate(v, inputs[0], dv)?;
                }
                if needs(self, inputs[1]) {
                    let db = self.op(v, Op::ColSums, &[dv])?;
                    self.accumulate(v, inputs[1], db)?;
                }
            }
            Op::Inverse => {
                // d(X⁻¹) rule: dX = −X⁻ᵀ·dv·X⁻ᵀ, reusing the forward
                // inverse vertex `v = X⁻¹`.
                let vt = self.transpose(v, v)?;
                let t = self.op(v, Op::MatMul, &[vt, dv])?;
                let t2 = self.op(v, Op::MatMul, &[t, vt])?;
                let dx = self.op(v, Op::Neg, &[t2])?;
                self.accumulate(v, inputs[0], dx)?;
            }
            Op::ReluGrad | Op::FrobeniusNorm => {
                return Err(GradError::NonDifferentiable {
                    vertex: v,
                    label: label_of(&self.graph, v),
                    op: op.kind(),
                });
            }
        }
        Ok(())
    }
}

/// The op kinds with a vector-Jacobian rule (everything except
/// `ReluGrad`, whose derivative is zero almost everywhere, and
/// `FrobeniusNorm`, whose gradient needs a division this op set does
/// not have).
pub const DIFFERENTIABLE_OP_KINDS: [OpKind; 16] = [
    OpKind::MatMul,
    OpKind::Add,
    OpKind::Sub,
    OpKind::Hadamard,
    OpKind::ScalarMul,
    OpKind::Transpose,
    OpKind::Relu,
    OpKind::Softmax,
    OpKind::Sigmoid,
    OpKind::Exp,
    OpKind::Neg,
    OpKind::RowSums,
    OpKind::ColSums,
    OpKind::Inverse,
    OpKind::BroadcastAddRow,
    OpKind::SumAll,
];

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(r: u64, c: u64) -> MatrixType {
        MatrixType::dense(r, c)
    }

    fn src(g: &mut ComputeGraph, name: &str, r: u64, c: u64) -> NodeId {
        g.add_source_named(dense(r, c), PhysFormat::SingleTuple, Some(name))
    }

    #[test]
    fn matmul_vjp_builds_the_paper_rule() {
        // loss = sum(X·W); dW must be Xᵀ·dC with dC all-ones.
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "X", 4, 3);
        let w = src(&mut g, "W", 3, 2);
        let y = g.add_op_named(Op::MatMul, &[x, w], Some("y")).unwrap();
        let loss = g.add_op_named(Op::SumAll, &[y], Some("loss")).unwrap();
        let d = gradients(g, loss, &[w]).unwrap();
        let gw = d.gradient(w).unwrap();
        let node = d.graph.node(gw);
        assert_eq!(node.op(), Some(Op::MatMul));
        // Left operand is Transpose(X).
        let lhs = d.graph.node(node.inputs[0]);
        assert_eq!(lhs.op(), Some(Op::Transpose));
        assert_eq!(lhs.inputs[0], x);
        // Right operand is the all-ones adjoint of y (unit-seed
        // shortcut through SumAll).
        let rhs = d.graph.node(node.inputs[1]);
        assert!(matches!(rhs.kind, NodeKind::Source { .. }));
        assert_eq!((rhs.mtype.rows, rhs.mtype.cols), (4, 2));
        assert_eq!(
            (d.graph.node(gw).mtype.rows, d.graph.node(gw).mtype.cols),
            (3, 2)
        );
        assert_eq!(d.graph.node(gw).name.as_deref(), Some("grad_W"));
    }

    #[test]
    fn fan_out_accumulates_with_add() {
        // loss = sum(relu(x) + sigmoid(x)): x's adjoint must be an Add
        // of the two branch contributions.
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let r = g.add_op(Op::Relu, &[x]).unwrap();
        let s = g.add_op(Op::Sigmoid, &[x]).unwrap();
        let sum = g.add_op(Op::Add, &[r, s]).unwrap();
        let loss = g.add_op(Op::SumAll, &[sum]).unwrap();
        let d = gradients(g, loss, &[x]).unwrap();
        let gx = d.gradient(x).unwrap();
        assert_eq!(d.graph.node(gx).op(), Some(Op::Add));
    }

    #[test]
    fn unreached_params_get_explicit_zero_gradients() {
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let w = src(&mut g, "w", 4, 4);
        let r = g.add_op(Op::Relu, &[x]).unwrap();
        let loss = g.add_op(Op::SumAll, &[r]).unwrap();
        let d = gradients(g, loss, &[w]).unwrap();
        let gw = d.gradient(w).unwrap();
        assert_eq!(d.graph.node(gw).op(), Some(Op::ScalarMul(0.0)));
        assert_eq!(d.graph.node(gw).inputs, vec![w]);
    }

    #[test]
    fn forward_transposes_are_reused_not_duplicated() {
        // The forward pass already contains Xᵀ; the backward matmul
        // rule must reference it instead of adding a second transpose.
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let w = src(&mut g, "w", 4, 4);
        let xt = g.add_op_named(Op::Transpose, &[x], Some("xT")).unwrap();
        let y = g.add_op(Op::MatMul, &[xt, w]).unwrap();
        let y2 = g.add_op(Op::MatMul, &[x, y]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y2]).unwrap();
        let d = gradients(g, loss, &[w]).unwrap();
        let transposes_of_x = d
            .graph
            .iter()
            .filter(|(_, n)| n.op() == Some(Op::Transpose) && n.inputs == vec![x])
            .count();
        assert_eq!(transposes_of_x, 1);
    }

    #[test]
    fn roles_partition_the_joint_graph() {
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let w = src(&mut g, "w", 4, 4);
        let y = g.add_op(Op::MatMul, &[x, w]).unwrap();
        let loss = g.add_op(Op::SumAll, &[y]).unwrap();
        let forward_len = g.len();
        let d = gradients(g, loss, &[w]).unwrap();
        assert_eq!(d.forward_len, forward_len);
        assert_eq!(d.roles.len(), d.graph.len());
        // x is consumed by the tape (transposed for dW) -> shared; the
        // loss itself is forward-only; everything appended is backward.
        assert_eq!(d.roles[x.index()], DiffRole::Shared);
        assert_eq!(d.roles[loss.index()], DiffRole::Forward);
        for r in d.roles.iter().skip(forward_len) {
            assert_eq!(*r, DiffRole::Backward);
        }
        // The rendering is accepted by the role-aware DOT printer.
        let dot = matopt_core::training_to_dot(&d.graph, &d.roles);
        assert!(dot.contains("cluster_backward"));
    }

    #[test]
    fn non_scalar_loss_is_rejected_with_vertex_and_label() {
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let y = g.add_op_named(Op::Relu, &[x], Some("act")).unwrap();
        let err = gradients(g, y, &[x]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(&format!("vertex {y}")), "{msg}");
        assert!(msg.contains("\"act\""), "{msg}");
        assert!(msg.contains("4x4"), "{msg}");
    }

    #[test]
    fn non_differentiable_ops_are_rejected_with_vertex_and_label() {
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let n = g
            .add_op_named(Op::FrobeniusNorm, &[x], Some("gnorm"))
            .unwrap();
        let loss = g.add_op(Op::ScalarMul(2.0), &[n]).unwrap();
        let err = gradients(g, loss, &[x]).unwrap_err();
        assert!(matches!(
            err,
            GradError::NonDifferentiable {
                op: OpKind::FrobeniusNorm,
                ..
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains(&format!("vertex {n}")), "{msg}");
        assert!(msg.contains("\"gnorm\""), "{msg}");
    }

    #[test]
    fn seed_shape_mismatch_is_rejected() {
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let y = g.add_op_named(Op::Relu, &[x], Some("act")).unwrap();
        let bad_seed = src(&mut g, "seed", 2, 2);
        let err = gradients_with_seed(g, y, bad_seed, &[x]).unwrap_err();
        assert!(matches!(err, GradError::SeedShape { .. }));
    }

    #[test]
    fn seeded_adjoint_skips_vertices_above_the_seed() {
        // loss-side consumers of the seeded vertex must not be
        // differentiated: backprop starts at the seeded vertex.
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let y = g.add_op(Op::Relu, &[x]).unwrap();
        let _above = g.add_op(Op::FrobeniusNorm, &[y]).unwrap(); // non-differentiable, but above the seat
        let seed = src(&mut g, "dy", 4, 4);
        let d = gradients_with_seed(g, y, seed, &[x]).unwrap();
        let gx = d.gradient(x).unwrap();
        assert_eq!(d.graph.node(gx).op(), Some(Op::Hadamard));
    }

    #[test]
    fn aux_sources_are_deduplicated_by_shape() {
        // Two sigmoids of the same shape share one all-ones helper.
        let mut g = ComputeGraph::new();
        let x = src(&mut g, "x", 4, 4);
        let a = g.add_op(Op::Sigmoid, &[x]).unwrap();
        let b = g.add_op(Op::Sigmoid, &[x]).unwrap();
        let s = g.add_op(Op::Add, &[a, b]).unwrap();
        let loss = g.add_op(Op::SumAll, &[s]).unwrap();
        let d = gradients(g, loss, &[x]).unwrap();
        let four_by_four = d.aux.iter().filter(|a| (a.rows, a.cols) == (4, 4)).count();
        assert_eq!(four_by_four, 1);
    }
}
