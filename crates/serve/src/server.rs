//! The `matopt serve` loop: JSON-lines over any `BufRead`/`Write`
//! pair (stdin/stdout in the CLI; in-memory buffers in tests).
//!
//! One request per line in, one response per line out, in order:
//!
//! ```json
//! {"id": "r1", "status": "ok", "fingerprint": "6b0f…", "source": "hit",
//!  "cost": 12.25, "opt_seconds": 0.004, "exactness": "exact",
//!  "vertices": 11, "latency_us": 180}
//! {"id": "r2", "status": "error", "error": "bad request: …"}
//! ```
//!
//! Errors are *responses*, never process exits: a malformed line, a
//! type-incorrect graph, or an overloaded service answers the client
//! and keeps serving. The output is flushed after every response so
//! piped clients see answers immediately.

use crate::protocol::{json_escape, parse_request, Json};
use crate::PlanService;
use matopt_obs::{HistogramSnapshot, Subsystem};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// What a [`serve_lines`] session handled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Non-empty request lines read.
    pub requests: u64,
    /// `"status": "ok"` responses written.
    pub ok: u64,
    /// `"status": "error"` responses written.
    pub errors: u64,
    /// `true` when the session ended via a `{"op": "shutdown"}` or
    /// `{"op": "drain"}` control line (an orderly stop the CLI exits 0
    /// on), `false` on plain EOF.
    pub clean_shutdown: bool,
}

/// Live, shareable view of a running serve session: how much has been
/// read and answered, plus an external stop request a signal watcher
/// can flip — the hook behind `matopt serve`'s SIGTERM/SIGINT graceful
/// drain. Stopping is drain-shaped: the loop stops *reading*, but every
/// request already read is still answered before the call returns.
#[derive(Debug, Default)]
pub struct ServeSession {
    requests_read: AtomicU64,
    responses_written: AtomicU64,
    stop: std::sync::atomic::AtomicBool,
}

impl ServeSession {
    /// A fresh session handle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Non-empty request lines read so far.
    #[must_use]
    pub fn requests_read(&self) -> u64 {
        self.requests_read.load(Ordering::Acquire)
    }

    /// Response lines written so far.
    #[must_use]
    pub fn responses_written(&self) -> u64 {
        self.responses_written.load(Ordering::Acquire)
    }

    /// Requests read but not yet answered.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.requests_read()
            .saturating_sub(self.responses_written())
    }

    /// Asks the serve loop to stop reading further input; in-flight
    /// requests still complete (checked between lines — a loop blocked
    /// on a quiet transport notices at its next line or EOF).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether [`ServeSession::request_stop`] has been called.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Control lines that steer the serve loop itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Control {
    /// Stop reading, answer everything already read, exit cleanly.
    Shutdown,
    /// Keep reading until EOF but refuse every later request with a
    /// `draining` error response; in-flight work still completes.
    Drain,
}

/// Recognizes `{"op": "shutdown"}` / `{"op": "drain"}` control lines.
fn control_op(line: &str) -> Option<Control> {
    let doc = Json::parse(line).ok()?;
    match doc.get("op").and_then(Json::as_str)? {
        "shutdown" => Some(Control::Shutdown),
        "drain" => Some(Control::Drain),
        _ => None,
    }
}

/// The acknowledgement response for a control line.
fn control_ack(line: &str, op: Control) -> String {
    let id = Json::parse(line)
        .ok()
        .and_then(|d| d.get("id").and_then(Json::as_str).map(str::to_string));
    let op = match op {
        Control::Shutdown => "shutdown",
        Control::Drain => "drain",
    };
    match id {
        Some(id) => format!(
            "{{\"id\": \"{}\", \"status\": \"ok\", \"op\": \"{op}\"}}",
            json_escape(&id)
        ),
        None => format!("{{\"id\": null, \"status\": \"ok\", \"op\": \"{op}\"}}"),
    }
}

/// Serves requests from `input`, writing one response line each to
/// `output`, until EOF or an orderly `{"op": "shutdown"}`. Single
/// worker: responses are computed and written in arrival order. See
/// [`serve_lines_concurrent`] for the multi-worker loop.
///
/// # Errors
/// Propagates I/O errors from the transport (request-level failures are
/// error *responses*, not `Err`).
pub fn serve_lines<R: BufRead, W: Write>(
    service: &PlanService,
    input: R,
    output: &mut W,
) -> io::Result<ServeSummary> {
    serve_lines_session(service, input, output, &ServeSession::new())
}

/// [`serve_lines`] with an external [`ServeSession`] handle: live
/// read/answer counters plus a stop flag a signal watcher can flip to
/// drain the loop between lines.
///
/// # Errors
/// Propagates I/O errors from the transport.
pub fn serve_lines_session<R: BufRead, W: Write>(
    service: &PlanService,
    input: R,
    output: &mut W,
    session: &ServeSession,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut draining = false;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        session.requests_read.fetch_add(1, Ordering::AcqRel);
        let control = control_op(&line);
        let response = match control {
            Some(op) => control_ack(&line, op),
            None if draining => draining_error(&line),
            None => respond(service, &line),
        };
        if response.contains("\"status\": \"ok\"") {
            summary.ok += 1;
        } else {
            summary.errors += 1;
        }
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        session.responses_written.fetch_add(1, Ordering::AcqRel);
        match control {
            Some(Control::Shutdown) => {
                summary.clean_shutdown = true;
                return Ok(summary);
            }
            Some(Control::Drain) => {
                summary.clean_shutdown = true;
                draining = true;
            }
            None => {}
        }
        if session.stop_requested() {
            summary.clean_shutdown = true;
            return Ok(summary);
        }
    }
    Ok(summary)
}

/// The error response for a request that arrived after a drain.
fn draining_error(line: &str) -> String {
    let id = Json::parse(line)
        .ok()
        .and_then(|d| d.get("id").and_then(Json::as_str).map(str::to_string));
    error_line(id.as_deref(), &crate::ServeError::Draining.to_string())
}

/// Serves requests from `input` on `threads` worker threads, writing
/// responses to `output` **in arrival order** (a reorder buffer holds
/// any response that finishes before an earlier request's).
///
/// Lifecycle guarantees, which the single-threaded loop gets for free
/// and this one is tested for:
///
/// * **EOF drains** — when `input` ends, every request already read is
///   still answered before the call returns; queued work is never
///   abandoned.
/// * **`{"op": "shutdown"}`** stops reading immediately; requests ahead
///   of it are answered, the ack is the last line written, and the
///   summary reports a clean shutdown.
/// * **`{"op": "drain"}`** answers requests ahead of it normally and
///   every request after it with a `draining` error response (position
///   decides, not timing: a request the reader saw first is never
///   rejected because a worker happened to run it late).
///
/// # Errors
/// Propagates I/O errors from the transport.
pub fn serve_lines_concurrent<R: BufRead, W: Write + Send>(
    service: &PlanService,
    input: R,
    output: &mut W,
    threads: usize,
) -> io::Result<ServeSummary> {
    serve_lines_concurrent_session(service, input, output, threads, &ServeSession::new())
}

/// [`serve_lines_concurrent`] with an external [`ServeSession`] handle
/// (live counters + stop flag); the stop flag is checked between read
/// lines, and everything already read is still answered — the same
/// position-decides contract as an in-band `{"op": "drain"}`.
///
/// # Errors
/// Propagates I/O errors from the transport.
pub fn serve_lines_concurrent_session<R: BufRead, W: Write + Send>(
    service: &PlanService,
    input: R,
    output: &mut W,
    threads: usize,
    session: &ServeSession,
) -> io::Result<ServeSummary> {
    if threads <= 1 {
        return serve_lines_session(service, input, output, session);
    }
    let mut summary = ServeSummary::default();
    // Everything with seq > drain_seq is refused with a draining error.
    let drain_seq = AtomicU64::new(u64::MAX);
    let (work_tx, work_rx) = mpsc::sync_channel::<(u64, String)>(threads * 2);
    let work_rx = Arc::new(Mutex::new(work_rx));
    let (done_tx, done_rx) = mpsc::channel::<(u64, String)>();

    let (io_result, clean) = std::thread::scope(|scope| {
        for _ in 0..threads {
            let work_rx = Arc::clone(&work_rx);
            let done_tx = done_tx.clone();
            let drain_seq = &drain_seq;
            scope.spawn(move || loop {
                let next = work_rx.lock().expect("work queue").recv();
                let Ok((seq, line)) = next else {
                    return;
                };
                let response = match control_op(&line) {
                    Some(op) => control_ack(&line, op),
                    None if seq > drain_seq.load(Ordering::Acquire) => draining_error(&line),
                    None => respond(service, &line),
                };
                if done_tx.send((seq, response)).is_err() {
                    return;
                }
            });
        }
        drop(done_tx);

        // Writer: reorder responses back into arrival order.
        let writer = scope.spawn(move || -> io::Result<(u64, u64)> {
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            let mut next_seq = 0u64;
            let (mut ok, mut errors) = (0u64, 0u64);
            while let Ok((seq, response)) = done_rx.recv() {
                pending.insert(seq, response);
                while let Some(response) = pending.remove(&next_seq) {
                    next_seq += 1;
                    if response.contains("\"status\": \"ok\"") {
                        ok += 1;
                    } else {
                        errors += 1;
                    }
                    output.write_all(response.as_bytes())?;
                    output.write_all(b"\n")?;
                    output.flush()?;
                    session.responses_written.fetch_add(1, Ordering::AcqRel);
                }
            }
            Ok((ok, errors))
        });

        // Reader: this thread. Assign sequence numbers, recognize
        // control lines, stop at EOF or shutdown. Dropping `work_tx`
        // is the drain signal: workers finish what was read, then the
        // writer flushes the reorder buffer.
        let mut clean = false;
        let mut read_error = None;
        let mut seq = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            summary.requests += 1;
            session.requests_read.fetch_add(1, Ordering::AcqRel);
            let control = control_op(&line);
            if work_tx.send((seq, line)).is_err() {
                break;
            }
            match control {
                Some(Control::Shutdown) => {
                    clean = true;
                    break;
                }
                Some(Control::Drain) => {
                    clean = true;
                    drain_seq.store(seq, Ordering::Release);
                }
                None => {}
            }
            seq += 1;
            if session.stop_requested() {
                clean = true;
                break;
            }
        }
        drop(work_tx);
        let written = writer.join().expect("writer thread");
        let io_result = match read_error {
            Some(e) => Err(e),
            None => written,
        };
        (io_result, clean)
    });

    let (ok, errors) = io_result?;
    summary.ok = ok;
    summary.errors = errors;
    summary.clean_shutdown = clean;
    Ok(summary)
}

/// The response line (no trailing newline) for one request line.
///
/// Plan requests go through [`crate::protocol::parse_request`]; a
/// top-level `{"op": "stats"}` line instead answers with the service's
/// live statistics (see [`stats_line`]).
pub fn respond(service: &PlanService, line: &str) -> String {
    if let Ok(doc) = Json::parse(line) {
        if let Some(op) = doc.get("op").and_then(Json::as_str) {
            let id = doc.get("id").and_then(Json::as_str).map(str::to_string);
            return match op {
                "stats" => stats_line(service, id.as_deref()),
                // Acknowledged here so a direct `respond` caller gets
                // the same line the serve loop writes; the loop itself
                // intercepts these to actually stop/drain.
                "shutdown" => control_ack(line, Control::Shutdown),
                "drain" => control_ack(line, Control::Drain),
                other => error_line(id.as_deref(), &format!("unknown op {other:?}")),
            };
        }
    }
    let cluster = service.cluster();
    match parse_request(line, &cluster) {
        Ok(req) => match service.plan(&req.graph) {
            Ok(planned) => format!(
                "{{\"id\": \"{}\", \"status\": \"ok\", \"fingerprint\": \"{}\", \
                 \"source\": \"{}\", \"cost\": {}, \"opt_seconds\": {}, \
                 \"exactness\": \"{}\", \"vertices\": {}, \"latency_us\": {}}}",
                json_escape(&req.id),
                planned.fingerprint.hex(),
                planned.source.as_str(),
                planned.plan.cost,
                planned.plan.opt_seconds,
                planned.plan.exactness(),
                req.graph.len(),
                planned.latency.as_micros(),
            ),
            Err(err) => error_line(Some(&req.id), &err.to_string()),
        },
        Err(err) => {
            // Best-effort id echo so the client can correlate the
            // failure even though the request didn't parse as a whole.
            let id = Json::parse(line)
                .ok()
                .and_then(|d| d.get("id").and_then(Json::as_str).map(str::to_string));
            error_line(id.as_deref(), &err.to_string())
        }
    }
}

/// The `{"op": "stats"}` response: service counters, cache state, and
/// — when the service carries a metrics registry — latency percentiles
/// computed from the *merged* hit/miss/coalesced request histograms
/// (mergeability is exactly why the histograms are log-linear).
/// Percentiles are `null` when no metrics registry is attached or no
/// request has been timed yet.
pub fn stats_line(service: &PlanService, id: Option<&str>) -> String {
    let stats = service.stats();
    let snap = service.metrics_snapshot();
    let (p50, p95, p99, drift_events) = match &snap {
        Some(s) => {
            let mut merged = HistogramSnapshot::default();
            for name in ["latency_hit_us", "latency_miss_us", "latency_coalesced_us"] {
                if let Some(h) = s.histogram(Subsystem::Serve, name) {
                    merged.merge(h);
                }
            }
            let q = |p: f64| {
                if merged.count() == 0 {
                    "null".to_string()
                } else {
                    merged.quantile(p).to_string()
                }
            };
            let drift = s.counter(Subsystem::CostModel, "drift_events").unwrap_or(0);
            (q(0.50), q(0.95), q(0.99), drift)
        }
        None => ("null".into(), "null".into(), "null".into(), 0),
    };
    let id = match id {
        Some(id) => format!("\"{}\"", json_escape(id)),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\": {id}, \"status\": \"ok\", \"op\": \"stats\", \
         \"requests\": {}, \"hits\": {}, \"misses\": {}, \"coalesced\": {}, \
         \"admission_rejects\": {}, \"deadline_expired\": {}, \
         \"optimize_runs\": {}, \"optimize_seconds\": {}, \
         \"cache_entries\": {}, \"cache_bytes\": {}, \"cache_epoch\": {}, \
         \"cache_evictions\": {}, \"drift_events\": {drift_events}, \
         \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}}}",
        stats.requests,
        stats.hits,
        stats.misses,
        stats.coalesced,
        stats.admission_rejects,
        stats.deadline_expired,
        stats.optimize_runs,
        stats.optimize_seconds,
        stats.cache_entries,
        stats.cache_bytes,
        service.cache().epoch(),
        stats.cache.evicted,
    )
}

fn error_line(id: Option<&str>, message: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"id\": \"{}\", \"status\": \"error\", \"error\": \"{}\"}}",
            json_escape(id),
            json_escape(message)
        ),
        None => format!(
            "{{\"id\": null, \"status\": \"error\", \"error\": \"{}\"}}",
            json_escape(message)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use matopt_core::{Cluster, FormatCatalog, ImplRegistry};
    use matopt_cost::AnalyticalCostModel;

    fn service() -> PlanService {
        PlanService::new(
            ImplRegistry::paper_default(),
            FormatCatalog::paper_default().dense_only(),
            Cluster::simsql_like(4),
            Box::new(AnalyticalCostModel),
            ServeConfig::default(),
        )
    }

    fn metered_service() -> PlanService {
        let registry = matopt_obs::MetricsRegistry::new();
        let obs = matopt_obs::Obs::with_metrics(
            std::sync::Arc::new(matopt_obs::RingSink::new(256)),
            registry,
        );
        PlanService::with_obs(
            ImplRegistry::paper_default(),
            FormatCatalog::paper_default().dense_only(),
            Cluster::simsql_like(4),
            Box::new(AnalyticalCostModel),
            ServeConfig::default(),
            obs,
        )
    }

    #[test]
    fn session_serves_hits_and_errors_in_order() {
        let service = service();
        let input = concat!(
            r#"{"id": "a", "workload": "motivating"}"#,
            "\n\n",
            r#"{"id": "b", "workload": "motivating"}"#,
            "\n",
            "garbage\n",
            r#"{"id": "c", "workload": "nope"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_lines(&service, input.as_bytes(), &mut out).expect("io");
        assert_eq!(
            summary,
            ServeSummary {
                requests: 4,
                ok: 2,
                errors: 2,
                clean_shutdown: false
            }
        );
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"source\": \"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"source\": \"hit\""), "{}", lines[1]);
        assert!(lines[2].contains("\"id\": null"), "{}", lines[2]);
        assert!(lines[3].contains("\"id\": \"c\""), "{}", lines[3]);
        // Responses are themselves valid JSON.
        for line in &lines {
            Json::parse(line).expect("response is valid JSON");
        }
        // And the two identical requests produced identical fingerprints.
        let fp = |l: &str| {
            Json::parse(l)
                .unwrap()
                .get("fingerprint")
                .and_then(Json::as_str)
                .map(str::to_string)
        };
        assert_eq!(fp(lines[0]), fp(lines[1]));
    }

    #[test]
    fn stats_op_reports_counters_and_percentiles() {
        let service = metered_service();
        let input = concat!(
            r#"{"id": "a", "workload": "motivating"}"#,
            "\n",
            r#"{"id": "b", "workload": "motivating"}"#,
            "\n",
            r#"{"id": "s", "op": "stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_lines(&service, input.as_bytes(), &mut out).expect("io");
        assert_eq!(summary.ok, 3);
        let text = std::str::from_utf8(&out).expect("utf8");
        let stats = Json::parse(text.lines().nth(2).expect("stats line")).expect("valid JSON");
        let int = |k: &str| {
            stats
                .get(k)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{k} missing: {text}")) as u64
        };
        assert_eq!(int("requests"), 2, "stats op itself is not a plan request");
        assert_eq!(int("hits"), 1);
        assert_eq!(int("misses"), 1);
        assert_eq!(int("cache_entries"), 1);
        // Percentiles come from the merged hit+miss histograms: two
        // timed requests means a nonzero merged count, and p99 bounds
        // p50 from above.
        assert!(int("p99_us") >= int("p50_us"));
        assert!(int("p50_us") > 0);
    }

    #[test]
    fn stats_op_without_metrics_yields_null_percentiles() {
        let service = service();
        let line = respond(&service, r#"{"op": "stats"}"#);
        assert!(line.contains("\"p50_us\": null"), "{line}");
        assert!(line.contains("\"id\": null"), "{line}");
        Json::parse(&line).expect("valid JSON");
    }

    #[test]
    fn shutdown_op_stops_the_session_cleanly() {
        let service = service();
        let input = concat!(
            r#"{"id": "a", "workload": "motivating"}"#,
            "\n",
            r#"{"id": "q", "op": "shutdown"}"#,
            "\n",
            r#"{"id": "never", "workload": "motivating"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_lines(&service, input.as_bytes(), &mut out).expect("io");
        assert!(summary.clean_shutdown, "shutdown must be clean");
        assert_eq!((summary.requests, summary.ok, summary.errors), (2, 2, 0));
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 2, "nothing after the shutdown ack: {lines:?}");
        assert!(lines[1].contains("\"op\": \"shutdown\""), "{}", lines[1]);
    }

    #[test]
    fn drain_op_refuses_later_requests_but_answers_them() {
        let service = service();
        let input = concat!(
            r#"{"id": "a", "workload": "motivating"}"#,
            "\n",
            r#"{"id": "d", "op": "drain"}"#,
            "\n",
            r#"{"id": "late", "workload": "motivating"}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = serve_lines(&service, input.as_bytes(), &mut out).expect("io");
        assert!(summary.clean_shutdown);
        assert_eq!(summary.requests, 3, "post-drain lines still get responses");
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"op\": \"drain\""), "{}", lines[1]);
        assert!(lines[2].contains("draining"), "{}", lines[2]);
        assert!(lines[2].contains("\"id\": \"late\""), "{}", lines[2]);
    }

    #[test]
    fn concurrent_loop_preserves_order_and_drains_at_eof() {
        let service = service();
        // Enough requests that workers genuinely interleave; every
        // response must still come back in request order, and EOF must
        // answer all of them.
        let mut input = String::new();
        for i in 0..40 {
            let workload = if i % 3 == 0 {
                "motivating"
            } else {
                "ffnn-small:16"
            };
            input.push_str(&format!(
                "{{\"id\": \"r{i}\", \"workload\": \"{workload}\"}}\n"
            ));
        }
        let mut out = Vec::new();
        let summary = serve_lines_concurrent(&service, input.as_bytes(), &mut out, 4).expect("io");
        assert_eq!(summary.requests, 40);
        assert_eq!(summary.ok, 40, "EOF must drain every queued request");
        assert!(!summary.clean_shutdown, "plain EOF is not a clean shutdown");
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 40);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.contains(&format!("\"id\": \"r{i}\"")),
                "response {i} out of order: {line}"
            );
        }
    }

    #[test]
    fn concurrent_loop_honors_drain_position_not_timing() {
        let service = service();
        let mut input = String::new();
        for i in 0..8 {
            input.push_str(&format!(
                "{{\"id\": \"pre{i}\", \"workload\": \"motivating\"}}\n"
            ));
        }
        input.push_str("{\"id\": \"d\", \"op\": \"drain\"}\n");
        for i in 0..8 {
            input.push_str(&format!(
                "{{\"id\": \"post{i}\", \"workload\": \"motivating\"}}\n"
            ));
        }
        let mut out = Vec::new();
        let summary = serve_lines_concurrent(&service, input.as_bytes(), &mut out, 4).expect("io");
        assert!(summary.clean_shutdown);
        assert_eq!(summary.requests, 17);
        assert_eq!(summary.ok, 9, "8 pre-drain requests + the drain ack");
        assert_eq!(summary.errors, 8, "8 post-drain requests refused");
        let text = std::str::from_utf8(&out).expect("utf8");
        for (i, line) in text.lines().enumerate() {
            if i < 8 {
                assert!(line.contains("\"status\": \"ok\""), "pre-drain {i}: {line}");
            } else if i > 8 {
                assert!(line.contains("draining"), "post-drain {i}: {line}");
            }
        }
    }

    #[test]
    fn concurrent_shutdown_answers_everything_ahead_of_it() {
        let service = service();
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&format!(
                "{{\"id\": \"r{i}\", \"workload\": \"ffnn-small:16\"}}\n"
            ));
        }
        input.push_str("{\"id\": \"s\", \"op\": \"shutdown\"}\n");
        input.push_str("{\"id\": \"never\", \"workload\": \"motivating\"}\n");
        let mut out = Vec::new();
        let summary = serve_lines_concurrent(&service, input.as_bytes(), &mut out, 3).expect("io");
        assert!(summary.clean_shutdown);
        assert_eq!(summary.ok, 7, "6 answers + the shutdown ack");
        let lines: Vec<&str> = std::str::from_utf8(&out).expect("utf8").lines().collect();
        assert_eq!(lines.len(), 7, "nothing served past shutdown: {lines:?}");
        assert!(lines[6].contains("\"op\": \"shutdown\""), "{}", lines[6]);
    }

    #[test]
    fn unknown_op_is_an_error_response_not_a_parse_failure() {
        let service = service();
        let line = respond(&service, r#"{"id": "x", "op": "flush"}"#);
        assert!(line.contains("\"status\": \"error\""), "{line}");
        assert!(line.contains("unknown op"), "{line}");
        assert!(line.contains("\"id\": \"x\""), "{line}");
    }
}
