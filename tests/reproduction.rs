//! Cross-crate integration tests: the paper's headline experimental
//! claims, checked end-to-end against the full pipeline
//! (graph builders → optimizer → baselines → simulator).

use matopt_baselines::{
    all_tile_plan, expert_plan, hand_written_plan, simulate_pytorch_ffnn, systemds_plan, Expertise,
    PyTorchProfile,
};
use matopt_bench::figures;
use matopt_bench::Env;
use matopt_core::{Cluster, FormatCatalog};
use matopt_engine::{simulate_plan, SimOutcome};
use matopt_graphs::{
    ffnn_full_pass_graph, ffnn_train_step_graph, ffnn_w2_update_graph, matmul_chain_graph,
    motivating_graph, two_level_inverse_graph, FfnnConfig, SizeSet,
};

fn sim(
    env: &Env,
    g: &matopt_core::ComputeGraph,
    ann: &matopt_core::Annotation,
    cl: Cluster,
) -> SimOutcome {
    env.simulate(g, ann, cl)
}

/// §2.1 / Figure 1: the broadcast-join implementation beats the tiled
/// implementation by more than an order of magnitude, and the optimizer
/// finds a plan at least as good as the hand-tuned fast one.
#[test]
fn motivating_example_ordering() {
    let env = Env::new();
    let table = figures::fig01(&env);
    // Row layout: [label, impl1_ours, impl1_paper, impl2_ours, impl2_paper].
    let total = table.rows.last().expect("total row");
    assert_eq!(total[0], "total");
    // impl1 is minutes, impl2 is seconds.
    assert!(total[1].contains(':'), "impl1 cell: {}", total[1]);
    let to_secs = |cell: &str| -> f64 {
        let parts: Vec<u64> = cell.split(':').map(|p| p.parse().unwrap_or(0)).collect();
        parts.iter().fold(0.0, |acc, p| acc * 60.0 + *p as f64)
    };
    let impl1 = to_secs(&total[1]);
    let impl2 = to_secs(&total[3]);
    assert!(
        impl1 > 10.0 * impl2,
        "expected >10x gap, got impl1={impl1}s impl2={impl2}s"
    );
}

/// Figures 6–7: the auto-generated plan is never worse than the
/// hand-written or all-tile plans, and survives configurations where
/// the heuristics crash.
#[test]
fn ffnn_auto_dominates_baselines() {
    let env = Env::new();
    let catalog = FormatCatalog::paper_default().dense_only();
    for (hidden, workers) in [
        (10_000u64, 10usize),
        (80_000, 10),
        (160_000, 10),
        (160_000, 5),
    ] {
        let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(hidden))
            .unwrap()
            .graph;
        let cluster = Cluster::simsql_like(workers);
        let ctx = env.ctx(cluster);
        let auto = env.auto_plan(&g, cluster, &catalog).expect("auto plan");
        let auto_out = sim(&env, &g, &auto.annotation, cluster);
        assert!(
            !auto_out.failed(),
            "auto plan must survive hidden={hidden} workers={workers}"
        );
        let auto_secs = auto_out.seconds().unwrap();
        for plan in [
            hand_written_plan(&g, &ctx, &env.model),
            all_tile_plan(&g, &ctx, &env.model),
        ] {
            let Ok(ann) = plan else { continue };
            match sim(&env, &g, &ann, cluster) {
                SimOutcome::Finished { seconds } => assert!(
                    auto_secs <= seconds * 1.001,
                    "auto {auto_secs}s worse than baseline {seconds}s at hidden={hidden}"
                ),
                SimOutcome::Failed { .. } => {} // baseline crashed; auto did not
            }
        }
    }
}

/// Figure 6's 160K row: the all-tile heuristic crashes from
/// intermediate-data explosion while the optimizer's plan runs.
#[test]
fn all_tile_fails_at_160k_where_auto_survives() {
    let env = Env::new();
    let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(160_000))
        .unwrap()
        .graph;
    let cluster = Cluster::simsql_like(10);
    let ctx = env.ctx(cluster);
    let tiles = all_tile_plan(&g, &ctx, &env.model).unwrap();
    assert!(sim(&env, &g, &tiles, cluster).failed());
    let auto = env
        .auto_plan(&g, cluster, &FormatCatalog::paper_default().dense_only())
        .unwrap();
    assert!(!sim(&env, &g, &auto.annotation, cluster).failed());
}

/// Experiment 1 (Figure 5): the full-pass graph matches the paper's 57
/// vertices and optimizes + simulates successfully.
#[test]
fn full_pass_graph_reproduces() {
    let env = Env::new();
    let g = ffnn_full_pass_graph(FfnnConfig::simsql_experiment(80_000))
        .unwrap()
        .graph;
    assert_eq!(g.len(), 57);
    let cluster = Cluster::simsql_like(10);
    let auto = env
        .auto_plan(&g, cluster, &FormatCatalog::paper_default().dense_only())
        .unwrap();
    let out = sim(&env, &g, &auto.annotation, cluster);
    let secs = out.seconds().expect("finishes");
    // Paper: 59:02. Shape check: within [25, 120] minutes.
    assert!(secs > 1500.0 && secs < 7200.0, "got {secs}s");
}

/// Experiment 4 (Figure 8): plan quality orders with distributed-ML
/// expertise, and the high-expertise plan nearly matches the optimizer.
#[test]
fn expert_ordering_matches_paper() {
    let env = Env::new();
    let g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(80_000))
        .unwrap()
        .graph;
    let cluster = Cluster::simsql_like(10);
    let ctx = env.ctx(cluster);
    let auto = env
        .auto_plan(&g, cluster, &FormatCatalog::paper_default().dense_only())
        .unwrap();
    let auto_secs = sim(&env, &g, &auto.annotation, cluster).seconds().unwrap();
    let secs_of = |level| {
        let p = expert_plan(&g, &ctx, &env.model, level).unwrap();
        sim(&env, &g, &p.annotation, cluster).seconds().unwrap()
    };
    let (low, med, high) = (
        secs_of(Expertise::Low),
        secs_of(Expertise::Medium),
        secs_of(Expertise::High),
    );
    assert!(high <= med && med <= low, "{high} / {med} / {low}");
    assert!(
        high < auto_secs * 1.10,
        "high expert should nearly match auto"
    );
    assert!(low > auto_secs * 1.25, "low expert should lag clearly");
}

/// §8.2: the two-level block inverse and the multiplication chains all
/// optimize, and auto beats the baselines.
#[test]
fn inverse_and_chain_auto_wins() {
    let env = Env::new();
    let cluster = Cluster::simsql_like(10);
    let catalog = FormatCatalog::paper_default().dense_only();
    let mut graphs = vec![two_level_inverse_graph(10_000, 2_000).unwrap().graph];
    for set in [SizeSet::Set1, SizeSet::Set2, SizeSet::Set3] {
        graphs.push(matmul_chain_graph(set, &cluster).unwrap().graph);
    }
    for g in &graphs {
        let ctx = env.ctx(cluster);
        let auto = env.auto_plan(g, cluster, &catalog).expect("plans");
        let auto_secs = sim(&env, g, &auto.annotation, cluster)
            .seconds()
            .expect("auto finishes");
        if let Ok(hand) = hand_written_plan(g, &ctx, &env.model) {
            if let Some(hand_secs) = sim(&env, g, &hand, cluster).seconds() {
                assert!(auto_secs <= hand_secs * 1.001);
            }
        }
    }
}

/// Figures 11–12: PyTorch fails at layer 7000 (model does not fit), the
/// optimizer's sparse plans beat its dense-constrained plans, and
/// SystemDS-style planning lands in between.
#[test]
fn system_comparison_shapes() {
    let env = Env::new();
    let workers = 5;
    let cluster = Cluster::plinycompute_like(workers);

    // PyTorch OOM at 7000.
    assert!(simulate_pytorch_ffnn(
        &FfnnConfig::amazoncat(1000, 7000, false),
        workers,
        &PyTorchProfile::default()
    )
    .failed());

    // Sparse vs dense-constrained PC at 10K batch.
    let dense_g = ffnn_train_step_graph(FfnnConfig::amazoncat(10_000, 4000, false))
        .unwrap()
        .graph;
    let dense = env
        .auto_plan(
            &dense_g,
            cluster,
            &FormatCatalog::paper_default().dense_only(),
        )
        .unwrap();
    let dense_secs = sim(&env, &dense_g, &dense.annotation, cluster)
        .seconds()
        .unwrap();
    let sparse_g = ffnn_train_step_graph(FfnnConfig::amazoncat(10_000, 4000, true))
        .unwrap()
        .graph;
    let sparse = env
        .auto_plan(&sparse_g, cluster, &FormatCatalog::paper_default())
        .unwrap();
    let sparse_secs = sim(&env, &sparse_g, &sparse.annotation, cluster)
        .seconds()
        .unwrap();
    assert!(
        sparse_secs < dense_secs * 0.95,
        "sparsity must pay off: sparse {sparse_secs}s vs dense {dense_secs}s"
    );

    // SystemDS-style greedy: runs, but no better than the optimizer.
    let ctx = env.ctx(cluster);
    let sds = systemds_plan(&sparse_g, &ctx, &env.model).unwrap();
    let sds_secs = sim(&env, &sparse_g, &sds, cluster).seconds().unwrap();
    assert!(sparse_secs <= sds_secs * 1.001);
}

/// The §2.1 motivating graph's auto plan gathers the small intermediate
/// into one tuple and broadcast-joins — the Implementation-2 trick.
#[test]
fn optimizer_discovers_the_broadcast_trick() {
    let env = Env::new();
    let m = motivating_graph().unwrap();
    let cluster = Cluster::simsql_like(5);
    let auto = env
        .auto_plan(
            &m.graph,
            cluster,
            &FormatCatalog::paper_default().dense_only(),
        )
        .unwrap();
    let ctx = env.ctx(cluster);
    let report = simulate_plan(&m.graph, &auto.annotation, &ctx, &env.model).unwrap();
    let secs = report.outcome.seconds().unwrap();
    assert!(
        secs < 120.0,
        "auto plan should be within ~1 min, got {secs}s"
    );
    // The final multiply must consume matAB as a single tuple
    // (gathered) or broadcast-friendly format — not as a sea of tiles
    // going through a shuffle aggregation.
    let choice = auto.annotation.choice(m.mat_abc).unwrap();
    let strategy = env.registry.get(choice.impl_id).strategy;
    assert!(
        !matches!(strategy, matopt_core::Strategy::MmTileShuffle),
        "auto plan must avoid the tile-shuffle for the second multiply"
    );
}
