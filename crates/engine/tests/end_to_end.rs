//! End-to-end engine tests: optimized plans and randomly sampled
//! type-correct annotations all execute to the same numbers as a plain
//! single-node reference evaluation.

use matopt_core::{
    validate, Annotation, Cluster, ComputeGraph, FormatCatalog, ImplRegistry, MatrixType, NodeId,
    NodeKind, Op, PhysFormat, PlanContext, VertexChoice,
};
use matopt_cost::{AnalyticalCostModel, LearnedCostModel};
use matopt_engine::{execute_plan, reference_eval, DistRelation};
use matopt_kernels::{random_dense_normal, seeded_rng, DenseMatrix};
use matopt_opt::{frontier_dp, transform_cost, vertex_options, OptContext};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small-scale catalog so tiny test matrices still have several
/// feasible layouts.
fn small_catalog() -> FormatCatalog {
    FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 4 },
        PhysFormat::Tile { side: 8 },
        PhysFormat::RowStrip { height: 4 },
        PhysFormat::RowStrip { height: 8 },
        PhysFormat::ColStrip { width: 4 },
        PhysFormat::ColStrip { width: 8 },
        PhysFormat::Coo,
        PhysFormat::CsrSingle,
        PhysFormat::CsrTile { side: 4 },
    ])
}

fn fixtures() -> (ImplRegistry, Cluster) {
    (ImplRegistry::paper_default(), Cluster::simsql_like(4))
}

/// Builds dense inputs for every source and returns both chunked and
/// plain views.
fn make_inputs(
    graph: &ComputeGraph,
    seed: u64,
) -> (HashMap<NodeId, DistRelation>, HashMap<NodeId, DenseMatrix>) {
    let mut rng = seeded_rng(seed);
    let mut rels = HashMap::new();
    let mut dense = HashMap::new();
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let mut d =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            // Keep inverse inputs well conditioned.
            if node.mtype.is_square() {
                for i in 0..node.mtype.rows as usize {
                    let v = d.get(i, i) + node.mtype.rows as f64 * 2.0;
                    d.set(i, i, v);
                }
            }
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
            dense.insert(id, d);
        }
    }
    (rels, dense)
}

fn check_plan_matches_reference(graph: &ComputeGraph, annotation: &Annotation, seed: u64) {
    let (reg, _) = fixtures();
    let (rels, dense) = make_inputs(graph, seed);
    let out = execute_plan(graph, annotation, &rels, &reg).expect("plan executes");
    let expect = reference_eval(graph, &dense).expect("reference evaluates");
    for (sink, rel) in &out.sinks {
        let got = rel.to_dense();
        let want = &expect[sink];
        assert!(
            got.approx_eq(want, 1e-9),
            "sink {sink} diverged; max err {}",
            got.frobenius_distance(want)
        );
    }
}

/// A mixed workload touching matmul, elementwise, softmax, transpose,
/// reductions, and bias addition.
fn mixed_graph() -> ComputeGraph {
    let mut g = ComputeGraph::new();
    let x = g.add_source(
        MatrixType::dense(12, 20),
        PhysFormat::RowStrip { height: 4 },
    );
    let w = g.add_source(MatrixType::dense(20, 16), PhysFormat::Tile { side: 8 });
    let b = g.add_source(MatrixType::dense(1, 16), PhysFormat::SingleTuple);
    let xw = g.add_op(Op::MatMul, &[x, w]).unwrap();
    let a = g.add_op(Op::BroadcastAddRow, &[xw, b]).unwrap();
    let h = g.add_op(Op::Relu, &[a]).unwrap();
    let s = g.add_op(Op::Softmax, &[h]).unwrap();
    let t = g.add_op(Op::Transpose, &[s]).unwrap();
    let _sums = g.add_op(Op::RowSums, &[t]).unwrap();
    g
}

#[test]
fn optimized_plan_executes_to_reference_values() {
    let (reg, cl) = fixtures();
    let ctx = PlanContext::new(&reg, cl);
    let cat = small_catalog();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &cat, &model);
    let g = mixed_graph();
    let opt = frontier_dp(&g, &octx).expect("optimizable");
    validate(&g, &opt.annotation, &ctx).expect("type-correct");
    check_plan_matches_reference(&g, &opt.annotation, 99);
}

#[test]
fn inverse_graph_executes_to_reference_values() {
    let (reg, cl) = fixtures();
    let ctx = PlanContext::new(&reg, cl);
    let cat = small_catalog();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &cat, &model);
    let mut g = ComputeGraph::new();
    let a = g.add_source(MatrixType::dense(16, 16), PhysFormat::Tile { side: 4 });
    let inv = g.add_op(Op::Inverse, &[a]).unwrap();
    let _id = g.add_op(Op::MatMul, &[a, inv]).unwrap();
    let opt = frontier_dp(&g, &octx).expect("optimizable");
    check_plan_matches_reference(&g, &opt.annotation, 5);
}

#[test]
fn shared_intermediate_graph_executes_correctly() {
    let (reg, cl) = fixtures();
    let ctx = PlanContext::new(&reg, cl);
    let cat = small_catalog();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &cat, &model);
    let mut g = ComputeGraph::new();
    let a = g.add_source(MatrixType::dense(10, 10), PhysFormat::SingleTuple);
    let b = g.add_source(MatrixType::dense(10, 10), PhysFormat::Tile { side: 4 });
    let t = g.add_op(Op::MatMul, &[a, b]).unwrap();
    let u = g.add_op(Op::Relu, &[t]).unwrap();
    let v = g.add_op(Op::Neg, &[t]).unwrap();
    let _o = g.add_op(Op::Add, &[u, v]).unwrap();
    let opt = frontier_dp(&g, &octx).expect("optimizable");
    check_plan_matches_reference(&g, &opt.annotation, 7);
}

#[test]
fn sparse_input_plans_execute_correctly() {
    // A sparse batch times a dense model: the optimizer may pick CSR or
    // COO layouts; the numbers must still match.
    let (reg, cl) = fixtures();
    let ctx = PlanContext::new(&reg, cl);
    let cat = small_catalog();
    let model = AnalyticalCostModel;
    let octx = OptContext::new(&ctx, &cat, &model);
    let mut g = ComputeGraph::new();
    let x = g.add_source(
        MatrixType::sparse(12, 16, 0.2),
        PhysFormat::CsrTile { side: 4 },
    );
    let w = g.add_source(MatrixType::dense(16, 8), PhysFormat::Tile { side: 4 });
    let xw = g.add_op(Op::MatMul, &[x, w]).unwrap();
    let _r = g.add_op(Op::Relu, &[xw]).unwrap();
    let opt = frontier_dp(&g, &octx).expect("optimizable");

    // Build sparse-ish input data by thresholding.
    let (reg2, _) = fixtures();
    let mut rng = seeded_rng(31);
    let mut rels = HashMap::new();
    let mut dense = HashMap::new();
    for (id, node) in g.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let d0 =
                random_dense_normal(node.mtype.rows as usize, node.mtype.cols as usize, &mut rng);
            let d = if node.mtype.sparsity < 1.0 {
                d0.map(|v| if v > 0.9 { v } else { 0.0 })
            } else {
                d0
            };
            rels.insert(id, DistRelation::from_dense(&d, *format).unwrap());
            dense.insert(id, d);
        }
    }
    let out = execute_plan(&g, &opt.annotation, &rels, &reg2).unwrap();
    let expect = reference_eval(&g, &dense).unwrap();
    for (sink, rel) in &out.sinks {
        assert!(rel.to_dense().approx_eq(&expect[sink], 1e-9));
    }
}

#[test]
fn calibration_fits_a_usable_learned_model() {
    use matopt_cost::CostModel;
    let cl = Cluster::simsql_like(4);
    let small = matopt_core::CostFeatures {
        cpu_flops: 1e6,
        local_flops: 0.0,
        net_bytes: 1e4,
        inter_bytes: 1e4,
        tuples: 4.0,
        ops: 1.0,
    };
    let big = matopt_core::CostFeatures {
        cpu_flops: 1e9,
        local_flops: 0.0,
        net_bytes: 1e7,
        inter_bytes: 1e7,
        tuples: 400.0,
        ops: 2.0,
    };
    // The samples are wall-clock micro-benchmarks at tiny scales; on a
    // machine busy running the rest of the suite a noise spike can tip
    // the flops coefficient negative, so allow a bounded re-measure.
    let mut last = (0.0, 0.0);
    for seed in [17, 18, 19] {
        let samples = matopt_engine::collect_samples(&[32, 48, 64, 96], seed, &cl);
        assert!(samples.len() > 20, "got {} samples", samples.len());
        let learned = LearnedCostModel::fit(&samples);
        assert!(learned.specialized_models() >= 3);
        // The learned model must order a big multiply above a small one.
        let ts = learned.impl_time(matopt_core::OpKind::MatMul, &small, &cl);
        let tb = learned.impl_time(matopt_core::OpKind::MatMul, &big, &cl);
        if tb > ts {
            return;
        }
        last = (tb, ts);
    }
    panic!(
        "learned model inverted on every attempt: big {} <= small {}",
        last.0, last.1
    );
}

/// Builds a random type-correct annotation by picking uniformly among
/// each vertex's feasible options, in topological order.
fn random_annotation(
    graph: &ComputeGraph,
    octx: &OptContext<'_>,
    picks: &mut impl FnMut(usize) -> usize,
) -> Option<Annotation> {
    let mut ann = Annotation::empty(graph);
    let mut formats: Vec<Option<PhysFormat>> =
        graph.iter().map(|(_, n)| n.source_format()).collect();
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Source { .. }) {
            continue;
        }
        let extra: Vec<Vec<PhysFormat>> = node
            .inputs
            .iter()
            .map(|i| formats[i.index()].into_iter().collect())
            .collect();
        let options = vertex_options(graph, id, octx.catalog, octx.plan, octx.model, &extra);
        // Keep only options reachable from the producers' formats.
        let feasible: Vec<_> = options
            .into_iter()
            .filter_map(|o| {
                let mut ts = Vec::new();
                for (j, input) in node.inputs.iter().enumerate() {
                    let from = formats[input.index()]?;
                    let m = graph.node(*input).mtype;
                    let (t, _) = transform_cost(&m, from, o.pin[j], octx.plan, octx.model)?;
                    ts.push(t);
                }
                Some((o, ts))
            })
            .collect();
        if feasible.is_empty() {
            return None;
        }
        let (o, ts) = &feasible[picks(feasible.len())];
        formats[id.index()] = Some(o.out_format);
        ann.set(
            id,
            VertexChoice {
                impl_id: o.impl_id,
                input_transforms: ts.clone(),
                output_format: o.out_format,
            },
        );
    }
    Some(ann)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE core soundness property: any sampled type-correct annotation
    /// of the mixed workload computes exactly the reference values.
    #[test]
    fn any_type_correct_annotation_matches_reference(seed in 0u64..5000) {
        let (reg, cl) = fixtures();
        let ctx = PlanContext::new(&reg, cl);
        let cat = small_catalog();
        let model = AnalyticalCostModel;
        let octx = OptContext::new(&ctx, &cat, &model);
        let g = mixed_graph();
        let mut rng = seeded_rng(seed);
        let mut pick = |n: usize| {
            use rand::RngExt;
            rng.random_range(0..n)
        };
        if let Some(ann) = random_annotation(&g, &octx, &mut pick) {
            validate(&g, &ann, &ctx).expect("sampled annotation type-correct");
            check_plan_matches_reference(&g, &ann, seed);
        }
    }

    /// The DP optimum never costs more than a sampled annotation.
    #[test]
    fn dp_cost_lower_bounds_sampled_plans(seed in 0u64..5000) {
        let (reg, cl) = fixtures();
        let ctx = PlanContext::new(&reg, cl);
        let cat = small_catalog();
        let model = AnalyticalCostModel;
        let octx = OptContext::new(&ctx, &cat, &model);
        let g = mixed_graph();
        let best = frontier_dp(&g, &octx).unwrap();
        let mut rng = seeded_rng(seed);
        let mut pick = |n: usize| {
            use rand::RngExt;
            rng.random_range(0..n)
        };
        if let Some(ann) = random_annotation(&g, &octx, &mut pick) {
            let cost = matopt_cost::plan_cost(&g, &ann, &ctx, &model).unwrap();
            prop_assert!(
                best.cost <= cost * (1.0 + 1e-9),
                "DP {} > sampled {}",
                best.cost,
                cost
            );
        }
    }
}
