//! LU factorization with partial pivoting, linear solves, and matrix
//! inversion.
//!
//! The `inv_single_local` atomic-computation implementation and the
//! sub-block inverses of the paper's two-level block-wise inverse
//! experiment (§8.2) bottom out here. The learned cost model also uses
//! [`lu_solve`] to solve its normal equations — the library dogfoods its
//! own kernels.

use crate::DenseMatrix;

/// Error raised when a matrix cannot be factorized/inverted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LuError {
    /// The input was not square.
    NotSquare,
    /// A zero (or numerically negligible) pivot was encountered; the
    /// matrix is singular to working precision.
    Singular {
        /// Index of the failing pivot column.
        pivot: usize,
    },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "matrix is not square"),
            LuError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at column {pivot})")
            }
        }
    }
}

impl std::error::Error for LuError {}

/// The result of an LU factorization with partial pivoting: `P·A = L·U`
/// stored compactly (unit-lower `L` below the diagonal, `U` on and above).
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: DenseMatrix,
    /// `perm[i]` is the row of the original matrix that ended up in row `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (parity of the permutation).
    swaps: usize,
}

impl LuFactors {
    /// Order of the factorized matrix.
    pub fn order(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix, computed from the pivots.
    pub fn determinant(&self) -> f64 {
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.order() {
            det *= self.lu.get(i, i);
        }
        det
    }
}

/// Numerical threshold below which a pivot is treated as zero.
const PIVOT_EPS: f64 = 1e-12;

/// Factorizes `a` as `P·A = L·U` with partial pivoting.
pub fn lu_factor(a: &DenseMatrix) -> Result<LuFactors, LuError> {
    if a.rows() != a.cols() {
        return Err(LuError::NotSquare);
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut swaps = 0usize;

    for col in 0..n {
        // Partial pivot: pick the largest magnitude entry in this column.
        let mut pivot_row = col;
        let mut pivot_val = lu.get(col, col).abs();
        for r in col + 1..n {
            let v = lu.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < PIVOT_EPS {
            return Err(LuError::Singular { pivot: col });
        }
        if pivot_row != col {
            swap_rows(&mut lu, col, pivot_row);
            perm.swap(col, pivot_row);
            swaps += 1;
        }
        let pivot = lu.get(col, col);
        for r in col + 1..n {
            let factor = lu.get(r, col) / pivot;
            lu.set(r, col, factor);
            if factor != 0.0 {
                for c in col + 1..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
            }
        }
    }
    Ok(LuFactors { lu, perm, swaps })
}

fn swap_rows(m: &mut DenseMatrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    let data = m.data_mut();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (head, tail) = data.split_at_mut(hi * cols);
    head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
}

/// Solves `A · X = B` given the LU factors of `A`; `B` may have any
/// number of right-hand-side columns.
pub fn lu_solve(factors: &LuFactors, b: &DenseMatrix) -> DenseMatrix {
    let n = factors.order();
    assert_eq!(b.rows(), n, "rhs row count must match the matrix order");
    let k = b.cols();
    // Apply the permutation to the right-hand side.
    let mut x = DenseMatrix::zeros(n, k);
    for i in 0..n {
        for j in 0..k {
            x.set(i, j, b.get(factors.perm[i], j));
        }
    }
    // Forward substitution with unit-lower L.
    for i in 0..n {
        for r in 0..i {
            let l = factors.lu.get(i, r);
            if l != 0.0 {
                for j in 0..k {
                    let v = x.get(i, j) - l * x.get(r, j);
                    x.set(i, j, v);
                }
            }
        }
    }
    // Back substitution with U.
    for i in (0..n).rev() {
        for r in i + 1..n {
            let u = factors.lu.get(i, r);
            if u != 0.0 {
                for j in 0..k {
                    let v = x.get(i, j) - u * x.get(r, j);
                    x.set(i, j, v);
                }
            }
        }
        let d = factors.lu.get(i, i);
        for j in 0..k {
            x.set(i, j, x.get(i, j) / d);
        }
    }
    x
}

impl DenseMatrix {
    /// Inverse via LU factorization with partial pivoting.
    ///
    /// # Errors
    /// Returns [`LuError`] when the matrix is non-square or singular.
    pub fn inverse(&self) -> Result<DenseMatrix, LuError> {
        let factors = lu_factor(self)?;
        Ok(lu_solve(&factors, &DenseMatrix::identity(self.rows())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_of_identity() {
        let i = DenseMatrix::identity(4);
        assert!(i.inverse().unwrap().approx_eq(&i, 1e-12));
    }

    #[test]
    fn inverse_known_2x2() {
        let a = DenseMatrix::from_vec(2, 2, vec![4.0, 7.0, 2.0, 6.0]);
        let inv = a.inverse().unwrap();
        let expect = DenseMatrix::from_vec(2, 2, vec![0.6, -0.7, -0.2, 0.4]);
        assert!(inv.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        // Diagonally-dominant matrices are well conditioned.
        let n = 24;
        let a = DenseMatrix::from_fn(n, n, |r, c| {
            if r == c {
                n as f64 + 1.0
            } else {
                ((r * 7 + c * 3) % 5) as f64 * 0.25
            }
        });
        let inv = a.inverse().unwrap();
        assert!(a.matmul(&inv).approx_eq(&DenseMatrix::identity(n), 1e-9));
        assert!(inv.matmul(&a).approx_eq(&DenseMatrix::identity(n), 1e-9));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(a.inverse(), Err(LuError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert_eq!(a.inverse().unwrap_err(), LuError::NotSquare);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let inv = a.inverse().unwrap();
        assert!(inv.approx_eq(&a, 1e-12)); // a permutation is its own inverse
    }

    #[test]
    fn determinant_from_pivots() {
        let a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 2.0]);
        let f = lu_factor(&a).unwrap();
        assert!(crate::approx_eq(f.determinant(), 6.0, 1e-12));
        let swap = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(crate::approx_eq(
            lu_factor(&swap).unwrap().determinant(),
            -1.0,
            1e-12
        ));
    }

    #[test]
    fn lu_solve_multiple_rhs() {
        let a = DenseMatrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 8.0]);
        let b = DenseMatrix::from_vec(3, 2, vec![2.0, 4.0, 8.0, 12.0, 16.0, 24.0]);
        let f = lu_factor(&a).unwrap();
        let x = lu_solve(&f, &b);
        let expect = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 2.0, 3.0, 2.0, 3.0]);
        assert!(x.approx_eq(&expect, 1e-12));
    }
}
