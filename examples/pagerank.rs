//! PageRank over a sparse transition matrix: the optimizer keeps the
//! web graph in a CSR layout through every power iteration, and the
//! damped iteration converges to the same ranks a plain evaluation
//! produces.
//!
//! Run with: `cargo run --release -p matopt-bench --example pagerank`

use matopt_core::{
    Cluster, ComputeGraph, FormatCatalog, ImplRegistry, MatrixType, NodeKind, Op, PhysFormat,
    PlanContext,
};
use matopt_cost::AnalyticalCostModel;
use matopt_engine::{execute_plan, simulate_plan, DistRelation};
use matopt_graphs::pagerank_graph;
use matopt_kernels::{random_sparse_csr, seeded_rng, DenseMatrix};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::collections::HashMap;

fn main() {
    let registry = ImplRegistry::paper_default();
    let model = AnalyticalCostModel;

    // --- Paper scale: a million-page web graph, simulated ---------------
    let p = pagerank_graph(1_000_000, 1e-5, 0.85, 5).expect("builds");
    let cluster = Cluster::simsql_like(10);
    let ctx = PlanContext::new(&registry, cluster);
    let full_catalog = FormatCatalog::paper_default();
    let octx = OptContext::new(&ctx, &full_catalog, &model);
    let plan = frontier_dp_beam(&p.graph, &octx, 2000).expect("plannable");
    let report = simulate_plan(&p.graph, &plan.annotation, &ctx, &model).unwrap();
    println!(
        "5 PageRank iterations over a 1M-page graph (10 workers): estimated {}",
        report.outcome
    );
    // Every multiply stays sparse.
    for (id, node) in p.graph.iter() {
        if node.op().map(|o| o.kind()) == Some(matopt_core::OpKind::MatMul) {
            let s = registry
                .get(plan.annotation.choice(id).unwrap().impl_id)
                .strategy;
            println!("  {} uses {:?}", node.name.clone().unwrap_or_default(), s);
        }
    }

    // --- Toy scale: execute for real and converge ------------------------
    let n = 64usize;
    let iters = 30usize;
    let alpha = 0.85;
    let mut rng = seeded_rng(21);
    // Random adjacency, column-normalized to a transition matrix (with
    // uniform columns for dangling pages).
    let adj =
        random_sparse_csr(n, n, 0.08, &mut rng)
            .to_dense()
            .map(|v| if v != 0.0 { 1.0 } else { 0.0 });
    let mut transition = DenseMatrix::zeros(n, n);
    for c in 0..n {
        let col_sum: f64 = (0..n).map(|r| adj.get(r, c)).sum();
        for r in 0..n {
            let v = if col_sum > 0.0 {
                adj.get(r, c) / col_sum
            } else {
                1.0 / n as f64
            };
            transition.set(r, c, v);
        }
    }

    let mut g = ComputeGraph::new();
    let t = g.add_source(
        MatrixType::sparse(n as u64, n as u64, 0.1),
        PhysFormat::CsrTile { side: 8 },
    );
    let r0 = g.add_source(MatrixType::dense(n as u64, 1), PhysFormat::SingleTuple);
    let u = g.add_source(MatrixType::dense(n as u64, 1), PhysFormat::SingleTuple);
    let mut r = r0;
    for _ in 0..iters {
        let pr = g.add_op(Op::MatMul, &[t, r]).unwrap();
        let damped = g.add_op(Op::ScalarMul(alpha), &[pr]).unwrap();
        let tele = g.add_op(Op::ScalarMul(1.0 - alpha), &[u]).unwrap();
        r = g.add_op(Op::Add, &[damped, tele]).unwrap();
    }

    let toy_cluster = Cluster::simsql_like(4);
    let toy_ctx = PlanContext::new(&registry, toy_cluster);
    let catalog = FormatCatalog::new(vec![
        PhysFormat::SingleTuple,
        PhysFormat::Tile { side: 8 },
        PhysFormat::CsrTile { side: 8 },
        PhysFormat::CsrSingle,
    ]);
    let toy_octx = OptContext::new(&toy_ctx, &catalog, &model);
    let toy_plan = frontier_dp_beam(&g, &toy_octx, 2000).expect("plannable");

    let uniform = DenseMatrix::from_fn(n, 1, |_, _| 1.0 / n as f64);
    let mut inputs = HashMap::new();
    for (id, node) in g.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let data = if id == t { &transition } else { &uniform };
            inputs.insert(id, DistRelation::from_dense(data, *format).unwrap());
        }
    }
    let out = execute_plan(&g, &toy_plan.annotation, &inputs, &registry).expect("executes");
    let ranks = out.sinks.values().next().unwrap().to_dense();
    let total: f64 = ranks.data().iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "ranks must stay a distribution");
    // Fixed-point check: one more damped step changes nothing.
    let next = transition
        .matmul(&ranks)
        .scale(alpha)
        .add(&uniform.scale(1.0 - alpha));
    let drift = next.frobenius_distance(&ranks);
    println!("\ntoy 64-page graph after {iters} executed iterations:");
    println!("  rank mass {total:.12}, fixed-point drift {drift:.2e}");
    assert!(drift < 1e-6, "power iteration should have converged");
    println!(
        "  converged; top rank {:.4}",
        ranks.data().iter().cloned().fold(0.0, f64::max)
    );
}
