//! Ablation studies over the optimizer's design choices, quantifying
//! the claims DESIGN.md calls out:
//!
//! 1. **Transform-cost integration** — the paper's key idea vs.
//!    SystemDS-style per-operator choice (§9): greedy planning with and
//!    without transformation costs in the objective, vs. the global DP.
//! 2. **Format-catalog size** — plan quality under the 10-, 16- and
//!    19-format catalogs of §8.4.
//! 3. **Beam width** — the `frontier_dp_beam` approximation knob: plan
//!    cost and planning time as the joint-table cap varies.
//! 4. **Cost model** — plans chosen under the learned (regression)
//!    model vs. the analytic model, cross-scored.
//!
//! Run with: `cargo run --release -p matopt-bench --bin ablation`

use matopt_baselines::GreedyConfig;
use matopt_bench::{Env, FigTable};
use matopt_core::{Cluster, FormatCatalog, PlanContext};
use matopt_cost::{plan_cost, CostModel, LearnedCostModel};
use matopt_engine::collect_samples;
use matopt_graphs::{
    ffnn_w2_update_graph, matmul_chain_graph, two_level_inverse_graph, FfnnConfig, SizeSet,
};
use matopt_opt::{frontier_dp_beam, OptContext};
use std::time::Instant;

fn main() {
    let env = Env::new();
    println!("{}", transform_cost_ablation(&env));
    println!("{}", catalog_ablation(&env));
    println!("{}", beam_ablation(&env));
    println!("{}", cost_model_ablation(&env));
}

/// How much of the optimizer's win comes from integrating
/// transformation costs and from global (vs. greedy) optimization?
fn transform_cost_ablation(env: &Env) -> FigTable {
    let cluster = Cluster::simsql_like(10);
    let ctx = env.ctx(cluster);
    let catalog = FormatCatalog::paper_default().dense_only();
    let workloads: Vec<(&str, matopt_core::ComputeGraph)> = vec![
        (
            "ffnn_w2_80K",
            ffnn_w2_update_graph(FfnnConfig::simsql_experiment(80_000))
                .unwrap()
                .graph,
        ),
        (
            "chain_set1",
            matmul_chain_graph(SizeSet::Set1, &cluster).unwrap().graph,
        ),
        (
            "inverse_2level",
            two_level_inverse_graph(10_000, 2_000).unwrap().graph,
        ),
    ];
    let mut rows = Vec::new();
    for (name, g) in &workloads {
        let greedy = |count_transform_cost: bool| -> f64 {
            let cfg = GreedyConfig {
                catalog: catalog.clone(),
                count_transform_cost,
                respect_memory: false,
                forbidden: Vec::new(),
                format_preference: None,
            };
            let ann = matopt_baselines::greedy_plan(g, &ctx, &env.model, &cfg).expect("plans");
            let unlimited = PlanContext {
                registry: ctx.registry,
                transforms: ctx.transforms,
                cluster: cluster.with_unlimited_resources(),
            };
            plan_cost(g, &ann, &unlimited, &env.model).expect("costs")
        };
        let octx = OptContext::new(&ctx, &catalog, &env.model);
        let dp = frontier_dp_beam(g, &octx, 4000).expect("plans").cost;
        let g_with = greedy(true);
        let g_without = greedy(false);
        rows.push(vec![
            name.to_string(),
            format!("{dp:.0}s"),
            format!("{g_with:.0}s ({:.2}x)", g_with / dp),
            format!("{g_without:.0}s ({:.2}x)", g_without / dp),
        ]);
    }
    FigTable {
        id: "Ablation 1",
        title: "Transform-cost integration: global DP vs greedy (with/without transform costs in the objective)",
        header: vec![
            "workload".into(),
            "global DP".into(),
            "greedy + transform costs".into(),
            "greedy, impl costs only (SystemDS-style)".into(),
        ],
        rows,
        notes: vec!["costs are model estimates on a 10-worker SimSQL-like cluster".into()],
    }
}

/// Plan quality as the format catalog shrinks (§8.4's catalogs).
fn catalog_ablation(env: &Env) -> FigTable {
    let cluster = Cluster::simsql_like(10);
    let catalogs = [
        ("single/block (10)", FormatCatalog::single_block()),
        (
            "single/strip/block (16)",
            FormatCatalog::single_strip_block(),
        ),
        ("all formats (19)", FormatCatalog::paper_default()),
    ];
    // A sparse-content workload whose input arrives *densely stored*:
    // exploiting the sparsity requires converting to a CSR layout, which
    // only the 19-format catalog offers. A dense workload shows the
    // (small) value of strips beyond blocks.
    let mut sparse_cfg = FfnnConfig::amazoncat(10_000, 4000, true);
    sparse_cfg.input_format = matopt_core::PhysFormat::ColStrip { width: 1000 };
    let sparse_g = matopt_graphs::ffnn_train_step_graph(sparse_cfg)
        .unwrap()
        .graph;
    let dense_g = ffnn_w2_update_graph(FfnnConfig::simsql_experiment(80_000))
        .unwrap()
        .graph;
    let mut rows = Vec::new();
    for (label, cat) in &catalogs {
        let pc = Cluster::plinycompute_like(5);
        let sparse_cost = env
            .auto_plan(&sparse_g, pc, cat)
            .map(|p| format!("{:.0}s", p.est_cost))
            .unwrap_or_else(|e| e.to_string());
        let dense_cost = env
            .auto_plan(&dense_g, cluster, cat)
            .map(|p| format!("{:.0}s", p.est_cost))
            .unwrap_or_else(|e| e.to_string());
        rows.push(vec![label.to_string(), dense_cost, sparse_cost]);
    }
    FigTable {
        id: "Ablation 2",
        title: "Format-catalog size vs plan quality",
        header: vec![
            "catalog".into(),
            "dense FFNN 80K (SimSQL, 10w)".into(),
            "sparse FFNN 10K batch (PC, 5w)".into(),
        ],
        rows,
        notes: vec![
            "the sparse-content workload (dense-stored input) needs the 19-format catalog's CSR layouts; the dense one gains little beyond blocks".into(),
        ],
    }
}

/// Beam width vs plan cost and planning time on the deep backprop DAG.
fn beam_ablation(env: &Env) -> FigTable {
    let cluster = Cluster::simsql_like(10);
    let ctx = env.ctx(cluster);
    let catalog = FormatCatalog::paper_default().dense_only();
    let octx = OptContext::new(&ctx, &catalog, &env.model);
    let g = matopt_graphs::ffnn_full_pass_graph(FfnnConfig::simsql_experiment(80_000))
        .unwrap()
        .graph;
    let mut rows = Vec::new();
    for beam in [10usize, 50, 200, 1000, 4000] {
        let t0 = Instant::now();
        let plan = frontier_dp_beam(&g, &octx, beam).expect("plans");
        rows.push(vec![
            beam.to_string(),
            format!("{:.0}s", plan.cost),
            format!("{:.2}s", t0.elapsed().as_secs_f64()),
        ]);
    }
    FigTable {
        id: "Ablation 3",
        title: "Beam width on the 57-vertex FFNN graph (joint tables genuinely truncate here)",
        header: vec!["beam".into(), "plan cost".into(), "planning time".into()],
        rows,
        notes: vec![
            "plan cost must be non-increasing in the beam and flat once wide enough".into(),
        ],
    }
}

/// Do the learned and analytic cost models choose compatible plans?
fn cost_model_ablation(env: &Env) -> FigTable {
    // Calibrate the learned model from real micro-benchmark runs.
    let cluster = Cluster::simsql_like(4);
    let samples = collect_samples(&[32, 64, 96, 128], 23, &cluster);
    let learned = LearnedCostModel::fit(&samples);
    let ctx = env.ctx(cluster);
    let catalog = FormatCatalog::new(vec![
        matopt_core::PhysFormat::SingleTuple,
        matopt_core::PhysFormat::Tile { side: 8 },
        matopt_core::PhysFormat::RowStrip { height: 8 },
        matopt_core::PhysFormat::ColStrip { width: 8 },
    ]);
    // A laptop-scale workload (the learned model was trained at this
    // scale, so its predictions are interpolations, not extrapolations).
    let cfg = FfnnConfig {
        batch: 64,
        features: 96,
        hidden: 32,
        labels: 16,
        input_sparsity: 1.0,
        learning_rate: 0.05,
        input_format: matopt_core::PhysFormat::RowStrip { height: 8 },
        w1_format: matopt_core::PhysFormat::Tile { side: 8 },
        w_format: matopt_core::PhysFormat::Tile { side: 8 },
    };
    let g = ffnn_w2_update_graph(cfg).unwrap().graph;
    let with = |model: &dyn CostModel| -> (f64, matopt_core::Annotation) {
        let octx = OptContext::new(&ctx, &catalog, model);
        let p = frontier_dp_beam(&g, &octx, 2000).expect("plans");
        (p.cost, p.annotation)
    };
    let (analytic_cost, analytic_plan) = with(&env.model);
    let (learned_cost, learned_plan) = with(&learned);
    // Cross-score: the learned model's plan, priced by the analytic
    // model (and vice versa) — agreement means the regression learned
    // the same trade-offs.
    let analytic_of_learned = plan_cost(&g, &learned_plan, &ctx, &env.model).unwrap();
    let learned_of_analytic = plan_cost(&g, &analytic_plan, &ctx, &learned).unwrap();
    FigTable {
        id: "Ablation 4",
        title: "Learned (regression) vs analytic cost model, laptop-scale FFNN",
        header: vec!["quantity".into(), "value".into()],
        rows: vec![
            vec!["analytic model: own plan cost".into(), format!("{analytic_cost:.4}s")],
            vec!["learned model: own plan cost".into(), format!("{learned_cost:.4}s")],
            vec![
                "learned plan scored by analytic model".into(),
                format!(
                    "{analytic_of_learned:.4}s ({:.2}x the analytic optimum)",
                    analytic_of_learned / analytic_cost
                ),
            ],
            vec![
                "analytic plan scored by learned model".into(),
                format!("{learned_of_analytic:.4}s"),
            ],
            vec![
                "calibration samples".into(),
                format!("{} (specialized regressions: {})", samples.len(), learned.specialized_models()),
            ],
        ],
        notes: vec![
            "the learned model is fitted from real executor runs (collect_samples) via the library's own LU solver".into(),
        ],
    }
}
