//! The pipelined DAG scheduler: ready-queue execution of an annotated
//! plan on the shared work-stealing pool.
//!
//! The serial executor walks vertices in topological order, so
//! independent branches of a plan (the two weight updates of the FFNN
//! graph, the four quadrants of the blocked inverse) serialize even
//! though nothing orders them. This module replaces that walk with
//! indegree-counter scheduling:
//!
//! * every vertex carries a `pending` counter of unfinished inputs;
//!   when a vertex finishes it decrements each consumer's counter and
//!   spawns any consumer that reaches zero as a pool job — vertices
//!   run as soon as their inputs exist, not when the topological walk
//!   reaches them;
//! * identity edges are `Arc` reference bumps instead of deep clones of
//!   the input relation (the dominant per-vertex cost of the old
//!   executor on laptop-scale graphs);
//! * a refcount per vertex counts un-executed consumer edges; when the
//!   last consumer finishes, the vertex's buffer is retired (dropped)
//!   unless the caller asked to retain all values — peak resident bytes
//!   are tracked either way and surfaced through
//!   [`ExecOutcome::peak_resident_bytes`](crate::ExecOutcome);
//! * scheduler concurrency and pool counters are emitted as a
//!   [`Subsystem::Sched`] `pipeline` record per run.
//!
//! Determinism: every vertex reads fully-materialized inputs and every
//! chunk batch preserves item order, so the pipelined executor is
//! bit-identical to the serial walk regardless of completion order (the
//! `pipeline.rs` property test pins this on random DAGs).

use crate::exec::missing_input;
use crate::impl_exec::{execute_impl_shared, ExecError};
use crate::value::DistRelation;
use matopt_core::{Annotation, ComputeGraph, ImplRegistry, NodeId, NodeKind, TransformKind};
use matopt_obs::{Obs, Subsystem};
use matopt_pool::{Pool, TaskGroup};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Everything the pipelined run measured, with values still shared.
pub(crate) struct PipelineOutput {
    /// Slot per vertex; `None` for retired buffers when retention is
    /// off.
    pub values: Vec<Option<Arc<DistRelation>>>,
    /// Wall seconds of each compute vertex's implementation.
    pub vertex_seconds: Vec<f64>,
    /// Wall seconds per in-edge transform, per vertex.
    pub transform_seconds: Vec<Vec<f64>>,
    /// Chunks in each vertex's output relation.
    pub vertex_chunks: Vec<usize>,
    /// Bytes of each vertex's output relation.
    pub vertex_resident_bytes: Vec<u64>,
    /// Worker parallelism of the pool the run was scheduled on.
    pub parallelism: usize,
    /// Highest number of vertices in flight at once.
    pub max_concurrency: usize,
    /// Peak bytes resident across all live vertex buffers.
    pub peak_resident_bytes: u64,
}

/// Per-vertex measurements, written once by the job that ran the
/// vertex.
#[derive(Default)]
struct VertexMeta {
    seconds: f64,
    transform_seconds: Vec<f64>,
    chunks: usize,
    bytes: u64,
}

struct RunState {
    graph: Arc<ComputeGraph>,
    annotation: Arc<Annotation>,
    registry: Arc<ImplRegistry>,
    obs: Obs,
    /// One entry per in-edge of each consumer (duplicates kept so a
    /// vertex feeding the same consumer twice decrements twice).
    consumer_edges: Vec<Vec<NodeId>>,
    /// Vertices whose buffers are never retired.
    retained: Vec<bool>,
    slots: Vec<Mutex<Option<Arc<DistRelation>>>>,
    /// Unfinished inputs per vertex; a vertex is spawned on the 1 → 0
    /// transition.
    pending: Vec<AtomicUsize>,
    /// Un-executed consumer edges per vertex; the buffer is retired on
    /// the 1 → 0 transition.
    uses: Vec<AtomicUsize>,
    meta: Vec<Mutex<VertexMeta>>,
    /// First failure by lowest vertex id (deterministic across
    /// completion orders); `failed` lets in-flight jobs stop early.
    error: Mutex<Option<(NodeId, ExecError)>>,
    failed: AtomicBool,
    resident: AtomicU64,
    peak: AtomicU64,
    running: AtomicUsize,
    max_running: AtomicUsize,
}

/// Runs the annotated graph through the pipelined scheduler.
///
/// With `retain_all` every vertex's value survives the run; otherwise
/// buffers are retired as their last consumer finishes and only sink
/// values come back.
pub(crate) fn run_pipelined(
    graph: &ComputeGraph,
    annotation: &Annotation,
    inputs: &HashMap<NodeId, DistRelation>,
    registry: &ImplRegistry,
    obs: &Obs,
    retain_all: bool,
) -> Result<PipelineOutput, ExecError> {
    let n = graph.len();
    // Fail on the first unannotated compute vertex in topological
    // order, exactly like the serial walk, before any job runs.
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Compute { .. }) && annotation.choice(id).is_none() {
            return Err(ExecError::MissingChoice(id));
        }
    }

    let mut consumer_edges: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    let mut uses = vec![0usize; n];
    for (id, node) in graph.iter() {
        indegree[id.index()] = node.inputs.len();
        for input in &node.inputs {
            consumer_edges[input.index()].push(id);
            uses[input.index()] += 1;
        }
    }
    let mut retained = vec![retain_all; n];
    for s in graph.sinks() {
        retained[s.index()] = true;
    }

    let pool = Pool::global();
    let pool_before = pool.stats();
    let state = Arc::new(RunState {
        graph: Arc::new(graph.clone()),
        annotation: Arc::new(annotation.clone()),
        registry: Arc::new(registry.clone()),
        obs: obs.clone(),
        consumer_edges,
        retained,
        slots: (0..n).map(|_| Mutex::new(None)).collect(),
        pending: indegree.into_iter().map(AtomicUsize::new).collect(),
        uses: uses.into_iter().map(AtomicUsize::new).collect(),
        meta: (0..n).map(|_| Mutex::new(VertexMeta::default())).collect(),
        error: Mutex::new(None),
        failed: AtomicBool::new(false),
        resident: AtomicU64::new(0),
        peak: AtomicU64::new(0),
        running: AtomicUsize::new(0),
        max_running: AtomicUsize::new(0),
    });

    // Seed the sources inline (they are the caller's inputs, possibly
    // re-materialized into the declared format), then sweep the
    // vertices that are ready before any compute ran.
    for (id, node) in graph.iter() {
        if let NodeKind::Source { format } = &node.kind {
            let rel = inputs.get(&id).ok_or_else(|| missing_input(graph, id))?;
            let rel = if rel.format == *format {
                rel.clone()
            } else {
                rel.reformat(*format)
                    .map_err(|e| ExecError::Internal(e.to_string()))?
            };
            store_output(&state, id, Arc::new(rel), 0.0, Vec::new());
            for c in &state.consumer_edges[id.index()] {
                state.pending[c.index()].fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    let group = pool.group();
    for (id, node) in graph.iter() {
        if matches!(node.kind, NodeKind::Compute { .. })
            && state.pending[id.index()].load(Ordering::Acquire) == 0
        {
            spawn_vertex(&state, &group, id);
        }
    }
    let waited = group.wait();

    if let Some((_, e)) = state.error.lock().unwrap().take() {
        return Err(e);
    }
    if let Err(detail) = waited {
        return Err(ExecError::Internal(format!(
            "scheduler job panicked: {detail}"
        )));
    }

    let max_concurrency = state.max_running.load(Ordering::Acquire).max(1);
    let peak = state.peak.load(Ordering::Acquire);
    let delta = pool.stats().since(&pool_before);
    obs.record(Subsystem::Sched, "pipeline", || {
        vec![
            ("vertices", n.into()),
            ("parallelism", pool.parallelism().into()),
            ("max_concurrency", max_concurrency.into()),
            ("peak_resident_bytes", (peak as i64).into()),
            ("retain_all", retain_all.into()),
            ("pool_tasks", (delta.tasks as i64).into()),
            ("pool_steals", (delta.steals as i64).into()),
            ("pool_batches", (delta.batches as i64).into()),
        ]
    });

    let state = Arc::try_unwrap(state)
        .map_err(|_| ExecError::Internal("scheduler state still shared after wait".to_string()))?;
    let mut vertex_seconds = vec![0.0; n];
    let mut transform_seconds: Vec<Vec<f64>> = vec![Vec::new(); n];
    let mut vertex_chunks = vec![0usize; n];
    let mut vertex_resident_bytes = vec![0u64; n];
    for (i, meta) in state.meta.into_iter().enumerate() {
        let m = meta.into_inner().unwrap();
        vertex_seconds[i] = m.seconds;
        transform_seconds[i] = m.transform_seconds;
        vertex_chunks[i] = m.chunks;
        vertex_resident_bytes[i] = m.bytes;
    }
    let values = state
        .slots
        .into_iter()
        .map(|s| s.into_inner().unwrap())
        .collect();
    Ok(PipelineOutput {
        values,
        vertex_seconds,
        transform_seconds,
        vertex_chunks,
        vertex_resident_bytes,
        parallelism: pool.parallelism(),
        max_concurrency,
        peak_resident_bytes: peak,
    })
}

/// Queues vertex `v` as a pool job in `group`; the job spawns follow-on
/// ready consumers into the same group.
fn spawn_vertex(state: &Arc<RunState>, group: &TaskGroup, v: NodeId) {
    let st = Arc::clone(state);
    let g = group.clone();
    group.spawn(move || run_vertex_job(&st, &g, v));
}

fn run_vertex_job(state: &Arc<RunState>, group: &TaskGroup, v: NodeId) {
    if state.failed.load(Ordering::Acquire) {
        return;
    }
    let running = state.running.fetch_add(1, Ordering::AcqRel) + 1;
    state.max_running.fetch_max(running, Ordering::AcqRel);
    let result = compute_vertex(state, v);
    state.running.fetch_sub(1, Ordering::AcqRel);
    match result {
        Ok(()) => {
            retire_inputs(state, v);
            for &c in &state.consumer_edges[v.index()] {
                if state.pending[c.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                    spawn_vertex(state, group, c);
                }
            }
        }
        Err(e) => {
            state.failed.store(true, Ordering::Release);
            let mut slot = state.error.lock().unwrap();
            // Lowest vertex id wins so concurrent failures surface the
            // same error the serial walk would have hit first.
            match &*slot {
                Some((u, _)) if u.index() <= v.index() => {}
                _ => *slot = Some((v, e)),
            }
        }
    }
}

/// Transforms the inputs per the plan's choice and runs the chosen
/// implementation, mirroring the serial walk's spans and timings.
fn compute_vertex(state: &Arc<RunState>, v: NodeId) -> Result<(), ExecError> {
    let node = state.graph.node(v);
    let NodeKind::Compute { op } = &node.kind else {
        return Err(ExecError::Internal(format!(
            "scheduled non-compute vertex {v}"
        )));
    };
    let choice = state
        .annotation
        .choice(v)
        .ok_or(ExecError::MissingChoice(v))?;
    let mut transformed: Vec<Arc<DistRelation>> = Vec::with_capacity(node.inputs.len());
    let mut tsecs = Vec::with_capacity(node.inputs.len());
    for (edge, (input, t)) in node
        .inputs
        .iter()
        .zip(choice.input_transforms.iter())
        .enumerate()
    {
        let src: Arc<DistRelation> = state.slots[input.index()]
            .lock()
            .unwrap()
            .clone()
            .ok_or_else(|| {
                ExecError::Internal(format!("input {input} of vertex {v} not materialized"))
            })?;
        let _t_span = if t.kind == TransformKind::Identity {
            // Identity edges are free `Arc` bumps; keep the trace quiet.
            None
        } else {
            Some(state.obs.span_with(Subsystem::Executor, "transform", || {
                vec![
                    ("vertex", v.index().into()),
                    ("edge", edge.into()),
                    ("kind", format!("{:?}", t.kind).into()),
                    ("to", t.to.to_string().into()),
                ]
            }))
        };
        let t0 = Instant::now();
        let moved = if t.kind == TransformKind::Identity {
            src
        } else {
            Arc::new(
                src.reformat(t.to)
                    .map_err(|e| ExecError::Internal(e.to_string()))?,
            )
        };
        tsecs.push(t0.elapsed().as_secs_f64());
        transformed.push(moved);
    }
    let impl_def = state.registry.get(choice.impl_id);
    let _v_span = state.obs.span_with(Subsystem::Executor, "impl", || {
        let label = node.name.clone().unwrap_or_else(|| v.to_string());
        vec![
            ("vertex", v.index().into()),
            ("label", label.into()),
            ("op", format!("{op:?}").into()),
            ("impl", impl_def.name.into()),
            ("out_format", choice.output_format.to_string().into()),
        ]
    });
    let t0 = Instant::now();
    let out = execute_impl_shared(
        impl_def.strategy,
        op,
        &transformed,
        node.mtype,
        choice.output_format,
    )
    .map_err(|e| e.at_vertex(v))?;
    store_output(state, v, Arc::new(out), t0.elapsed().as_secs_f64(), tsecs);
    Ok(())
}

fn store_output(
    state: &Arc<RunState>,
    v: NodeId,
    rel: Arc<DistRelation>,
    isecs: f64,
    tsecs: Vec<f64>,
) {
    let bytes = rel.total_bytes() as u64;
    let chunks = rel.chunks.len();
    *state.slots[v.index()].lock().unwrap() = Some(rel);
    let resident = state.resident.fetch_add(bytes, Ordering::AcqRel) + bytes;
    state.peak.fetch_max(resident, Ordering::AcqRel);
    let mut m = state.meta[v.index()].lock().unwrap();
    m.seconds = isecs;
    m.transform_seconds = tsecs;
    m.chunks = chunks;
    m.bytes = bytes;
}

/// Drops each input buffer whose last consumer edge just finished,
/// unless the vertex is retained (a sink, or everything under
/// `retain_all`).
fn retire_inputs(state: &Arc<RunState>, v: NodeId) {
    for input in &state.graph.node(v).inputs {
        let u = input.index();
        if state.retained[u] {
            continue;
        }
        if state.uses[u].fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(rel) = state.slots[u].lock().unwrap().take() {
                state
                    .resident
                    .fetch_sub(rel.total_bytes() as u64, Ordering::AcqRel);
            }
        }
    }
}
